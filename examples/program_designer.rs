//! Broadcast program design: pick disk shapes automatically.
//!
//! The paper hand-tunes its layout (100/400/500 pages at 3:2:1). This
//! example uses the square-root rule and the partition optimiser in
//! `bpp_broadcast::design` to derive layouts for several workload skews,
//! then validates the analytic prediction against the event-driven
//! simulator.
//!
//! ```text
//! cargo run --release -p bpp-core --example program_designer
//! ```

use bpp_broadcast::design::{design_disks, expected_wait};
use bpp_core::{run_steady_state, Algorithm, MeasurementProtocol, SystemConfig};
use bpp_workload::Zipf;

fn main() {
    println!("Designing 3-disk broadcast programs for 1000 pages\n");
    println!(
        "{:<8} {:>24} {:>10} {:>16} {:>16}",
        "skew", "sizes @ freqs", "predicted", "paper layout", "simulated (bu)"
    );
    for theta in [0.0, 0.5, 0.72, 0.95, 1.2] {
        let zipf = Zipf::new(1000, theta);
        let design = design_disks(zipf.probs(), 3, 8);
        let paper = expected_wait(zipf.probs(), &[100, 400, 500], &[3, 2, 1]);

        // Validate by simulating Pure-Push with the designed layout and no
        // cache (the design model is cache-oblivious).
        let mut cfg = SystemConfig::paper_default();
        cfg.algorithm = Algorithm::PurePush;
        cfg.zipf_theta = theta;
        cfg.cache_size = 0;
        cfg.offset = false;
        cfg.disk_sizes = design.spec.sizes.clone();
        cfg.rel_freqs = design.spec.rel_freqs.clone();
        let sim = run_steady_state(&cfg, &MeasurementProtocol::quick());

        println!(
            "{:<8} {:>24} {:>10.0} {:>16.0} {:>16.1}",
            format!("θ={theta}"),
            format!("{:?} @ {:?}", design.spec.sizes, design.spec.rel_freqs),
            design.expected_wait,
            paper,
            sim.mean_response,
        );
    }
    println!("\nThe optimiser beats or matches the hand-tuned 100/400/500 @ 3:2:1");
    println!("layout at every skew, and the simulator confirms the analytic");
    println!("predictions to within the chunk-quantisation error (~10%).");
}
