//! Stock/news ticker scenario: a dissemination feed whose load swings
//! between quiet overnight periods and frantic market-open spikes.
//!
//! The paper's §6 sketches the fix for exactly this regime: "as the
//! contention on the server increases, a dynamic algorithm might
//! automatically reduce the pull bandwidth at the server and also use a
//! larger threshold at the client". This example compares static IPP
//! settings against the adaptive controller at both load levels.
//!
//! ```text
//! cargo run --release -p bpp-core --example stock_ticker
//! ```

use bpp_core::adaptive::{run_adaptive, AdaptiveConfig};
use bpp_core::{run_steady_state, Algorithm, MeasurementProtocol, SystemConfig};

fn ticker_config(ttr: f64) -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    // A ticker is extremely skewed: a handful of symbols dominate.
    cfg.zipf_theta = 1.1;
    cfg.algorithm = Algorithm::Ipp;
    cfg.think_time_ratio = ttr;
    cfg
}

fn main() {
    let proto = MeasurementProtocol::quick();
    println!("Stock ticker: response time (broadcast units) per IPP setting\n");
    println!(
        "{:<34} {:>12} {:>12}",
        "configuration", "quiet (x25)", "open (x250)"
    );

    for (label, pull_bw, thres) in [
        ("static, PullBW 50%, Thres 0%", 0.5, 0.0),
        ("static, PullBW 50%, Thres 35%", 0.5, 0.35),
        ("static, PullBW 10%, Thres 35%", 0.1, 0.35),
    ] {
        let mut row = format!("{label:<34}");
        for ttr in [25.0, 250.0] {
            let mut cfg = ticker_config(ttr);
            cfg.pull_bw = pull_bw;
            cfg.thres_perc = thres;
            let r = run_steady_state(&cfg, &proto);
            row.push_str(&format!(" {:>12.1}", r.mean_response));
        }
        println!("{row}");
    }

    let mut row = format!("{:<34}", "adaptive (drop-rate controller)");
    let mut finals = Vec::new();
    for ttr in [25.0, 250.0] {
        let mut cfg = ticker_config(ttr);
        cfg.pull_bw = 0.5;
        cfg.thres_perc = 0.0;
        let r = run_adaptive(&cfg, &proto, AdaptiveConfig::default());
        row.push_str(&format!(" {:>12.1}", r.steady.mean_response));
        finals.push((r.final_pull_bw, r.final_thres_perc, r.adjustments));
    }
    println!("{row}");
    for (ttr, (bw, th, adj)) in [25.0, 250.0].iter().zip(finals) {
        println!(
            "    at load x{ttr}: controller settled on PullBW {:.0}%, Thres {:.0}% after {adj} adjustments",
            bw * 100.0,
            th * 100.0
        );
    }
    println!("\nThe adaptive controller keeps the aggressive setting while the");
    println!("market is quiet and backs off toward push as the open saturates it.");
}
