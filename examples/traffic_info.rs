//! Advanced Traveler Information System (ATIS) scenario.
//!
//! The paper motivates warm-up performance with exactly this application:
//! "motorists join the system when they drive within range of the
//! information broadcast" — a client population that is constantly churning,
//! where time-to-useful-cache matters as much as steady-state latency.
//!
//! We model a metro traffic server (road segments = pages; a few arterials
//! are hot, most side streets are cold) and ask: how quickly does a car
//! that just entered range acquire the hot segments, at rush-hour vs.
//! off-peak load?
//!
//! ```text
//! cargo run --release -p bpp-core --example traffic_info
//! ```

use bpp_core::{run_warmup, Algorithm, MeasurementProtocol, SystemConfig};

fn scenario() -> SystemConfig {
    let mut cfg = SystemConfig::paper_default();
    // 1000 road segments; the navigation unit caches 100 of them.
    // Traffic interest is strongly skewed toward arterials.
    cfg.zipf_theta = 0.95;
    // Most cars in range have been driving a while (warm caches), but a
    // visible fraction just joined.
    cfg.steady_state_perc = 0.80;
    cfg
}

fn main() {
    let proto = MeasurementProtocol::quick();
    println!("ATIS warm-up: broadcast units until a newly-arrived car's cache");
    println!("holds 50% / 95% of the most valuable road segments\n");
    println!(
        "{:<22} {:>14} {:>14}",
        "algorithm @ load", "50% warm", "95% warm"
    );
    for (label, algo, ttr) in [
        ("Push  @ off-peak", Algorithm::PurePush, 25.0),
        ("Pull  @ off-peak", Algorithm::PurePull, 25.0),
        ("IPP   @ off-peak", Algorithm::Ipp, 25.0),
        ("Push  @ rush hour", Algorithm::PurePush, 250.0),
        ("Pull  @ rush hour", Algorithm::PurePull, 250.0),
        ("IPP   @ rush hour", Algorithm::Ipp, 250.0),
    ] {
        let mut cfg = scenario();
        cfg.algorithm = algo;
        cfg.pull_bw = 0.5;
        cfg.think_time_ratio = ttr;
        let r = run_warmup(&cfg, &proto);
        let at = |frac: f64| -> String {
            r.fractions
                .iter()
                .position(|&f| (f - frac).abs() < 1e-9)
                .and_then(|i| r.times[i])
                .map_or("> cap".into(), |t| format!("{t:.0}"))
        };
        println!("{label:<22} {:>14} {:>14}", at(0.5), at(0.95));
    }
    println!("\nExpected shape (paper §4.1.3): pull-based warm-up wins off-peak;");
    println!("under rush-hour saturation the push broadcast warms caches fastest.");
}
