//! Capacity planning: how many clients can one broadcast server support?
//!
//! §4.2 of the paper quantifies the threshold's value in exactly these
//! terms: "IPP crosses Pure-Push at ThinkTimeRatio = 25 with no threshold
//! but at ThinkTimeRatio = 75 with a threshold of 35%. This translates to
//! roughly a factor of three improvement in the number of clients that can
//! be supported before losing to Pure-Push."
//!
//! This example sweeps the load and reports, per configuration, the largest
//! ThinkTimeRatio (≈ client population) at which the configuration still
//! beats the Pure-Push safety line.
//!
//! ```text
//! cargo run --release -p bpp-core --example capacity_planner
//! ```

use bpp_core::experiments::par_run;
use bpp_core::{run_steady_state, Algorithm, MeasurementProtocol, SystemConfig};

const LOADS: [f64; 8] = [10.0, 25.0, 35.0, 50.0, 75.0, 100.0, 150.0, 250.0];

fn main() {
    let proto = MeasurementProtocol::quick();
    let base = SystemConfig::paper_default();

    // The Pure-Push reference line (load-independent).
    let mut push = base.clone();
    push.algorithm = Algorithm::PurePush;
    let push_resp = run_steady_state(&push, &proto).mean_response;
    println!("Pure-Push safety line: {push_resp:.1} bu (independent of population)\n");

    println!(
        "{:<30} {:>22} {:>26}",
        "IPP configuration", "beats Push up to TTR", "capacity vs same-BW Thres=0"
    );
    // Baseline capacity (Thres=0) per PullBW, so the ratio isolates the
    // threshold's contribution — the paper's "factor of 2-3" claim.
    let mut baseline_for_bw: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
    for (label, pull_bw, thres) in [
        ("PullBW 50%, Thres 0%", 0.5, 0.0),
        ("PullBW 50%, Thres 25%", 0.5, 0.25),
        ("PullBW 30%, Thres 0%", 0.3, 0.0),
        ("PullBW 30%, Thres 35%", 0.3, 0.35),
    ] {
        let configs: Vec<SystemConfig> = LOADS
            .iter()
            .map(|&ttr| {
                let mut c = base.clone();
                c.algorithm = Algorithm::Ipp;
                c.pull_bw = pull_bw;
                c.thres_perc = thres;
                c.think_time_ratio = ttr;
                c
            })
            .collect();
        let results = par_run(&configs, &proto);
        // Largest load whose response still beats Pure-Push.
        let capacity = LOADS
            .iter()
            .zip(&results)
            .take_while(|(_, r)| r.mean_response < push_resp)
            .map(|(&ttr, _)| ttr)
            .last();
        let cap_str = capacity.map_or("< 10".to_string(), |c| format!("{c:.0}"));
        let bw_key = (pull_bw * 100.0) as u32;
        let ratio = if thres == 0.0 {
            if let Some(c) = capacity {
                baseline_for_bw.insert(bw_key, c);
            }
            "1.0x (baseline)".to_string()
        } else {
            match (capacity, baseline_for_bw.get(&bw_key)) {
                (Some(c), Some(&b)) => format!("{:.1}x", c / b),
                _ => "-".to_string(),
            }
        };
        println!("{label:<30} {cap_str:>22} {ratio:>26}");
    }
    println!("\n(paper: a well-chosen threshold buys a factor of 2-3 in supportable population)");
}
