//! Quickstart: build the paper's broadcast system, run all three delivery
//! algorithms at a moderate load, and print a comparison.
//!
//! ```text
//! cargo run --release -p bpp-core --example quickstart
//! ```

use bpp_broadcast::{assignment::identity_ranking, Assignment, BroadcastProgram, DiskSpec, Slot};
use bpp_core::{run_steady_state, Algorithm, MeasurementProtocol, SystemConfig};

fn main() {
    // --- The Figure-1 example: seven pages a..g on three disks. ---
    let spec = DiskSpec::new(vec![1, 2, 4], vec![4, 2, 1]);
    let assignment = Assignment::from_ranking(&identity_ranking(7), &spec);
    let program = BroadcastProgram::generate(&assignment, 7);
    let names = ["a", "b", "c", "d", "e", "f", "g"];
    println!(
        "Figure 1 broadcast program (major cycle = {} slots):",
        program.major_cycle()
    );
    let rendered: Vec<&str> = program
        .slots()
        .iter()
        .map(|s| match s {
            Slot::Page(p) => names[p.index()],
            Slot::Empty => "-",
        })
        .collect();
    println!("  {}\n", rendered.join(" "));

    // --- The evaluation system: 1000 pages, disks 100/400/500 @ 3:2:1. ---
    // ThinkTimeRatio 50 ≈ a population of 50 clients as busy as ours.
    let mut cfg = SystemConfig::paper_default();
    cfg.think_time_ratio = 50.0;
    let proto = MeasurementProtocol::quick();

    println!("Steady-state response time at ThinkTimeRatio=50 (quick protocol):");
    for algo in [Algorithm::PurePush, Algorithm::PurePull, Algorithm::Ipp] {
        let mut c = cfg.clone();
        c.algorithm = algo;
        c.pull_bw = 0.5;
        let r = run_steady_state(&c, &proto);
        println!(
            "  {:<5} {:>7.1} bu   (hit rate {:>5.1}%, server drops {:>5.1}%)",
            algo.name(),
            r.mean_response,
            r.mc_hit_rate * 100.0,
            r.drop_rate * 100.0,
        );
    }
    println!("\nIPP trades a little light-load latency for stability under load;");
    println!("run `cargo run --release -p bpp-bench --bin fig3` for the full sweep.");
}
