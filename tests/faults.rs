//! Fault-injection integration tests: the acceptance criteria of the
//! robustness PR.
//!
//! * a disabled fault model is *invisible* — no report, no extra JSON
//!   members, results identical run to run;
//! * under 100% backchannel loss the client retries, exhausts its budget
//!   and falls back to the broadcast — the run still completes with a
//!   bounded response time;
//! * 10% symmetric loss at ThinkTimeRatio=1 (the loaded end of the loss
//!   sweep) completes with a bounded mean and a nonzero retry/drop count;
//! * server saturation degrades pull bandwidth and is accounted for.

use bpp_client::RetryPolicy;
use bpp_core::{
    run_steady_state, Algorithm, FaultConfig, MeasurementProtocol, SaturationPolicy, SystemConfig,
};
use bpp_json::ToJson;

fn ipp_small() -> SystemConfig {
    let mut c = SystemConfig::small();
    c.algorithm = Algorithm::Ipp;
    c.pull_bw = 0.5;
    c.thres_perc = 0.0;
    c.steady_state_perc = 0.95;
    c
}

/// A retry policy that fires well before the broadcast safety net (the
/// small system's major cycle) so retries are observable in short runs.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 4,
        base_timeout: 4.0,
        backoff_factor: 2.0,
        max_backoff: 32.0,
        jitter: 0.0,
    }
}

#[test]
fn disabled_fault_model_is_invisible() {
    let cfg = ipp_small();
    assert!(!cfg.fault.enabled());
    let proto = MeasurementProtocol::quick();
    let a = run_steady_state(&cfg, &proto);
    assert!(a.fault.is_none());
    assert!(a.error.is_none());
    let text = bpp_json::to_string(&a.to_json());
    assert!(
        !text.contains("\"fault\"") && !text.contains("\"error\""),
        "disabled fault model must not appear in serialized results"
    );
    // And the config itself serializes without a fault member.
    let cfg_text = bpp_json::to_string(&cfg.to_json());
    assert!(!cfg_text.contains("\"fault\""));
    // Determinism sanity: identical configs, identical serialization.
    let b = run_steady_state(&cfg, &proto);
    assert_eq!(text, bpp_json::to_string(&b.to_json()));
}

#[test]
fn full_backchannel_loss_falls_back_to_broadcast() {
    let mut cfg = ipp_small();
    cfg.fault.request_loss = 1.0;
    cfg.fault.retry = fast_retry();
    let r = run_steady_state(&cfg, &MeasurementProtocol::quick());
    assert!(r.error.is_none());
    let f = r.fault.expect("fault model enabled");
    // Every sent request was lost in transit; none reached the queue.
    assert!(f.channel.requests_lost > 0);
    assert_eq!(r.requests_received, 0);
    // The client retried, ran out of budget, and fell back to waiting for
    // the push schedule — which bounds the response time.
    assert!(f.retries > 0, "report: {f:?}");
    assert!(f.retries_exhausted > 0, "report: {f:?}");
    assert!(
        r.mean_response.is_finite() && r.mean_response > 0.0,
        "broadcast fallback keeps the response time bounded"
    );
    assert!(r.measured_accesses > 0);
}

#[test]
fn acceptance_ten_percent_loss_at_ttr_one() {
    let mut cfg = ipp_small();
    cfg.think_time_ratio = 1.0;
    cfg.fault = FaultConfig::lossy(0.10);
    cfg.fault.retry = fast_retry();
    let r = run_steady_state(&cfg, &MeasurementProtocol::quick());
    assert!(r.error.is_none());
    assert!(
        r.mean_response.is_finite() && r.mean_response > 0.0,
        "bounded mean response under 10% loss at TTR=1"
    );
    let f = r.fault.expect("fault model enabled");
    assert!(f.channel.pages_lost > 0, "frontchannel loss engaged: {f:?}");
    assert!(
        f.retries + f.requests_denied() > 0,
        "nonzero retry/drop accounting: {f:?}"
    );
}

#[test]
fn lossy_runs_are_deterministic() {
    let mut cfg = ipp_small();
    cfg.fault = FaultConfig::lossy(0.10);
    let proto = MeasurementProtocol::quick();
    let a = run_steady_state(&cfg, &proto);
    let b = run_steady_state(&cfg, &proto);
    assert_eq!(
        bpp_json::to_string(&a.to_json()),
        bpp_json::to_string(&b.to_json()),
        "same seed, same faults, same serialized result"
    );
    assert!(a.fault.is_some());
}

#[test]
fn saturation_sheds_pull_bandwidth_under_load() {
    let mut cfg = ipp_small();
    cfg.think_time_ratio = 1.0;
    cfg.server_queue_size = 5;
    // A hair-trigger detector: degrade at 5% smoothed occupancy, shed all
    // pull bandwidth, recover below 1%.
    cfg.fault.degrade = SaturationPolicy {
        on_occupancy: 0.05,
        off_occupancy: 0.01,
        shed_to: 0.0,
        smoothing: 0.5,
    };
    let r = run_steady_state(&cfg, &MeasurementProtocol::quick());
    assert!(r.error.is_none());
    let f = r.fault.expect("fault model enabled");
    assert!(f.degradations > 0, "detector tripped: {f:?}");
    assert!(f.saturated_slots > 0, "time was spent degraded: {f:?}");
    assert!(r.mean_response.is_finite() && r.mean_response > 0.0);
}

#[test]
fn brownout_windows_discard_requests() {
    let mut cfg = ipp_small();
    cfg.think_time_ratio = 1.0;
    cfg.fault.brownout_period = 100.0;
    cfg.fault.brownout_duration = 50.0;
    let r = run_steady_state(&cfg, &MeasurementProtocol::quick());
    assert!(r.error.is_none());
    let f = r.fault.expect("fault model enabled");
    assert!(f.channel.requests_browned_out > 0, "report: {f:?}");
    assert!(r.mean_response.is_finite() && r.mean_response > 0.0);
}
