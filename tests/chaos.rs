//! Crash–recovery and chaos-harness integration tests: the acceptance
//! criteria of the crash-domain PR.
//!
//! * a disabled crash domain is *invisible* — no `crash` or `admission`
//!   JSON members anywhere, results byte-identical run to run;
//! * a 10⁴-client restart herd recovers even when the admission layer is
//!   bouncing most of the reconnect burst — rejections feed retry-after
//!   backoff instead of losing requests;
//! * the MTBF-exponential crash schedule is a deterministic function of
//!   the seed (its own RNG stream), and moves when the seed moves;
//! * the conservation auditor actually bites: a tampered ledger reports
//!   violations and `assert_clean` panics.

use bpp_client::RetryPolicy;
use bpp_core::{
    run_chaos, run_steady_state, AdmissionConfig, Algorithm, ClientPopulation, CrashConfig,
    FaultConfig, FaultPhase, FaultSchedule, MeasurementProtocol, SystemConfig,
};
use bpp_json::ToJson;

fn ipp_small() -> SystemConfig {
    let mut c = SystemConfig::small();
    c.algorithm = Algorithm::Ipp;
    c.pull_bw = 0.5;
    c.thres_perc = 0.0;
    c.steady_state_perc = 0.95;
    c
}

#[test]
fn crash_disabled_runs_are_byte_identical_and_crash_invisible() {
    // The fault model is on (so a FaultReport is emitted) but the crash
    // domain and admission layer are not: neither may leave a trace.
    let mut cfg = ipp_small();
    cfg.fault = FaultConfig::lossy(0.05);
    assert!(!cfg.fault.crash.enabled());
    assert!(!cfg.fault.admission.enabled());
    let proto = MeasurementProtocol::quick();
    let a = run_steady_state(&cfg, &proto);
    let f = a.fault.expect("fault model enabled");
    assert!(f.crash.is_none());
    let text = bpp_json::to_string(&a.to_json());
    assert!(
        !text.contains("\"crash\"") && !text.contains("\"admission\""),
        "disabled crash domain must not appear in serialized results"
    );
    let cfg_text = bpp_json::to_string(&cfg.to_json());
    assert!(!cfg_text.contains("\"crash\"") && !cfg_text.contains("\"admission\""));
    // Byte-identity: same config, same serialization — the crash plumbing
    // (audit counters, outcome enums) costs nothing when disabled.
    let b = run_steady_state(&cfg, &proto);
    assert_eq!(text, bpp_json::to_string(&b.to_json()));
}

#[test]
fn restart_herd_of_ten_thousand_recovers_under_heavy_rejection() {
    let mut cfg = ipp_small();
    cfg.think_time_ratio = 25.0;
    cfg.server_queue_size = 1_000;
    cfg.population = ClientPopulation::fleet(10_000);
    cfg.fault.retry = RetryPolicy {
        max_retries: 6,
        base_timeout: 8.0,
        backoff_factor: 2.0,
        max_backoff: 64.0,
        jitter: 0.0,
    };
    cfg.fault.crash = CrashConfig {
        mtbf: 0.0,
        downtime: 100.0,
        schedule: vec![5_000.0],
        reconnect_jitter: 0.5,
        recovery_epsilon: 0.5,
    };
    // A bucket far below the fleet's reconnect burst: most of the herd is
    // bounced with a retry-after hint at restart.
    cfg.fault.admission = AdmissionConfig {
        rate: 2.0,
        burst: 2.0,
        retry_after: 32.0,
    };
    cfg.seed = 4242;
    let mut proto = MeasurementProtocol::quick();
    proto.max_accesses = 2_000;
    proto.skip_accesses = 100;
    let r = run_steady_state(&cfg, &proto);
    assert!(r.error.is_none());
    let c = r
        .fault
        .as_ref()
        .and_then(|f| f.crash)
        .expect("crash section present");
    assert_eq!(c.crashes, 1);
    assert_eq!(c.first_crash_at, Some(5_000.0));
    assert!(c.down_slots > 0);
    assert!(
        c.admission_rejected > 0,
        "the bucket must actually bounce part of the herd"
    );
    assert!(c.herd_peak_depth > 0);
    assert!(
        c.recoveries >= 1,
        "the fleet must re-converge despite heavy rejection \
         (rejected {} of {} admitted)",
        c.admission_rejected,
        c.admitted
    );
    assert!(r.mean_response.is_finite() && r.mean_response > 0.0);
}

#[test]
fn exponential_crash_schedule_is_a_function_of_the_seed() {
    let mut cfg = ipp_small();
    cfg.think_time_ratio = 1.0;
    cfg.fault.crash = CrashConfig {
        mtbf: 2_000.0,
        downtime: 50.0,
        schedule: vec![],
        reconnect_jitter: 0.0,
        recovery_epsilon: 0.5,
    };
    cfg.seed = 7;
    let proto = MeasurementProtocol::quick();
    let a = run_steady_state(&cfg, &proto);
    let b = run_steady_state(&cfg, &proto);
    assert_eq!(
        bpp_json::to_string(&a.to_json()),
        bpp_json::to_string(&b.to_json()),
        "same seed, same exponential crash times, same bytes"
    );
    let ca = a.fault.as_ref().and_then(|f| f.crash).expect("crash on");
    assert!(ca.crashes >= 1, "MTBF 2000 must strike within the run");

    let mut other = cfg.clone();
    other.seed = 8;
    let c = run_steady_state(&other, &proto);
    let cc = c.fault.as_ref().and_then(|f| f.crash).expect("crash on");
    assert!(cc.crashes >= 1);
    assert_ne!(
        ca.first_crash_at, cc.first_crash_at,
        "a different seed must draw a different crash time"
    );
}

#[test]
fn channel_brownouts_push_tuned_clients_through_retry_and_stay_conserved() {
    // K-channel failover under chaos: a brownout phase blacks out each
    // pull shard in turn (the per-channel phase shifts stagger the window,
    // so one brownout never takes every shard down at once). Tuned fleet
    // clients whose shard is browned out must ride the retry path, the
    // conservation ledger must still balance every request, and the obs
    // layer must expose one `fault.ch<k>.state` timeline per channel.
    let mut cfg = ipp_small();
    cfg.num_channels = 4;
    cfg.think_time_ratio = 10.0;
    cfg.population = ClientPopulation::fleet(300);
    cfg.fault.retry = RetryPolicy {
        max_retries: 4,
        base_timeout: 8.0,
        backoff_factor: 2.0,
        max_backoff: 64.0,
        jitter: 0.0,
    };
    cfg.obs.enabled = true;
    cfg.seed = 31;
    let schedule = FaultSchedule {
        phases: vec![
            FaultPhase::calm(500.0),
            FaultPhase {
                duration: 2_000.0,
                brownout_period: 200.0,
                brownout_duration: 80.0,
                ..FaultPhase::calm(500.0)
            },
            FaultPhase::calm(500.0),
        ],
    };
    let mut proto = MeasurementProtocol::quick();
    proto.max_accesses = 2_000;
    proto.skip_accesses = 100;
    let r = run_chaos(&cfg, &proto, &schedule);

    // run_chaos audits internally; double-check the ledger balances and
    // actually carried traffic through the storm.
    assert!(r.ledger.violations().is_empty());
    assert_eq!(r.ledger.sent, r.ledger.accounted());
    assert!(r.ledger.sent > 0 && r.ledger.served > 0);

    let f = r.result.fault.as_ref().expect("fault model enabled");
    assert!(
        f.channel.requests_browned_out > 0,
        "the brownout windows must discard part of the shard traffic"
    );
    assert!(
        f.retries > 0,
        "browned-out shards must force tuned clients through the retry path"
    );

    // Per-channel brownout-state timelines: one per channel, and the
    // staggered windows must actually register on at least one shard.
    let obs = r.result.obs.as_ref().expect("obs layer enabled");
    let mut peak = 0.0_f64;
    for k in 0..cfg.num_channels {
        let name = format!("fault.ch{k}.state");
        let (_, tl) = obs
            .timelines
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("{name} timeline missing"));
        for (_, _, max) in tl.points() {
            peak = peak.max(max);
        }
    }
    assert_eq!(peak, 1.0, "some channel must sample as browned out");
}

#[test]
fn a_tampered_ledger_fails_the_audit() {
    let mut cfg = ipp_small();
    cfg.fault.crash.downtime = 20.0;
    cfg.seed = 11;
    let schedule = FaultSchedule {
        phases: vec![
            FaultPhase::calm(500.0),
            FaultPhase {
                duration: 500.0,
                request_loss: 0.1,
                crash_offset: Some(100.0),
                ..FaultPhase::calm(500.0)
            },
        ],
    };
    // run_chaos audits internally; reaching here means the real ledger is
    // clean.
    let r = run_chaos(&cfg, &MeasurementProtocol::quick(), &schedule);
    assert!(r.ledger.violations().is_empty());
    assert_eq!(r.ledger.sent, r.ledger.accounted());

    // Seeded mutations: each invariant must trip on its own.
    let mut lost = r.ledger;
    lost.served += 1;
    let v = lost.violations();
    assert!(v
        .iter()
        .any(|m| m.contains("request conservation violated")));

    let mut deep = r.ledger;
    deep.peak_queue_depth = deep.queue_capacity + 1;
    let v = deep.violations();
    assert!(v.iter().any(|m| m.contains("queue bound violated")));

    let mut warped = r.ledger;
    warped.time_regressions = 1;
    let v = warped.violations();
    assert!(v.iter().any(|m| m.contains("monotone time violated")));

    let result = std::panic::catch_unwind(move || lost.assert_clean());
    assert!(result.is_err(), "assert_clean must panic on a dirty ledger");
}
