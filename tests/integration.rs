//! Cross-crate integration tests: conservation laws and consistency
//! invariants of full simulation runs.

use bpp_core::{
    analytic, run_steady_state, run_warmup, Algorithm, MeasurementProtocol, QueueDiscipline,
    SystemConfig,
};

fn small(algo: Algorithm) -> SystemConfig {
    let mut c = SystemConfig::small();
    c.algorithm = algo;
    c
}

#[test]
fn slot_accounting_conserves_time() {
    for algo in [Algorithm::PurePush, Algorithm::PurePull, Algorithm::Ipp] {
        let r = run_steady_state(&small(algo), &MeasurementProtocol::quick());
        // One slot per broadcast unit: counters must sum to elapsed time
        // (±1 for the slot in flight when the run stopped).
        let total = r.slots.push_pages + r.slots.pull_pages + r.slots.empty + r.slots.idle;
        assert!(
            (total as f64 - r.sim_time).abs() <= 1.0,
            "{algo:?}: slots {total} vs time {}",
            r.sim_time
        );
    }
}

#[test]
fn pull_bandwidth_bound_is_respected() {
    for bw in [0.1, 0.3, 0.5] {
        let mut cfg = small(Algorithm::Ipp);
        cfg.pull_bw = bw;
        cfg.think_time_ratio = 250.0; // saturate so the bound binds
        let r = run_steady_state(&cfg, &MeasurementProtocol::quick());
        let total = r.slots.push_pages + r.slots.pull_pages + r.slots.empty;
        let frac = r.slots.pull_pages as f64 / total as f64;
        assert!(
            frac <= bw + 0.03,
            "PullBW {bw}: pull fraction {frac} exceeds bound"
        );
    }
}

#[test]
fn pure_push_never_pulls_and_pure_pull_never_pushes() {
    let push = run_steady_state(&small(Algorithm::PurePush), &MeasurementProtocol::quick());
    assert_eq!(push.slots.pull_pages, 0);
    assert_eq!(push.requests_received, 0);
    let pull = run_steady_state(&small(Algorithm::PurePull), &MeasurementProtocol::quick());
    assert_eq!(pull.slots.push_pages, 0);
    assert_eq!(pull.slots.empty, 0);
    assert!(pull.requests_received > 0);
}

#[test]
fn responses_are_bounded_by_push_period_under_pure_push() {
    // The "safety net": under Pure-Push no response can exceed one major
    // cycle (1608 slots for the paper layout; scaled config differs).
    let cfg = small(Algorithm::PurePush);
    let program = analytic::build_program(&cfg);
    let r = run_steady_state(&cfg, &MeasurementProtocol::quick());
    assert!(r.mean_response <= program.major_cycle() as f64);
}

#[test]
fn analytic_and_simulated_pull_agree_at_light_load() {
    // At TTR=10 the queue is nearly empty; the M/M/1/K model should be in
    // the right ballpark for the *miss* response, i.e. overall response
    // scaled by the miss probability.
    let mut cfg = small(Algorithm::PurePull);
    cfg.think_time_ratio = 10.0;
    let sim = run_steady_state(&cfg, &MeasurementProtocol::quick());
    let model = analytic::pull_mm1k(&cfg);
    assert!(model.block_prob < 0.05, "light load should not block");
    // Simulated mean counts hits as 0; the model's response is per accepted
    // request. Both should be small single-digit numbers of slots.
    assert!(sim.mean_response < 10.0, "sim {}", sim.mean_response);
    assert!(model.response < 10.0, "model {}", model.response);
}

#[test]
fn warmup_milestones_are_monotone_and_complete_under_push() {
    let cfg = small(Algorithm::PurePush);
    let r = run_warmup(&cfg, &MeasurementProtocol::quick());
    let times: Vec<f64> = r.times.iter().map(|t| t.expect("reached")).collect();
    for w in times.windows(2) {
        assert!(w[0] <= w[1], "milestones must be non-decreasing: {times:?}");
    }
    // Deliveries complete at slot end (slot start + 1), so the last
    // milestone may carry a timestamp one unit past the engine clock.
    assert!(r.sim_time + 1.0 >= *times.last().unwrap());
}

#[test]
fn safety_net_bounds_worst_case_under_push_but_not_pull() {
    // §4.1: the push schedule "provides an upper bound on the latency for
    // any page"; Pure-Pull has no such bound once the server saturates.
    let proto = MeasurementProtocol::quick();
    let push_cfg = small(Algorithm::PurePush);
    let program = analytic::build_program(&push_cfg);
    let push = run_steady_state(&push_cfg, &proto);
    assert!(
        push.max_response <= program.major_cycle() as f64 + 1.0,
        "push worst case {} exceeds the major cycle {}",
        push.max_response,
        program.major_cycle()
    );
    let mut pull_cfg = small(Algorithm::PurePull);
    pull_cfg.think_time_ratio = 250.0;
    let pull = run_steady_state(&pull_cfg, &proto);
    assert!(
        pull.max_response > push.max_response,
        "saturated pull worst case {} should exceed push's bound {}",
        pull.max_response,
        push.max_response
    );
}

#[test]
fn percentiles_are_ordered() {
    let r = run_steady_state(&small(Algorithm::Ipp), &MeasurementProtocol::quick());
    let (p50, p90, p99) = (
        r.p50_response.unwrap(),
        r.p90_response.unwrap(),
        r.p99_response.unwrap(),
    );
    assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
    assert!(
        p99 <= r.max_response + 4.0,
        "p99 {p99} vs max {}",
        r.max_response
    );
}

#[test]
fn most_requested_discipline_runs_and_stays_bounded() {
    let mut cfg = small(Algorithm::Ipp);
    cfg.queue_discipline = QueueDiscipline::MostRequested;
    cfg.think_time_ratio = 100.0;
    let r = run_steady_state(&cfg, &MeasurementProtocol::quick());
    assert!(r.mean_response.is_finite() && r.mean_response > 0.0);
}

#[test]
fn zero_cache_client_still_converges() {
    let mut cfg = small(Algorithm::Ipp);
    cfg.cache_size = 0;
    cfg.offset = false; // offset needs cache_size <= slowest disk; moot at 0
    let r = run_steady_state(&cfg, &MeasurementProtocol::quick());
    assert_eq!(r.mc_hit_rate, 0.0);
    assert!(r.mean_response > 0.0);
}

#[test]
fn chop_with_ample_pull_bw_improves_over_full_broadcast() {
    // Experiment 3's headline at light load: removing cold pages from the
    // push schedule speeds up the broadcast when pulls can absorb them.
    let mk = |chop: usize| {
        let mut c = small(Algorithm::Ipp);
        c.pull_bw = 0.5;
        c.thres_perc = 0.35;
        c.think_time_ratio = 25.0;
        c.chop = chop;
        c
    };
    let proto = MeasurementProtocol::quick();
    let full = run_steady_state(&mk(0), &proto);
    let chopped = run_steady_state(&mk(50), &proto);
    assert!(
        chopped.mean_response < full.mean_response,
        "chopped {} vs full {}",
        chopped.mean_response,
        full.mean_response
    );
}

#[test]
fn noise_zero_and_identity_permutation_agree() {
    // Noise=0 must be *exactly* the identity workload: two configs that
    // differ only in the (unused) noise stream produce identical results.
    let mut a = small(Algorithm::PurePush);
    a.noise = 0.0;
    let r1 = run_steady_state(&a, &MeasurementProtocol::quick());
    let r2 = run_steady_state(&a, &MeasurementProtocol::quick());
    assert_eq!(r1.mean_response, r2.mean_response);
}
