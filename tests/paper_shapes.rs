//! Qualitative reproduction checks: the orderings, crossovers and
//! saturation effects reported in the paper's evaluation must hold in this
//! implementation. Absolute numbers differ from the paper's (unpublished
//! workload-generator details; see EXPERIMENTS.md) — these tests lock the
//! *shape* of every major claim at the full 1000-page scale.
//!
//! Runs use the quick protocol; each assertion compares means whose gaps
//! are far larger than the measurement noise.

use bpp_core::{run_steady_state, run_warmup, Algorithm, MeasurementProtocol, SystemConfig};

fn paper(algo: Algorithm, ttr: f64) -> SystemConfig {
    let mut c = SystemConfig::paper_default();
    c.algorithm = algo;
    c.think_time_ratio = ttr;
    c.pull_bw = 0.5;
    c.thres_perc = 0.0;
    c
}

fn proto() -> MeasurementProtocol {
    MeasurementProtocol::quick()
}

#[test]
fn light_load_pull_beats_push_by_orders_of_magnitude() {
    // §4.1: "At the extreme left ... the pull-based approaches perform
    // similarly and several orders of magnitude better than Pure-Push."
    let pull = run_steady_state(&paper(Algorithm::PurePull, 10.0), &proto());
    let push = run_steady_state(&paper(Algorithm::PurePush, 10.0), &proto());
    assert!(
        pull.mean_response * 20.0 < push.mean_response,
        "pull {} vs push {}",
        pull.mean_response,
        push.mean_response
    );
}

#[test]
fn heavy_load_push_beats_pull() {
    // §4.1: beyond saturation Pure-Pull performs worse than Pure-Push.
    let pull = run_steady_state(&paper(Algorithm::PurePull, 250.0), &proto());
    let push = run_steady_state(&paper(Algorithm::PurePush, 250.0), &proto());
    assert!(
        push.mean_response < pull.mean_response,
        "push {} vs pull {}",
        push.mean_response,
        pull.mean_response
    );
}

#[test]
fn heavy_load_ipp_beats_pure_pull() {
    // §4.1: "IPP ... levels out to a better response time than Pure-Pull
    // when the contention at the server is high" — the safety net.
    let ipp = run_steady_state(&paper(Algorithm::Ipp, 250.0), &proto());
    let pull = run_steady_state(&paper(Algorithm::PurePull, 250.0), &proto());
    assert!(
        ipp.mean_response < pull.mean_response,
        "ipp {} vs pull {}",
        ipp.mean_response,
        pull.mean_response
    );
}

#[test]
fn moderate_load_ipp_loses_to_pure_pull() {
    // §4.2: "IPP loses to Pure-Pull under moderate loads because it sends
    // the same number of requests ... but has less bandwidth".
    let ipp = run_steady_state(&paper(Algorithm::Ipp, 25.0), &proto());
    let pull = run_steady_state(&paper(Algorithm::PurePull, 25.0), &proto());
    assert!(
        pull.mean_response < ipp.mean_response,
        "pull {} vs ipp {}",
        pull.mean_response,
        ipp.mean_response
    );
}

#[test]
fn drop_rate_grows_with_load() {
    let lo = run_steady_state(&paper(Algorithm::PurePull, 10.0), &proto());
    let hi = run_steady_state(&paper(Algorithm::PurePull, 250.0), &proto());
    assert!(
        lo.ignore_rate < 0.10,
        "light load ignores {}",
        lo.ignore_rate
    );
    assert!(hi.drop_rate > 0.30, "heavy load drops {}", hi.drop_rate);
}

#[test]
fn ipp_saturates_earlier_than_pure_pull() {
    // §4.2: at the same load, IPP's server drops more requests than
    // Pure-Pull's (paper: 68.8% vs 39.9% at TTR=50).
    let ipp = run_steady_state(&paper(Algorithm::Ipp, 50.0), &proto());
    let pull = run_steady_state(&paper(Algorithm::PurePull, 50.0), &proto());
    assert!(
        ipp.ignore_rate > pull.ignore_rate,
        "ipp {} vs pull {}",
        ipp.ignore_rate,
        pull.ignore_rate
    );
}

#[test]
fn threshold_extends_ipp_scalability() {
    // §4.2 / Figure 6: at a moderate-heavy load, a 25% threshold must beat
    // the unthresholded IPP by unloading the server.
    let mut with = paper(Algorithm::Ipp, 75.0);
    with.thres_perc = 0.25;
    let without = paper(Algorithm::Ipp, 75.0);
    let rw = run_steady_state(&with, &proto());
    let ro = run_steady_state(&without, &proto());
    assert!(
        rw.mean_response < ro.mean_response,
        "thres 25% {} vs 0% {}",
        rw.mean_response,
        ro.mean_response
    );
    assert!(rw.drop_rate <= ro.drop_rate + 0.02);
}

#[test]
fn threshold_hurts_at_very_light_load() {
    // §4.2: "Under low loads, threshold hurts performance by unnecessarily
    // constraining clients."
    let mut with = paper(Algorithm::Ipp, 10.0);
    with.thres_perc = 0.35;
    let without = paper(Algorithm::Ipp, 10.0);
    let rw = run_steady_state(&with, &proto());
    let ro = run_steady_state(&without, &proto());
    assert!(
        ro.mean_response < rw.mean_response,
        "no-thres {} vs thres {}",
        ro.mean_response,
        rw.mean_response
    );
}

#[test]
fn noise_hurts_pull_only_under_load() {
    // §4.1.4 / Figure 5(a): Pure-Pull is Noise-insensitive at light load
    // and heavily penalised at high load.
    let mk = |noise: f64, ttr: f64| {
        let mut c = paper(Algorithm::PurePull, ttr);
        c.noise = noise;
        c
    };
    let light_zero = run_steady_state(&mk(0.0, 10.0), &proto());
    let light_noisy = run_steady_state(&mk(0.35, 10.0), &proto());
    assert!(
        (light_noisy.mean_response - light_zero.mean_response).abs()
            < light_zero.mean_response.max(1.0) * 1.5,
        "light load should be noise-insensitive: {} vs {}",
        light_noisy.mean_response,
        light_zero.mean_response
    );
    let heavy_zero = run_steady_state(&mk(0.0, 250.0), &proto());
    let heavy_noisy = run_steady_state(&mk(0.35, 250.0), &proto());
    assert!(
        heavy_noisy.mean_response > heavy_zero.mean_response * 1.08,
        "heavy load must punish noise: {} vs {}",
        heavy_noisy.mean_response,
        heavy_zero.mean_response
    );
}

#[test]
fn warmup_pull_fastest_when_light_push_best_when_heavy() {
    // §4.1.3 / Figure 4: warm-up order inverts with load.
    let p = proto();
    let t95 = |r: &bpp_core::WarmupResult| r.times.last().copied().flatten().unwrap_or(f64::MAX);
    let pull_light = t95(&run_warmup(&paper(Algorithm::PurePull, 25.0), &p));
    let push_light = t95(&run_warmup(&paper(Algorithm::PurePush, 25.0), &p));
    assert!(
        pull_light < push_light,
        "light: pull {pull_light} vs push {push_light}"
    );
    let pull_heavy = t95(&run_warmup(&paper(Algorithm::PurePull, 250.0), &p));
    let push_heavy = t95(&run_warmup(&paper(Algorithm::PurePush, 250.0), &p));
    assert!(
        push_heavy < pull_heavy,
        "heavy: push {push_heavy} vs pull {pull_heavy}"
    );
}

#[test]
fn restricted_push_needs_adequate_pull_bandwidth() {
    // §4.3 / Figure 7(b): with a threshold, chopping helps at PullBW 50%
    // but a starved PullBW 10% cannot absorb the chopped pages.
    let mk = |bw: f64, chop: usize| {
        let mut c = paper(Algorithm::Ipp, 25.0);
        c.pull_bw = bw;
        c.thres_perc = 0.35;
        c.chop = chop;
        c
    };
    let p = proto();
    let rich_full = run_steady_state(&mk(0.5, 0), &p);
    let rich_chop = run_steady_state(&mk(0.5, 500), &p);
    assert!(
        rich_chop.mean_response < rich_full.mean_response,
        "PullBW 50%: chop {} vs full {}",
        rich_chop.mean_response,
        rich_full.mean_response
    );
    let poor_chop = run_steady_state(&mk(0.1, 700), &p);
    assert!(
        poor_chop.mean_response > rich_chop.mean_response * 2.0,
        "PullBW 10% chopped {} should collapse vs 50% {}",
        poor_chop.mean_response,
        rich_chop.mean_response
    );
}

#[test]
fn pure_push_line_is_flat_across_load() {
    // Figure 3(a)'s flat line, at full scale.
    let a = run_steady_state(&paper(Algorithm::PurePush, 10.0), &proto());
    let b = run_steady_state(&paper(Algorithm::PurePush, 250.0), &proto());
    assert_eq!(a.mean_response, b.mean_response);
}
