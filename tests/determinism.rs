//! Reproducibility guarantees: every run is a pure function of its
//! configuration (including the seed).

use bpp_core::adaptive::{run_adaptive, AdaptiveConfig};
use bpp_core::experiments::par_run;
use bpp_core::{run_steady_state, run_warmup, Algorithm, MeasurementProtocol, SystemConfig};

fn cfg(algo: Algorithm, seed: u64) -> SystemConfig {
    let mut c = SystemConfig::small();
    c.algorithm = algo;
    c.seed = seed;
    c
}

#[test]
fn steady_state_is_deterministic_for_all_algorithms() {
    let proto = MeasurementProtocol::quick();
    for algo in [Algorithm::PurePush, Algorithm::PurePull, Algorithm::Ipp] {
        let a = run_steady_state(&cfg(algo, 1), &proto);
        let b = run_steady_state(&cfg(algo, 1), &proto);
        assert_eq!(a.mean_response, b.mean_response, "{algo:?}");
        assert_eq!(a.measured_accesses, b.measured_accesses);
        assert_eq!(a.requests_received, b.requests_received);
        assert_eq!(a.sim_time, b.sim_time);
    }
}

#[test]
fn warmup_is_deterministic() {
    let proto = MeasurementProtocol::quick();
    let a = run_warmup(&cfg(Algorithm::Ipp, 2), &proto);
    let b = run_warmup(&cfg(Algorithm::Ipp, 2), &proto);
    assert_eq!(a.times, b.times);
}

#[test]
fn adaptive_is_deterministic() {
    let proto = MeasurementProtocol::quick();
    let ac = AdaptiveConfig::default();
    let a = run_adaptive(&cfg(Algorithm::Ipp, 3), &proto, ac);
    let b = run_adaptive(&cfg(Algorithm::Ipp, 3), &proto, ac);
    assert_eq!(a.steady.mean_response, b.steady.mean_response);
    assert_eq!(a.final_pull_bw, b.final_pull_bw);
    assert_eq!(a.adjustments, b.adjustments);
}

#[test]
fn seeds_actually_matter() {
    let proto = MeasurementProtocol::quick();
    let a = run_steady_state(&cfg(Algorithm::Ipp, 10), &proto);
    let b = run_steady_state(&cfg(Algorithm::Ipp, 11), &proto);
    assert_ne!(a.mean_response, b.mean_response);
}

#[test]
fn parallel_and_sequential_execution_agree() {
    let proto = MeasurementProtocol::quick();
    let configs: Vec<SystemConfig> = (0..5).map(|i| cfg(Algorithm::Ipp, 20 + i)).collect();
    let par = par_run(&configs, &proto);
    for (c, p) in configs.iter().zip(&par) {
        let seq = run_steady_state(c, &proto);
        assert_eq!(seq.mean_response, p.mean_response);
    }
}

#[test]
fn results_serialize_to_json() {
    let proto = MeasurementProtocol::quick();
    let r = run_steady_state(&cfg(Algorithm::Ipp, 30), &proto);
    let json = bpp_json::to_string_pretty(&r);
    assert!(json.contains("mean_response"));
    assert!(json.contains("drop_rate"));
}

#[test]
fn steady_state_results_are_bitwise_identical() {
    // Stronger than comparing a few fields: the full serialized result —
    // every metric, every quantile, every slot counter — must match bit
    // for bit across two runs of the same config + seed.
    let proto = MeasurementProtocol::quick();
    for algo in [Algorithm::PurePush, Algorithm::PurePull, Algorithm::Ipp] {
        let a = run_steady_state(&cfg(algo, 7), &proto);
        let b = run_steady_state(&cfg(algo, 7), &proto);
        assert_eq!(
            bpp_json::to_string(&a),
            bpp_json::to_string(&b),
            "{algo:?} differs between identical runs"
        );
    }
}

#[test]
fn noise_permutation_depends_only_on_seed() {
    // Same seed + same noise level must sample the same permutation even
    // across algorithms (the noise stream is independent of the others).
    let proto = MeasurementProtocol::quick();
    let mut a = cfg(Algorithm::PurePush, 40);
    a.noise = 0.35;
    let r1 = run_steady_state(&a, &proto);
    let r2 = run_steady_state(&a, &proto);
    assert_eq!(r1.mean_response, r2.mean_response);
}
