//! Randomised-configuration robustness: every valid `SystemConfig` must
//! produce a finite, invariant-respecting run — no panics, no stalls, no
//! bandwidth-bound violations — across the whole parameter space, not just
//! the paper's grid.
//!
//! Configurations are drawn by a deterministic generator: case `i` derives
//! every knob from `stream_rng(SEED, i)`, so any failure reproduces from
//! the case index alone.

// bpp-lint: allow-file(D1): property cases derive per-case RNG streams from the case index
use bpp_core::{
    run_steady_state, Algorithm, CachePolicy, ClientPopulation, FaultConfig, MeasurementProtocol,
    ObsConfig, QueueDiscipline, SystemConfig,
};
use bpp_sim::rng::{stream_rng, Rng};

const SEED: u64 = 0x5EED_B0DC;
const CASES: u64 = 24;

/// Generator: one configuration spanning algorithms, cache policies, skew,
/// load, chop fractions, disciplines, prefetch and update churn.
fn gen_config(case: u64) -> SystemConfig {
    let mut rng = stream_rng(SEED, case);
    let algorithm = match rng.random_range(0..3) {
        0 => Algorithm::PurePush,
        1 => Algorithm::PurePull,
        _ => Algorithm::Ipp,
    };
    let mc_cache_policy = match rng.random_range(0..5) {
        0 => None,
        1 => Some(CachePolicy::Pix),
        2 => Some(CachePolicy::P),
        3 => Some(CachePolicy::Lru),
        _ => Some(CachePolicy::Lfu),
    };
    let unit = 2 + rng.random_range(0..6);
    let theta = rng.random::<f64>() * 1.5;
    let ssp = [0.0, 0.5, 0.95, 1.0][rng.random_range(0..4)];
    let noise = rng.random::<f64>() * 0.5;
    let ttr = 1.0 + rng.random::<f64>() * 299.0;
    let bw = rng.random::<f64>();
    let thres = [0.0, 0.1, 0.35, 1.0][rng.random_range(0..4)];
    let chopq = rng.random_range(0..4);
    let seed = rng.random::<u64>();
    let disc = if rng.random_bool(0.5) {
        QueueDiscipline::Fifo
    } else {
        QueueDiscipline::MostRequested
    };
    let pf = rng.random_bool(0.5);
    let upd = [0.0, 0.02, 0.2][rng.random_range(0..3)];
    // A third of the cases run faultless, a third with symmetric channel
    // loss (retries + degradation on), a third add server brownouts too.
    let fault = match rng.random_range(0..3) {
        0 => FaultConfig::none(),
        1 => FaultConfig::lossy([0.05, 0.2][rng.random_range(0..2)]),
        _ => FaultConfig {
            brownout_period: 500.0,
            brownout_duration: 50.0,
            ..FaultConfig::lossy(0.1)
        },
    };

    // Half the cases run with the observability layer on: it draws no
    // randomness and must not perturb any invariant checked below.
    let obs = ObsConfig {
        enabled: rng.random_bool(0.5),
        trace_capacity: 64,
        ..ObsConfig::default()
    };

    // A quarter of the cases replace the Virtual Client with a real arena
    // fleet (million-client extension).
    let population = if rng.random_bool(0.25) {
        ClientPopulation::fleet(1 + rng.random_range(0..400))
    } else {
        ClientPopulation::aggregate()
    };

    // Half the cases run the K-channel extension (2 or 4 channels).
    let num_channels = [1, 1, 2, 4][rng.random_range(0..4)];

    let disk_sizes = vec![unit, 4 * unit, 5 * unit];
    let db = 10 * unit;
    let slowest = 5 * unit;
    let cache = unit.min(slowest);
    SystemConfig {
        db_size: db,
        cache_size: cache,
        mc_think_time: 5.0,
        think_time_ratio: ttr,
        steady_state_perc: ssp,
        noise,
        zipf_theta: theta,
        disk_sizes,
        rel_freqs: vec![3, 2, 1],
        offset: true,
        server_queue_size: unit,
        pull_bw: bw,
        thres_perc: thres,
        chop: chopq * slowest / 4,
        algorithm,
        mc_cache_policy,
        queue_discipline: disc,
        mc_prefetch: pf,
        update_rate: upd,
        update_access_correlation: 0.5,
        seed,
        num_channels,
        fault,
        obs,
        population,
    }
}

#[test]
fn any_valid_config_runs_to_completion() {
    for case in 0..CASES {
        let cfg = gen_config(case);
        let mut proto = MeasurementProtocol::quick();
        // Keep the fuzz cheap: tiny measurement targets, tight caps.
        proto.max_accesses = 400;
        proto.skip_accesses = 50;
        proto.max_warmup_accesses = 400;
        proto.max_sim_time = 2.0e5;
        let r = run_steady_state(&cfg, &proto);
        // Finite, non-negative outputs.
        assert!(
            r.mean_response.is_finite() && r.mean_response >= 0.0,
            "case {case}"
        );
        assert!(
            r.sim_time > 0.0 && r.sim_time <= proto.max_sim_time + 1.0,
            "case {case}"
        );
        assert!((0.0..=1.0).contains(&r.mc_hit_rate), "case {case}");
        assert!((0.0..=1.0).contains(&r.drop_rate), "case {case}");
        assert!(r.drop_rate <= r.ignore_rate + 1e-12, "case {case}");
        // Slot conservation: every broadcast unit carries one slot per
        // channel (K channels = K-fold bandwidth).
        let total = r.slots.push_pages + r.slots.pull_pages + r.slots.empty + r.slots.idle;
        let k = cfg.num_channels as f64;
        assert!((total as f64 - k * r.sim_time).abs() <= k, "case {case}");
        // Algorithm bandwidth invariants.
        match cfg.algorithm {
            Algorithm::PurePush => {
                assert_eq!(r.slots.pull_pages, 0, "case {case}");
                assert_eq!(r.requests_received, 0, "case {case}");
            }
            Algorithm::PurePull => {
                assert_eq!(r.slots.push_pages, 0, "case {case}");
                assert_eq!(r.slots.empty, 0, "case {case}");
            }
            Algorithm::Ipp => {}
        }
        // Fleet-population invariants: the result section exists exactly
        // when a fleet could run (a backchannel exists), and its rates
        // are sane.
        if cfg.population.is_fleet() && cfg.algorithm != Algorithm::PurePush {
            let f = r.fleet.as_ref().expect("fleet section present");
            assert_eq!(
                f.clients, cfg.population.fleet_clients as u64,
                "case {case}"
            );
            assert!((0.0..=1.0).contains(&f.hit_rate), "case {case}");
            assert!(f.completed <= f.accesses, "case {case}");
            assert!(
                f.requests_sent + f.requests_filtered <= f.accesses,
                "case {case}"
            );
        } else {
            assert!(r.fleet.is_none(), "case {case}");
        }
        // Determinism: the same config reruns identically.
        let r2 = run_steady_state(&cfg, &proto);
        assert_eq!(r.mean_response, r2.mean_response, "case {case}");
        assert_eq!(r.sim_time, r2.sim_time, "case {case}");
    }
}
