//! Randomised-configuration robustness: every valid `SystemConfig` must
//! produce a finite, invariant-respecting run — no panics, no stalls, no
//! bandwidth-bound violations — across the whole parameter space, not just
//! the paper's grid.

use bpp_core::{
    run_steady_state, Algorithm, CachePolicy, MeasurementProtocol, QueueDiscipline, SystemConfig,
};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SystemConfig> {
    let algo = prop_oneof![
        Just(Algorithm::PurePush),
        Just(Algorithm::PurePull),
        Just(Algorithm::Ipp),
    ];
    let policy = prop_oneof![
        Just(None),
        Just(Some(CachePolicy::Pix)),
        Just(Some(CachePolicy::P)),
        Just(Some(CachePolicy::Lru)),
        Just(Some(CachePolicy::Lfu)),
    ];
    (
        (
            algo,
            policy,
            2usize..8,                  // disk unit (scales sizes below)
            0.0f64..1.5,                // zipf theta
            prop_oneof![Just(0.0), Just(0.5), Just(0.95), Just(1.0)], // ssp
            0.0f64..0.5,                // noise
            1.0f64..300.0,              // think time ratio
        ),
        (
            0.0f64..1.0,                // pull bw
            prop_oneof![Just(0.0f64), Just(0.1), Just(0.35), Just(1.0)], // thres
            0usize..4,                  // chop quarters of the slowest disk
            any::<u64>(),               // seed
            prop_oneof![Just(QueueDiscipline::Fifo), Just(QueueDiscipline::MostRequested)],
            any::<bool>(),              // prefetch
            prop_oneof![Just(0.0f64), Just(0.02), Just(0.2)], // update rate
        ),
    )
        .prop_map(
            |((algorithm, policy, unit, theta, ssp, noise, ttr), (bw, thres, chopq, seed, disc, pf, upd))| {
                let disk_sizes = vec![unit, 4 * unit, 5 * unit];
                let db = 10 * unit;
                let slowest = 5 * unit;
                let cache = unit.min(slowest);
                SystemConfig {
                    db_size: db,
                    cache_size: cache,
                    mc_think_time: 5.0,
                    think_time_ratio: ttr,
                    steady_state_perc: ssp,
                    noise,
                    zipf_theta: theta,
                    disk_sizes,
                    rel_freqs: vec![3, 2, 1],
                    offset: true,
                    server_queue_size: unit,
                    pull_bw: bw,
                    thres_perc: thres,
                    chop: chopq * slowest / 4,
                    algorithm,
                    mc_cache_policy: policy,
                    queue_discipline: disc,
                    mc_prefetch: pf,
                    update_rate: upd,
                    update_access_correlation: 0.5,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn any_valid_config_runs_to_completion(cfg in arb_config()) {
        let mut proto = MeasurementProtocol::quick();
        // Keep the fuzz cheap: tiny measurement targets, tight caps.
        proto.max_accesses = 400;
        proto.skip_accesses = 50;
        proto.max_warmup_accesses = 400;
        proto.max_sim_time = 2.0e5;
        let r = run_steady_state(&cfg, &proto);
        // Finite, non-negative outputs.
        prop_assert!(r.mean_response.is_finite() && r.mean_response >= 0.0);
        prop_assert!(r.sim_time > 0.0 && r.sim_time <= proto.max_sim_time + 1.0);
        prop_assert!((0.0..=1.0).contains(&r.mc_hit_rate));
        prop_assert!((0.0..=1.0).contains(&r.drop_rate));
        prop_assert!(r.drop_rate <= r.ignore_rate + 1e-12);
        // Slot conservation.
        let total = r.slots.push_pages + r.slots.pull_pages + r.slots.empty + r.slots.idle;
        prop_assert!((total as f64 - r.sim_time).abs() <= 1.0);
        // Algorithm bandwidth invariants.
        match cfg.algorithm {
            Algorithm::PurePush => {
                prop_assert_eq!(r.slots.pull_pages, 0);
                prop_assert_eq!(r.requests_received, 0);
            }
            Algorithm::PurePull => {
                prop_assert_eq!(r.slots.push_pages, 0);
                prop_assert_eq!(r.slots.empty, 0);
            }
            Algorithm::Ipp => {}
        }
        // Determinism: the same config reruns identically.
        let r2 = run_steady_state(&cfg, &proto);
        prop_assert_eq!(r.mean_response, r2.mean_response);
        prop_assert_eq!(r.sim_time, r2.sim_time);
    }
}
