#!/usr/bin/env sh
# Full offline CI gate: build, test, lint, format.
#
# `--frozen` forbids both network access and lockfile changes, proving the
# workspace builds with zero external dependencies from a cold checkout.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --frozen
cargo test -q --frozen
cargo clippy --all-targets --frozen -- -D warnings
cargo fmt --check

echo "ci: all checks passed"
