#!/usr/bin/env sh
# Full offline CI gate: build, test, lint, format, fault-model golden check.
#
# `--frozen` forbids both network access and lockfile changes, proving the
# workspace builds with zero external dependencies from a cold checkout.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --frozen
cargo test -q --frozen
# The fault-injection suite runs as part of the workspace tests above, but
# gate on it explicitly so a filtered/partial test invocation can't skip it.
cargo test -q --frozen -p bpp-core --test faults
cargo clippy --all-targets --frozen -- -D warnings

# Determinism & hygiene static analysis (see DESIGN.md "Static analysis"):
# exit 1 on any unsuppressed diagnostic, exit 3 on an internal lexer
# failure. On success the human report prints the per-rule counts and
# wall-clock (--timing lands in the log only — the flag is banned from
# golden regeneration); on failure re-run without --deny so the log
# carries the full report.
cargo run --release --frozen -p bpp-lint -- --deny --timing || {
    status=$?
    echo "ci: bpp-lint --deny failed (exit $status); full report follows" >&2
    cargo run --release --frozen -p bpp-lint -- >&2 || true
    exit "$status"
}

# Golden drift guard: re-linting the committed violation corpus must
# reproduce the committed schema-v3 report byte for byte. Report-only
# mode exits 0 by design (the corpus is full of violations), so the
# pipeline status is cmp's.
cargo run --release --frozen -p bpp-lint -- --root crates/lint/fixtures --json \
    | cmp - results/lint_fixture.json \
    || { echo "ci: lint fixture report diverged from results/lint_fixture.json" >&2; exit 1; }

# --fix gates. First: the clean workspace must need zero edits (a nonzero
# count here means a committed file carries an unapplied machine fix).
cargo run --release --frozen -p bpp-lint -- --fix --json \
    | grep -q '"fixed": 0' \
    || { echo "ci: bpp-lint --fix wants to edit the committed workspace" >&2; exit 1; }

# Second: on a scratch copy of the violation corpus, --fix must converge
# in one pass — the first run applies edits, the second applies none.
# The copy cannot keep the name "fixtures": the scanner skips that
# directory name by design.
fixdir="$(mktemp -d)"
trap 'rm -rf "$fixdir"' EXIT
cp -r crates/lint/fixtures/. "$fixdir/"
first="$(cargo run --release --frozen -p bpp-lint -- --root "$fixdir" --fix --json \
    | grep -o '"fixed": [0-9]*')"
[ "$first" != '"fixed": 0' ] \
    || { echo "ci: --fix applied nothing on the violation corpus" >&2; exit 1; }
cargo run --release --frozen -p bpp-lint -- --root "$fixdir" --fix --json \
    | grep -q '"fixed": 0' \
    || { echo "ci: --fix is not idempotent on the violation corpus" >&2; exit 1; }

cargo fmt --check

# Fault-model regression: a fixed-seed loss-sweep cell must reproduce the
# committed FaultReport bit for bit.
./target/release/faults --smoke | cmp - results/fault_smoke.json \
    || { echo "ci: fault smoke report diverged from results/fault_smoke.json" >&2; exit 1; }

# Observability regression: the same fixed-seed cell with the obs layer on
# must reproduce the committed SteadyStateResult (including its "obs"
# section) bit for bit — the layer is deterministic by construction.
./target/release/obs --smoke | cmp - results/obs_smoke.json \
    || { echo "ci: obs smoke report diverged from results/obs_smoke.json" >&2; exit 1; }

# Fleet regression: a fixed-seed arena-fleet cell (million-client
# extension) must reproduce the committed SteadyStateResult (including its
# "fleet" section) bit for bit.
./target/release/fleet --smoke | cmp - results/fleet_smoke.json \
    || { echo "ci: fleet smoke report diverged from results/fleet_smoke.json" >&2; exit 1; }

# Chaos regression: a fixed-seed phased fault timeline (loss + crash +
# brownout) must reproduce the committed ChaosResult bit for bit. The run
# itself hard-fails on any request-conservation violation, so this line is
# also the auditor's place in the gate.
./target/release/chaos --smoke | cmp - results/chaos_smoke.json \
    || { echo "ci: chaos smoke report diverged from results/chaos_smoke.json" >&2; exit 1; }

# K-channel regression: a fixed-seed four-channel cell (channel-tuning
# clients, sharded pull service, obs layer on) must reproduce the committed
# SteadyStateResult — including the per-channel `server.ch<k>.*` and
# `broadcast.ch<k>.*` timelines — bit for bit.
./target/release/channels --smoke | cmp - results/channels_smoke.json \
    || { echo "ci: channels smoke report diverged from results/channels_smoke.json" >&2; exit 1; }

# Static program verification: rules V0-V6 over every experiment-grid
# configuration of the paper system must raise nothing (--deny exits 1 on
# any finding and prints the report). The grid includes the K-channel
# generator targets (K1/IPP-ch*), so every generated placement is gated on
# conflict-freedom (rule V6) here.
./target/release/verify --deny \
    || { echo "ci: bpp-verify found broadcast-program violations" >&2; exit 1; }

# Verifier report drift guard: the small-system grid report must reproduce
# the committed schema-v1 JSON byte for byte, so rule/message/schema
# changes are always an intentional golden regeneration.
./target/release/verify --smoke | cmp - results/verify_smoke.json \
    || { echo "ci: verify smoke report diverged from results/verify_smoke.json" >&2; exit 1; }

# Micro-benchmarks are opt-in (BPP_BENCH=1): wall-clock noise has no place
# in the default gate, but the engine/obs hot paths can be tracked on
# demand. `cargo bench` runs from the package root, so the BENCH_*.json
# files (gitignored) are moved up to the repo root for collection.
if [ "${BPP_BENCH:-0}" = "1" ]; then
    cargo bench --frozen -p bpp-bench --bench engine --bench obs
    mv crates/bench/BENCH_engine.json crates/bench/BENCH_obs.json .
fi

echo "ci: all checks passed"
