#!/usr/bin/env sh
# Full offline CI gate: build, test, lint, format, fault-model golden check.
#
# `--frozen` forbids both network access and lockfile changes, proving the
# workspace builds with zero external dependencies from a cold checkout.
set -eu

cd "$(dirname "$0")/.."

cargo build --release --frozen
cargo test -q --frozen
# The fault-injection suite runs as part of the workspace tests above, but
# gate on it explicitly so a filtered/partial test invocation can't skip it.
cargo test -q --frozen -p bpp-core --test faults
cargo clippy --all-targets --frozen -- -D warnings

# Determinism & hygiene static analysis (see DESIGN.md "Static analysis"):
# nonzero exit on any unsuppressed diagnostic.
cargo run --release --frozen -p bpp-lint -- --deny

cargo fmt --check

# Fault-model regression: a fixed-seed loss-sweep cell must reproduce the
# committed FaultReport bit for bit.
./target/release/faults --smoke | cmp - results/fault_smoke.json \
    || { echo "ci: fault smoke report diverged from results/fault_smoke.json" >&2; exit 1; }

echo "ci: all checks passed"
