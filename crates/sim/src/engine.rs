//! The event queue and dispatch loop.
//!
//! Design notes:
//!
//! * Time is `f64`. The model never produces NaN times; scheduling a NaN or
//!   negative-delay event is a programming error and panics immediately,
//!   which is the correct behaviour for a simulation (silently reordering
//!   time would invalidate every downstream statistic).
//! * Same-instant events fire in the order they were scheduled. This is
//!   load-bearing: the server slot at time `t` must observe every request
//!   that "arrived at `t`" only if it was scheduled before the slot event,
//!   exactly like a process-oriented simulator with deterministic process
//!   ordering.
//! * The queue is a hashed hierarchical timer wheel (11 levels × 64 slots,
//!   6 bits per level — 66 bits, so every `u64` tick is addressable and the
//!   top levels double as the overflow range). `schedule` and `cancel` are
//!   O(1): an event's integer tick (`time as u64`) picks its bucket directly
//!   and a seq → bucket map lets `cancel` delete the entry in place — no
//!   tombstones, no lazy pops, and `pending()` is exactly the live count.
//! * Determinism: buckets are ordered by actual `(time, seq)` when they
//!   become the dispatch head, so the wheel reproduces the exact total order
//!   a priority queue would produce. Equal times share a tick and therefore
//!   a bucket, so ties can never straddle buckets. See the `Scheduler` docs
//!   for the full ordering argument.

use bpp_obs::EngineObs;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Simulated time in broadcast units (the time to broadcast one page).
pub type Time = f64;

/// Handle for a scheduled event, usable with [`Scheduler::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// A simulation model: owns the domain state and interprets events.
///
/// The engine calls [`Model::handle`] for every dispatched event, passing the
/// current time and a [`Scheduler`] for planting future events.
pub trait Model: Sized {
    /// The event vocabulary of this model.
    type Event;

    /// React to `event` occurring at time `now`.
    fn handle(&mut self, now: Time, event: Self::Event, sched: &mut Scheduler<Self::Event>);

    /// A short static label classifying `event`, used by the observability
    /// layer to key per-event-kind dispatch counters. The default collapses
    /// every event into a single bucket; models with a meaningful event
    /// vocabulary should override it.
    fn event_label(_event: &Self::Event) -> &'static str {
        "event"
    }
}

struct Scheduled<E> {
    time: Time,
    seq: u64,
    event: E,
}

/// Deterministic hasher for the seq → bucket map. Keys are single `u64`
/// seqs, so one splitmix64 finalizer round (full avalanche, ~4 ns) replaces
/// SipHash — the map sits on the schedule/cancel/pop hot path, where the
/// default hasher dominated the cost of the whole operation. Seed-free and
/// process-independent, so it cannot reintroduce nondeterminism.
#[derive(Default)]
struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write_u64(&mut self, x: u64) {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    fn write(&mut self, bytes: &[u8]) {
        // Unused (keys hash via `write_u64`); FNV-1a keeps it correct for
        // any future caller.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// Bits per wheel level; each level indexes 64 slots.
const BITS: usize = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Mask extracting a level-0 slot from a tick.
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Wheel levels. 11 × 6 = 66 bits ≥ 64, so every `u64` tick has a home
/// bucket; the top levels are the "overflow" range for far-future events.
const LEVELS: usize = 11;
/// Total buckets across all levels (flat index = level · 64 + slot).
const BUCKETS: usize = LEVELS * SLOTS;

/// The pending-event queue: a hashed hierarchical timer wheel. Handed to
/// [`Model::handle`] so models can plant future events while reacting to the
/// current one.
///
/// An event's *tick* is `time as u64` (times are finite and non-negative,
/// so the cast is exact flooring). A tick strictly greater than the wheel
/// cursor `wheel_pos` lands at the level of its highest 6-bit group that
/// differs from the cursor; a tick at or below the cursor is clamped into
/// the cursor's own level-0 bucket. Ordering stays exact because:
///
/// * equal times have equal ticks, hence share one bucket — ties never
///   straddle buckets and are broken by seq inside the bucket sort;
/// * every bucket other than the cursor bucket holds strictly larger ticks,
///   whose times are therefore strictly later than anything clamped into
///   the cursor bucket (`t < tick+1 ≤ tick' ≤ t'`);
/// * within a level, occupied slots are strictly beyond the cursor's group
///   value, and a level-`L` bucket's ticks are strictly beyond every
///   lower-level bucket's — so advancing to the first occupied slot of the
///   lowest occupied level (cascading it down re-bucketed) always selects
///   the globally earliest events next.
///
/// The bucket at the dispatch head is sorted descending by `(time, seq)`
/// once and popped from the back; inserts landing in it keep it sorted via
/// binary search, so the amortised cost stays O(1) per event for the
/// simulator's workloads.
pub struct Scheduler<E> {
    buckets: Vec<Vec<Scheduled<E>>>,
    /// Per-level occupancy bitmask: bit `s` set ⟺ bucket (level, s) is
    /// non-empty. Kept exact on every insert and delete.
    occ: [u64; LEVELS],
    /// seq → flat bucket index, for O(1) cancellation with true deletion.
    /// Never iterated (hash order is nondeterministic); `len()` is the live
    /// event count.
    location: HashMap<u64, u16, BuildHasherDefault<SeqHasher>>,
    /// Flat index of the bucket currently being drained (sorted descending
    /// by `(time, seq)`), if any. Always a level-0 bucket, always non-empty.
    cur_bucket: Option<u16>,
    /// Wheel cursor: the tick of the bucket at the dispatch head. Only ever
    /// advances (events are never scheduled before `now`).
    wheel_pos: u64,
    next_seq: u64,
    now: Time,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            buckets: (0..BUCKETS).map(|_| Vec::new()).collect(),
            occ: [0; LEVELS],
            // Pre-size past the rehash-growth cliff: the doubling walk from
            // the default capacity re-copies every entry several times
            // before a typical run's pending set (hundreds of events) fits.
            location: HashMap::with_capacity_and_hasher(1024, BuildHasherDefault::default()),
            cur_bucket: None,
            wheel_pos: 0,
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` at absolute time `at` (must be `>= now` and finite).
    pub fn schedule_at(&mut self, at: Time, event: E) -> EventId {
        assert!(at.is_finite(), "event time must be finite, got {at}");
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} < now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.place(Scheduled {
            time: at,
            seq,
            event,
        });
        EventId(seq)
    }

    /// Schedule `event` after a non-negative `delay` from now.
    pub fn schedule_in(&mut self, delay: Time, event: E) -> EventId {
        assert!(
            delay >= 0.0,
            "delay must be non-negative, got {delay} at t={}",
            self.now
        );
        self.schedule_at(self.now + delay, event)
    }

    /// Cancel a pending event, deleting it from its bucket immediately.
    /// Returns `true` if the event had not yet fired (or been cancelled);
    /// cancelling an already-fired event is a no-op.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(b) = self.location.remove(&id.0) else {
            return false;
        };
        let b = b as usize;
        let Some(idx) = self.buckets[b].iter().position(|e| e.seq == id.0) else {
            // The location map is updated on every insert, pop, and delete,
            // so a mapped seq is always present in its named bucket.
            debug_assert!(false, "location map names a bucket without the event");
            return false;
        };
        if self.cur_bucket == Some(b as u16) {
            // The head bucket is sorted; an order-preserving remove keeps it
            // valid for back-popping.
            self.buckets[b].remove(idx);
        } else {
            self.buckets[b].swap_remove(idx);
        }
        if self.buckets[b].is_empty() {
            self.occ[b / SLOTS] &= !(1 << (b % SLOTS));
            if self.cur_bucket == Some(b as u16) {
                self.cur_bucket = None;
            }
        }
        true
    }

    /// Number of pending (live) events. Cancelled events are deleted
    /// outright, so this is exactly the count of events that can still fire.
    pub fn pending(&self) -> usize {
        self.location.len()
    }

    /// Time of the next live event, or `None` when nothing remains. May
    /// advance the wheel cursor (never simulated time) to locate the head
    /// bucket.
    pub fn peek_live(&mut self) -> Option<Time> {
        if !self.ensure_current() {
            return None;
        }
        let b = self.cur_bucket? as usize;
        self.buckets[b].last().map(|s| s.time)
    }

    /// Route an entry to its bucket and record it in the location map.
    fn place(&mut self, s: Scheduled<E>) {
        let tick = s.time as u64;
        let b = if tick <= self.wheel_pos {
            // At-or-behind the cursor (the cursor may run ahead of `now`
            // after a peek): clamp into the cursor bucket, which dispatches
            // before every other bucket. Order inside is by real (time, seq).
            (self.wheel_pos & SLOT_MASK) as usize
        } else {
            let high = 63 - (tick ^ self.wheel_pos).leading_zeros() as usize;
            let level = high / BITS;
            level * SLOTS + ((tick >> (level * BITS)) & SLOT_MASK) as usize
        };
        self.location.insert(s.seq, b as u16);
        if self.buckets[b].is_empty() {
            self.occ[b / SLOTS] |= 1 << (b % SLOTS);
        }
        if self.cur_bucket == Some(b as u16) {
            // Keep the head bucket sorted (descending by (time, seq)) so
            // back-pops stay correct without re-sorting.
            let idx = self.buckets[b].partition_point(|e| {
                e.time.total_cmp(&s.time) == Ordering::Greater
                    || (e.time.total_cmp(&s.time) == Ordering::Equal && e.seq > s.seq)
            });
            self.buckets[b].insert(idx, s);
        } else {
            self.buckets[b].push(s);
        }
    }

    /// Make `cur_bucket` point at the bucket holding the earliest pending
    /// events, cascading higher levels down as needed. Returns `false` when
    /// the wheel is empty.
    fn ensure_current(&mut self) -> bool {
        if self.cur_bucket.is_some() {
            return true;
        }
        loop {
            if self.occ[0] != 0 {
                let slot = self.occ[0].trailing_zeros() as u64;
                // Level-0 invariant: nothing is ever placed behind the
                // cursor slot (at-or-behind ticks clamp *into* it).
                debug_assert!(slot >= (self.wheel_pos & SLOT_MASK));
                self.wheel_pos = (self.wheel_pos & !SLOT_MASK) | slot;
                let b = slot as usize;
                self.buckets[b].sort_unstable_by(|a, z| {
                    z.time.total_cmp(&a.time).then_with(|| z.seq.cmp(&a.seq))
                });
                self.cur_bucket = Some(b as u16);
                return true;
            }
            // Cascade: the lowest occupied level's first occupied slot holds
            // the earliest ticks; move the cursor there and re-bucket its
            // entries (they all land at strictly lower levels).
            let Some(level) = (1..LEVELS).find(|&l| self.occ[l] != 0) else {
                return false;
            };
            let slot = self.occ[level].trailing_zeros() as u64;
            let shift = level * BITS;
            let low_mask = if shift + BITS >= 64 {
                u64::MAX
            } else {
                (1u64 << (shift + BITS)) - 1
            };
            self.wheel_pos = (self.wheel_pos & !low_mask) | (slot << shift);
            let b = level * SLOTS + slot as usize;
            self.occ[level] &= !(1 << slot);
            let entries = std::mem::take(&mut self.buckets[b]);
            for s in entries {
                self.place(s);
            }
        }
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        if !self.ensure_current() {
            return None;
        }
        let b = self.cur_bucket? as usize;
        let s = self.buckets[b].pop()?;
        self.location.remove(&s.seq);
        if self.buckets[b].is_empty() {
            self.occ[b / SLOTS] &= !(1 << (b % SLOTS));
            self.cur_bucket = None;
        }
        Some(s)
    }
}

/// The simulation engine: a [`Model`] plus its [`Scheduler`].
pub struct Engine<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
    dispatched: u64,
    obs: Option<EngineObs>,
}

impl<M: Model> Engine<M> {
    /// Create an engine at time 0 with an empty event queue.
    pub fn new(model: M) -> Self {
        Engine {
            model,
            sched: Scheduler::new(),
            dispatched: 0,
            obs: None,
        }
    }

    /// Attach an observability probe: every dispatched event bumps its
    /// per-kind counter (see [`Model::event_label`]) and feeds the
    /// pending-event timeline. Costs one branch per event when absent.
    pub fn enable_obs(&mut self, obs: EngineObs) {
        self.obs = Some(obs);
    }

    /// The attached observability probe, if any.
    pub fn obs(&self) -> Option<&EngineObs> {
        self.obs.as_ref()
    }

    /// Current simulated time (the time of the most recently fired event).
    pub fn now(&self) -> Time {
        self.sched.now
    }

    /// Total number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (e.g. to flip a measurement phase).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// The scheduler, for priming initial events.
    pub fn scheduler(&mut self) -> &mut Scheduler<M::Event> {
        &mut self.sched
    }

    /// Dispatch the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(s) = self.sched.pop() else {
            return false;
        };
        // Hard assert: a backwards step would silently corrupt every
        // time-weighted statistic downstream, not just misorder a log.
        assert!(s.time >= self.sched.now, "time must be monotone");
        self.sched.now = s.time;
        self.dispatched += 1;
        let label = M::event_label(&s.event);
        self.model.handle(s.time, s.event, &mut self.sched);
        if let Some(obs) = &mut self.obs {
            obs.on_dispatch(label, s.time, self.sched.pending());
        }
        true
    }

    /// Run until the event queue is drained.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Run until simulated time strictly exceeds `t` or the queue drains.
    /// Events scheduled exactly at `t` are still dispatched.
    ///
    /// The deadline is compared against the next *live* event
    /// ([`Scheduler::peek_live`]); cancellation deletes outright, so the
    /// head time is always the time `step()` would dispatch next.
    pub fn run_until(&mut self, t: Time) {
        while self.sched.peek_live().is_some_and(|next| next <= t) {
            if !self.step() {
                break;
            }
        }
    }

    /// Run while `keep_going(model)` holds and events remain.
    pub fn run_while(&mut self, mut keep_going: impl FnMut(&M) -> bool) {
        while keep_going(&self.model) && self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        log: Vec<(Time, u32)>,
        cancel_target: Option<EventId>,
    }

    enum Ev {
        Tag(u32),
        CancelPlanted,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: Time, ev: Ev, sched: &mut Scheduler<Ev>) {
            match ev {
                Ev::Tag(t) => self.log.push((now, t)),
                Ev::CancelPlanted => {
                    let id = self.cancel_target.take().expect("target set");
                    assert!(sched.cancel(id));
                }
            }
        }
        fn event_label(ev: &Ev) -> &'static str {
            match ev {
                Ev::Tag(_) => "tag",
                Ev::CancelPlanted => "cancel",
            }
        }
    }

    fn engine() -> Engine<Recorder> {
        Engine::new(Recorder {
            log: Vec::new(),
            cancel_target: None,
        })
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut e = engine();
        e.scheduler().schedule_at(5.0, Ev::Tag(5));
        e.scheduler().schedule_at(1.0, Ev::Tag(1));
        e.scheduler().schedule_at(3.0, Ev::Tag(3));
        e.run_to_completion();
        assert_eq!(e.model().log, vec![(1.0, 1), (3.0, 3), (5.0, 5)]);
    }

    #[test]
    fn same_instant_events_fire_fifo() {
        let mut e = engine();
        for i in 0..100 {
            e.scheduler().schedule_at(2.0, Ev::Tag(i));
        }
        e.run_to_completion();
        let tags: Vec<u32> = e.model().log.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut e = engine();
        e.scheduler().schedule_at(10.0, Ev::Tag(0));
        e.run_to_completion();
        assert_eq!(e.now(), 10.0);
        e.scheduler().schedule_in(2.5, Ev::Tag(1));
        e.run_to_completion();
        assert_eq!(e.model().log.last(), Some(&(12.5, 1)));
    }

    #[test]
    fn cancelled_event_never_fires() {
        let mut e = engine();
        let victim = e.scheduler().schedule_at(5.0, Ev::Tag(99));
        e.model_mut().cancel_target = Some(victim);
        e.scheduler().schedule_at(1.0, Ev::CancelPlanted);
        e.scheduler().schedule_at(6.0, Ev::Tag(1));
        e.run_to_completion();
        assert_eq!(e.model().log, vec![(6.0, 1)]);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut e = engine();
        let id = e.scheduler().schedule_at(1.0, Ev::Tag(7));
        e.run_to_completion();
        assert!(!e.scheduler().cancel(id));
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut e = engine();
        assert!(!e.scheduler().cancel(EventId(1234)));
    }

    #[test]
    fn run_until_stops_at_boundary_inclusive() {
        let mut e = engine();
        e.scheduler().schedule_at(1.0, Ev::Tag(1));
        e.scheduler().schedule_at(2.0, Ev::Tag(2));
        e.scheduler().schedule_at(2.0, Ev::Tag(22));
        e.scheduler().schedule_at(3.0, Ev::Tag(3));
        e.run_until(2.0);
        assert_eq!(e.model().log, vec![(1.0, 1), (2.0, 2), (2.0, 22)]);
        // The t=3 event is still pending.
        assert_eq!(e.scheduler().pending(), 1);
    }

    #[test]
    fn run_until_ignores_cancelled_head_tombstone() {
        // Regression (binary-heap era): a cancelled entry at t-ε used to sit
        // at the heap head and satisfy `head.time <= t`, after which step()
        // skipped the tombstone and dispatched the live event at t+ε — past
        // the deadline the caller asked for. The wheel deletes on cancel, so
        // the head time is always live; the contract stays pinned here.
        let mut e = engine();
        let victim = e.scheduler().schedule_at(1.9, Ev::Tag(99));
        e.scheduler().schedule_at(2.1, Ev::Tag(1));
        e.scheduler().cancel(victim);
        e.run_until(2.0);
        assert_eq!(e.model().log, vec![], "no live event lies at or before t");
        assert_eq!(e.scheduler().pending(), 1, "the t+ε event must survive");
        assert_eq!(e.now(), 0.0, "time must not advance past the deadline");
        // The surviving event still fires once the deadline allows it.
        e.run_until(2.1);
        assert_eq!(e.model().log, vec![(2.1, 1)]);
    }

    #[test]
    fn run_until_drains_consecutive_tombstones() {
        let mut e = engine();
        let mut victims = Vec::new();
        for i in 0..5 {
            victims.push(
                e.scheduler()
                    .schedule_at(1.0 + f64::from(i) * 0.1, Ev::Tag(i)),
            );
        }
        e.scheduler().schedule_at(3.0, Ev::Tag(42));
        for v in victims {
            assert!(e.scheduler().cancel(v));
        }
        e.run_until(2.0);
        assert_eq!(e.model().log, vec![]);
        e.run_until(3.0);
        assert_eq!(e.model().log, vec![(3.0, 42)]);
    }

    #[test]
    fn peek_live_skips_tombstones_and_reports_next_live_time() {
        let mut e = engine();
        let victim = e.scheduler().schedule_at(1.0, Ev::Tag(0));
        e.scheduler().schedule_at(4.0, Ev::Tag(1));
        assert_eq!(e.scheduler().peek_live(), Some(1.0));
        e.scheduler().cancel(victim);
        assert_eq!(e.scheduler().peek_live(), Some(4.0));
        assert_eq!(e.scheduler().pending(), 1);
        e.run_to_completion();
        assert_eq!(e.scheduler().peek_live(), None);
    }

    #[test]
    fn cancel_then_reschedule_at_same_instant() {
        // Cancelling and replanting at the same time must fire only the
        // replacement, in the seq order of the *new* schedule call.
        let mut e = engine();
        let old = e.scheduler().schedule_at(5.0, Ev::Tag(1));
        e.scheduler().schedule_at(5.0, Ev::Tag(2));
        assert!(e.scheduler().cancel(old));
        e.scheduler().schedule_at(5.0, Ev::Tag(3));
        e.run_to_completion();
        assert_eq!(e.model().log, vec![(5.0, 2), (5.0, 3)]);
    }

    #[test]
    fn pending_is_accurate_after_mixed_cancel_and_pop() {
        let mut e = engine();
        let a = e.scheduler().schedule_at(1.0, Ev::Tag(0));
        let b = e.scheduler().schedule_at(2.0, Ev::Tag(1));
        e.scheduler().schedule_at(3.0, Ev::Tag(2));
        assert_eq!(e.scheduler().pending(), 3);
        // Cancel the head, dispatch the next live event, cancel another.
        assert!(e.scheduler().cancel(a));
        assert_eq!(e.scheduler().pending(), 2);
        assert!(e.step());
        assert_eq!(e.model().log, vec![(2.0, 1)]);
        assert_eq!(e.scheduler().pending(), 1);
        assert!(!e.scheduler().cancel(b), "already fired");
        assert_eq!(e.scheduler().pending(), 1);
        e.run_to_completion();
        assert_eq!(e.scheduler().pending(), 0);
    }

    #[test]
    fn run_until_fires_events_exactly_at_t() {
        // The boundary is documented as inclusive, also when a same-instant
        // sibling was cancelled.
        let mut e = engine();
        let victim = e.scheduler().schedule_at(2.0, Ev::Tag(0));
        e.scheduler().schedule_at(2.0, Ev::Tag(1));
        e.scheduler().cancel(victim);
        e.run_until(2.0);
        assert_eq!(e.model().log, vec![(2.0, 1)]);
    }

    #[test]
    fn engine_obs_counts_dispatches_per_label() {
        let mut e = engine();
        e.enable_obs(bpp_obs::EngineObs::new(1.0));
        let victim = e.scheduler().schedule_at(4.0, Ev::Tag(9));
        e.model_mut().cancel_target = Some(victim);
        e.scheduler().schedule_at(1.0, Ev::CancelPlanted);
        for i in 0..3 {
            e.scheduler().schedule_at(2.0 + f64::from(i), Ev::Tag(i));
        }
        e.run_to_completion();
        let obs = e.obs().expect("enabled above");
        assert_eq!(obs.dispatch_count("tag"), 3);
        assert_eq!(obs.dispatch_count("cancel"), 1);
        assert_eq!(obs.dispatch_count("unknown"), 0);
    }

    #[test]
    fn run_while_predicate_stops_dispatch() {
        let mut e = engine();
        for i in 0..10 {
            e.scheduler().schedule_at(f64::from(i), Ev::Tag(i));
        }
        e.run_while(|m| m.log.len() < 4);
        assert_eq!(e.model().log.len(), 4);
    }

    #[test]
    fn pending_counts_exclude_cancelled() {
        let mut e = engine();
        let a = e.scheduler().schedule_at(1.0, Ev::Tag(0));
        e.scheduler().schedule_at(2.0, Ev::Tag(1));
        assert_eq!(e.scheduler().pending(), 2);
        e.scheduler().cancel(a);
        assert_eq!(e.scheduler().pending(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e = engine();
        e.scheduler().schedule_at(5.0, Ev::Tag(0));
        e.run_to_completion();
        e.scheduler().schedule_at(1.0, Ev::Tag(1));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn scheduling_nan_panics() {
        let mut e = engine();
        e.scheduler().schedule_at(f64::NAN, Ev::Tag(0));
    }

    #[test]
    fn dispatched_counter_tracks_events() {
        let mut e = engine();
        for i in 0..7 {
            e.scheduler().schedule_at(f64::from(i), Ev::Tag(i));
        }
        e.run_to_completion();
        assert_eq!(e.dispatched(), 7);
    }

    // ---- timer-wheel specific coverage ----

    #[test]
    fn events_across_wheel_levels_fire_in_order() {
        // Ticks spanning level 0 (63, 64), level 1 (4095, 4096), level 2,
        // and a far-future overflow-level tick must still dispatch sorted.
        let times = [
            63.5, 64.0, 0.25, 4095.9, 4096.0, 262_144.5, 1.0e12, 2.0, 65.0,
        ];
        let mut e = engine();
        for (i, &t) in times.iter().enumerate() {
            e.scheduler().schedule_at(t, Ev::Tag(i as u32));
        }
        e.run_to_completion();
        let mut expect: Vec<(Time, u32)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u32))
            .collect();
        expect.sort_by(|a, b| a.0.total_cmp(&b.0));
        assert_eq!(e.model().log, expect);
    }

    #[test]
    fn schedule_behind_advanced_cursor_still_fires_in_time_order() {
        // peek_live advances the wheel cursor to the far event's bucket;
        // a later schedule at a smaller tick (but >= now) must clamp into
        // the cursor bucket and still dispatch strictly by time.
        let mut e = engine();
        e.scheduler().schedule_at(5.2, Ev::Tag(0));
        e.scheduler().schedule_at(70.5, Ev::Tag(2));
        e.run_until(5.2);
        assert_eq!(e.model().log, vec![(5.2, 0)]);
        // Cursor moves to tick 70's bucket while looking for the head...
        assert_eq!(e.scheduler().peek_live(), Some(70.5));
        // ...but an intervening event at t=6 must still fire first.
        e.scheduler().schedule_at(6.0, Ev::Tag(1));
        e.run_to_completion();
        assert_eq!(e.model().log, vec![(5.2, 0), (6.0, 1), (70.5, 2)]);
    }

    #[test]
    fn distinct_times_in_one_tick_fire_by_time_not_seq() {
        let mut e = engine();
        e.scheduler().schedule_at(2.75, Ev::Tag(0));
        e.scheduler().schedule_at(2.25, Ev::Tag(1));
        e.scheduler().schedule_at(2.5, Ev::Tag(2));
        e.run_to_completion();
        assert_eq!(e.model().log, vec![(2.25, 1), (2.5, 2), (2.75, 0)]);
    }

    #[test]
    fn cancel_in_far_bucket_truly_deletes() {
        let mut e = engine();
        let far = e.scheduler().schedule_at(1.0e9, Ev::Tag(0));
        e.scheduler().schedule_at(1.0, Ev::Tag(1));
        assert!(e.scheduler().cancel(far));
        assert_eq!(e.scheduler().pending(), 1);
        e.run_to_completion();
        assert_eq!(e.model().log, vec![(1.0, 1)]);
        assert_eq!(e.scheduler().peek_live(), None);
        assert_eq!(e.scheduler().pending(), 0);
    }

    #[test]
    fn interleaved_schedule_during_current_bucket_drain() {
        // A handler scheduling into the bucket currently being drained must
        // see its event slotted by (time, seq), not appended.
        struct Chain {
            log: Vec<(Time, u32)>,
        }
        enum Cev {
            Emit(u32),
            PlantSameInstant,
        }
        impl Model for Chain {
            type Event = Cev;
            fn handle(&mut self, now: Time, ev: Cev, sched: &mut Scheduler<Cev>) {
                match ev {
                    Cev::Emit(t) => self.log.push((now, t)),
                    Cev::PlantSameInstant => {
                        // Plants at the same instant (fires after existing
                        // same-instant events, by seq) and slightly later
                        // within the same tick.
                        sched.schedule_at(now, Cev::Emit(100));
                        sched.schedule_at(now + 0.25, Cev::Emit(200));
                    }
                }
            }
        }
        let mut e = Engine::new(Chain { log: Vec::new() });
        e.scheduler().schedule_at(3.0, Cev::PlantSameInstant);
        e.scheduler().schedule_at(3.0, Cev::Emit(1));
        e.scheduler().schedule_at(3.5, Cev::Emit(2));
        e.run_to_completion();
        assert_eq!(
            e.model().log,
            vec![(3.0, 1), (3.0, 100), (3.25, 200), (3.5, 2)]
        );
    }
}
