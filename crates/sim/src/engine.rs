//! The event queue and dispatch loop.
//!
//! Design notes:
//!
//! * Time is `f64`. The model never produces NaN times; scheduling a NaN or
//!   negative-delay event is a programming error and panics immediately,
//!   which is the correct behaviour for a simulation (silently reordering
//!   time would invalidate every downstream statistic).
//! * Same-instant events fire in the order they were scheduled. This is
//!   load-bearing: the server slot at time `t` must observe every request
//!   that "arrived at `t`" only if it was scheduled before the slot event,
//!   exactly like a process-oriented simulator with deterministic process
//!   ordering.
//! * Cancellation is tombstone-based: `cancel` marks the [`EventId`] and the
//!   pop loop discards tombstoned entries lazily. This keeps `schedule` and
//!   `cancel` at `O(log n)` / `O(1)`.

use bpp_obs::EngineObs;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Simulated time in broadcast units (the time to broadcast one page).
pub type Time = f64;

/// Handle for a scheduled event, usable with [`Scheduler::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// A simulation model: owns the domain state and interprets events.
///
/// The engine calls [`Model::handle`] for every dispatched event, passing the
/// current time and a [`Scheduler`] for planting future events.
pub trait Model: Sized {
    /// The event vocabulary of this model.
    type Event;

    /// React to `event` occurring at time `now`.
    fn handle(&mut self, now: Time, event: Self::Event, sched: &mut Scheduler<Self::Event>);

    /// A short static label classifying `event`, used by the observability
    /// layer to key per-event-kind dispatch counters. The default collapses
    /// every event into a single bucket; models with a meaningful event
    /// vocabulary should override it.
    fn event_label(_event: &Self::Event) -> &'static str {
        "event"
    }
}

struct Scheduled<E> {
    time: Time,
    seq: u64,
    id: EventId,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get (earliest time, lowest seq)
        // at the top. Times are non-NaN at insertion, where total_cmp
        // agrees with IEEE ordering, so no panic path is needed.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The pending-event queue. Handed to [`Model::handle`] so models can plant
/// future events while reacting to the current one.
pub struct Scheduler<E> {
    heap: BinaryHeap<Scheduled<E>>,
    live: HashSet<EventId>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
    now: Time,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` at absolute time `at` (must be `>= now` and finite).
    pub fn schedule_at(&mut self, at: Time, event: E) -> EventId {
        assert!(at.is_finite(), "event time must be finite, got {at}");
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} < now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = EventId(seq);
        self.live.insert(id);
        self.heap.push(Scheduled {
            time: at,
            seq,
            id,
            event,
        });
        id
    }

    /// Schedule `event` after a non-negative `delay` from now.
    pub fn schedule_in(&mut self, delay: Time, event: E) -> EventId {
        assert!(
            delay >= 0.0,
            "delay must be non-negative, got {delay} at t={}",
            self.now
        );
        self.schedule_at(self.now + delay, event)
    }

    /// Cancel a pending event. Returns `true` if the event had not yet fired
    /// (or been cancelled); cancelling an already-fired event is a no-op.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id) {
            self.cancelled.insert(id);
            true
        } else {
            false
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// Time of the next *live* event, or `None` when nothing live remains.
    ///
    /// Cancelled tombstones sitting at the heap head are drained first, so
    /// the answer is exactly what [`Engine::step`] would dispatch next —
    /// the raw heap head can be a tombstone whose time says nothing about
    /// the next real event.
    pub fn peek_live(&mut self) -> Option<Time> {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.remove(&head.id) {
                self.heap.pop();
                continue;
            }
            return Some(head.time);
        }
        None
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.id) {
                continue;
            }
            self.live.remove(&s.id);
            return Some(s);
        }
        None
    }
}

/// The simulation engine: a [`Model`] plus its [`Scheduler`].
pub struct Engine<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
    dispatched: u64,
    obs: Option<EngineObs>,
}

impl<M: Model> Engine<M> {
    /// Create an engine at time 0 with an empty event queue.
    pub fn new(model: M) -> Self {
        Engine {
            model,
            sched: Scheduler::new(),
            dispatched: 0,
            obs: None,
        }
    }

    /// Attach an observability probe: every dispatched event bumps its
    /// per-kind counter (see [`Model::event_label`]) and feeds the
    /// pending-event timeline. Costs one branch per event when absent.
    pub fn enable_obs(&mut self, obs: EngineObs) {
        self.obs = Some(obs);
    }

    /// The attached observability probe, if any.
    pub fn obs(&self) -> Option<&EngineObs> {
        self.obs.as_ref()
    }

    /// Current simulated time (the time of the most recently fired event).
    pub fn now(&self) -> Time {
        self.sched.now
    }

    /// Total number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Mutable access to the model (e.g. to flip a measurement phase).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }

    /// The scheduler, for priming initial events.
    pub fn scheduler(&mut self) -> &mut Scheduler<M::Event> {
        &mut self.sched
    }

    /// Dispatch the next event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(s) = self.sched.pop() else {
            return false;
        };
        // Hard assert: a backwards step would silently corrupt every
        // time-weighted statistic downstream, not just misorder a log.
        assert!(s.time >= self.sched.now, "time must be monotone");
        self.sched.now = s.time;
        self.dispatched += 1;
        let label = M::event_label(&s.event);
        self.model.handle(s.time, s.event, &mut self.sched);
        if let Some(obs) = &mut self.obs {
            obs.on_dispatch(label, s.time, self.sched.pending());
        }
        true
    }

    /// Run until the event queue is drained.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Run until simulated time strictly exceeds `t` or the queue drains.
    /// Events scheduled exactly at `t` are still dispatched.
    ///
    /// The deadline is compared against the next *live* event
    /// ([`Scheduler::peek_live`]): a cancelled tombstone at the heap head
    /// must not admit a dispatch, because `step()` skips tombstones and
    /// would then fire the next live event even if it lies past `t`.
    pub fn run_until(&mut self, t: Time) {
        while self.sched.peek_live().is_some_and(|next| next <= t) {
            if !self.step() {
                break;
            }
        }
    }

    /// Run while `keep_going(model)` holds and events remain.
    pub fn run_while(&mut self, mut keep_going: impl FnMut(&M) -> bool) {
        while keep_going(&self.model) && self.step() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        log: Vec<(Time, u32)>,
        cancel_target: Option<EventId>,
    }

    enum Ev {
        Tag(u32),
        CancelPlanted,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: Time, ev: Ev, sched: &mut Scheduler<Ev>) {
            match ev {
                Ev::Tag(t) => self.log.push((now, t)),
                Ev::CancelPlanted => {
                    let id = self.cancel_target.take().expect("target set");
                    assert!(sched.cancel(id));
                }
            }
        }
        fn event_label(ev: &Ev) -> &'static str {
            match ev {
                Ev::Tag(_) => "tag",
                Ev::CancelPlanted => "cancel",
            }
        }
    }

    fn engine() -> Engine<Recorder> {
        Engine::new(Recorder {
            log: Vec::new(),
            cancel_target: None,
        })
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut e = engine();
        e.scheduler().schedule_at(5.0, Ev::Tag(5));
        e.scheduler().schedule_at(1.0, Ev::Tag(1));
        e.scheduler().schedule_at(3.0, Ev::Tag(3));
        e.run_to_completion();
        assert_eq!(e.model().log, vec![(1.0, 1), (3.0, 3), (5.0, 5)]);
    }

    #[test]
    fn same_instant_events_fire_fifo() {
        let mut e = engine();
        for i in 0..100 {
            e.scheduler().schedule_at(2.0, Ev::Tag(i));
        }
        e.run_to_completion();
        let tags: Vec<u32> = e.model().log.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut e = engine();
        e.scheduler().schedule_at(10.0, Ev::Tag(0));
        e.run_to_completion();
        assert_eq!(e.now(), 10.0);
        e.scheduler().schedule_in(2.5, Ev::Tag(1));
        e.run_to_completion();
        assert_eq!(e.model().log.last(), Some(&(12.5, 1)));
    }

    #[test]
    fn cancelled_event_never_fires() {
        let mut e = engine();
        let victim = e.scheduler().schedule_at(5.0, Ev::Tag(99));
        e.model_mut().cancel_target = Some(victim);
        e.scheduler().schedule_at(1.0, Ev::CancelPlanted);
        e.scheduler().schedule_at(6.0, Ev::Tag(1));
        e.run_to_completion();
        assert_eq!(e.model().log, vec![(6.0, 1)]);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut e = engine();
        let id = e.scheduler().schedule_at(1.0, Ev::Tag(7));
        e.run_to_completion();
        assert!(!e.scheduler().cancel(id));
    }

    #[test]
    fn cancel_unknown_id_is_noop() {
        let mut e = engine();
        assert!(!e.scheduler().cancel(EventId(1234)));
    }

    #[test]
    fn run_until_stops_at_boundary_inclusive() {
        let mut e = engine();
        e.scheduler().schedule_at(1.0, Ev::Tag(1));
        e.scheduler().schedule_at(2.0, Ev::Tag(2));
        e.scheduler().schedule_at(2.0, Ev::Tag(22));
        e.scheduler().schedule_at(3.0, Ev::Tag(3));
        e.run_until(2.0);
        assert_eq!(e.model().log, vec![(1.0, 1), (2.0, 2), (2.0, 22)]);
        // The t=3 event is still pending.
        assert_eq!(e.scheduler().pending(), 1);
    }

    #[test]
    fn run_until_ignores_cancelled_head_tombstone() {
        // Regression: a cancelled entry at t-ε used to sit at the heap head
        // and satisfy `head.time <= t`, after which step() skipped the
        // tombstone and dispatched the live event at t+ε — past the
        // deadline the caller asked for.
        let mut e = engine();
        let victim = e.scheduler().schedule_at(1.9, Ev::Tag(99));
        e.scheduler().schedule_at(2.1, Ev::Tag(1));
        e.scheduler().cancel(victim);
        e.run_until(2.0);
        assert_eq!(e.model().log, vec![], "no live event lies at or before t");
        assert_eq!(e.scheduler().pending(), 1, "the t+ε event must survive");
        assert_eq!(e.now(), 0.0, "time must not advance past the deadline");
        // The surviving event still fires once the deadline allows it.
        e.run_until(2.1);
        assert_eq!(e.model().log, vec![(2.1, 1)]);
    }

    #[test]
    fn run_until_drains_consecutive_tombstones() {
        let mut e = engine();
        let mut victims = Vec::new();
        for i in 0..5 {
            victims.push(
                e.scheduler()
                    .schedule_at(1.0 + f64::from(i) * 0.1, Ev::Tag(i)),
            );
        }
        e.scheduler().schedule_at(3.0, Ev::Tag(42));
        for v in victims {
            assert!(e.scheduler().cancel(v));
        }
        e.run_until(2.0);
        assert_eq!(e.model().log, vec![]);
        e.run_until(3.0);
        assert_eq!(e.model().log, vec![(3.0, 42)]);
    }

    #[test]
    fn peek_live_skips_tombstones_and_reports_next_live_time() {
        let mut e = engine();
        let victim = e.scheduler().schedule_at(1.0, Ev::Tag(0));
        e.scheduler().schedule_at(4.0, Ev::Tag(1));
        assert_eq!(e.scheduler().peek_live(), Some(1.0));
        e.scheduler().cancel(victim);
        assert_eq!(e.scheduler().peek_live(), Some(4.0));
        assert_eq!(e.scheduler().pending(), 1);
        e.run_to_completion();
        assert_eq!(e.scheduler().peek_live(), None);
    }

    #[test]
    fn cancel_then_reschedule_at_same_instant() {
        // Cancelling and replanting at the same time must fire only the
        // replacement, in the seq order of the *new* schedule call.
        let mut e = engine();
        let old = e.scheduler().schedule_at(5.0, Ev::Tag(1));
        e.scheduler().schedule_at(5.0, Ev::Tag(2));
        assert!(e.scheduler().cancel(old));
        e.scheduler().schedule_at(5.0, Ev::Tag(3));
        e.run_to_completion();
        assert_eq!(e.model().log, vec![(5.0, 2), (5.0, 3)]);
    }

    #[test]
    fn pending_is_accurate_after_mixed_cancel_and_pop() {
        let mut e = engine();
        let a = e.scheduler().schedule_at(1.0, Ev::Tag(0));
        let b = e.scheduler().schedule_at(2.0, Ev::Tag(1));
        e.scheduler().schedule_at(3.0, Ev::Tag(2));
        assert_eq!(e.scheduler().pending(), 3);
        // Cancel the head, dispatch the next live event, cancel another.
        assert!(e.scheduler().cancel(a));
        assert_eq!(e.scheduler().pending(), 2);
        assert!(e.step());
        assert_eq!(e.model().log, vec![(2.0, 1)]);
        assert_eq!(e.scheduler().pending(), 1);
        assert!(!e.scheduler().cancel(b), "already fired");
        assert_eq!(e.scheduler().pending(), 1);
        e.run_to_completion();
        assert_eq!(e.scheduler().pending(), 0);
    }

    #[test]
    fn run_until_fires_events_exactly_at_t() {
        // The boundary is documented as inclusive, also when the head is a
        // tombstone at exactly t.
        let mut e = engine();
        let victim = e.scheduler().schedule_at(2.0, Ev::Tag(0));
        e.scheduler().schedule_at(2.0, Ev::Tag(1));
        e.scheduler().cancel(victim);
        e.run_until(2.0);
        assert_eq!(e.model().log, vec![(2.0, 1)]);
    }

    #[test]
    fn engine_obs_counts_dispatches_per_label() {
        let mut e = engine();
        e.enable_obs(bpp_obs::EngineObs::new(1.0));
        let victim = e.scheduler().schedule_at(4.0, Ev::Tag(9));
        e.model_mut().cancel_target = Some(victim);
        e.scheduler().schedule_at(1.0, Ev::CancelPlanted);
        for i in 0..3 {
            e.scheduler().schedule_at(2.0 + f64::from(i), Ev::Tag(i));
        }
        e.run_to_completion();
        let obs = e.obs().expect("enabled above");
        assert_eq!(obs.dispatch_count("tag"), 3);
        assert_eq!(obs.dispatch_count("cancel"), 1);
        assert_eq!(obs.dispatch_count("unknown"), 0);
    }

    #[test]
    fn run_while_predicate_stops_dispatch() {
        let mut e = engine();
        for i in 0..10 {
            e.scheduler().schedule_at(f64::from(i), Ev::Tag(i));
        }
        e.run_while(|m| m.log.len() < 4);
        assert_eq!(e.model().log.len(), 4);
    }

    #[test]
    fn pending_counts_exclude_cancelled() {
        let mut e = engine();
        let a = e.scheduler().schedule_at(1.0, Ev::Tag(0));
        e.scheduler().schedule_at(2.0, Ev::Tag(1));
        assert_eq!(e.scheduler().pending(), 2);
        e.scheduler().cancel(a);
        assert_eq!(e.scheduler().pending(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut e = engine();
        e.scheduler().schedule_at(5.0, Ev::Tag(0));
        e.run_to_completion();
        e.scheduler().schedule_at(1.0, Ev::Tag(1));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn scheduling_nan_panics() {
        let mut e = engine();
        e.scheduler().schedule_at(f64::NAN, Ev::Tag(0));
    }

    #[test]
    fn dispatched_counter_tracks_events() {
        let mut e = engine();
        for i in 0..7 {
            e.scheduler().schedule_at(f64::from(i), Ev::Tag(i));
        }
        e.run_to_completion();
        assert_eq!(e.dispatched(), 7);
    }
}
