//! Float comparison helpers — the workspace's one blessed home for
//! floating-point equality.
//!
//! Raw `==`/`!=` between floats is banned in library code by `bpp-lint`
//! rule D4: scattered exact comparisons are how NaN sentinels, `-0.0`
//! surprises and tolerance drift sneak into a determinism-critical
//! codebase. Call sites route through these helpers instead, which makes
//! every exact comparison a named, greppable decision:
//!
//! * [`exactly`] / [`exactly_zero`] — *intentional* exact equality, for
//!   sentinel values that are set, never computed (a `0.0` meaning
//!   "disabled", a span that was never advanced);
//! * [`approx_eq`] — tolerance-based equality for anything that has been
//!   through arithmetic.

/// Intentional exact equality between two floats.
///
/// Semantically identical to `a == b` (so `NaN != NaN`, and `-0.0 ==
/// 0.0`); the function exists so exact float comparisons are explicit,
/// centralized, and exempt from lint rule D4 in exactly one place.
pub fn exactly(a: f64, b: f64) -> bool {
    // bpp-lint: allow(D4): this helper IS the blessed exact comparison
    a == b
}

/// Whether `x` is exactly zero (either sign).
///
/// For sentinel zeros that are assigned, never computed — e.g. "this knob
/// is disabled" or "this accumulator was never advanced".
pub fn exactly_zero(x: f64) -> bool {
    exactly(x, 0.0)
}

/// Absolute-tolerance approximate equality: `|a − b| <= abs_tol`.
///
/// NaN compares unequal to everything, infinities only to themselves.
pub fn approx_eq(a: f64, b: f64, abs_tol: f64) -> bool {
    if exactly(a, b) {
        return true; // covers equal infinities, which would yield NaN below
    }
    (a - b).abs() <= abs_tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_matches_native_semantics() {
        assert!(exactly(1.5, 1.5));
        assert!(!exactly(1.5, 1.5000001));
        assert!(!exactly(f64::NAN, f64::NAN));
        assert!(exactly(-0.0, 0.0));
        assert!(exactly(f64::INFINITY, f64::INFINITY));
    }

    #[test]
    fn exactly_zero_covers_both_signs() {
        assert!(exactly_zero(0.0));
        assert!(exactly_zero(-0.0));
        assert!(!exactly_zero(f64::MIN_POSITIVE));
        assert!(!exactly_zero(f64::NAN));
    }

    #[test]
    fn approx_eq_tolerance_and_edge_cases() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.001, 1e-9));
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 1e-9));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY, 1e-9));
        assert!(!approx_eq(f64::NAN, f64::NAN, 1e-9));
    }
}
