//! Online statistics for simulation output analysis.
//!
//! The paper's protocol is: discard the warm-up transient, then "run the
//! experiment until the response time stabilized". We implement that with
//! the method of batch means ([`BatchMeans`]): observations are grouped
//! into fixed-size batches, batch averages are treated as approximately
//! independent normal samples, and the run stops when the confidence
//! interval around the grand mean is tight relative to the mean.

/// Confidence levels supported by [`BatchMeans::half_width`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confidence {
    /// 90% two-sided confidence.
    P90,
    /// 95% two-sided confidence.
    P95,
    /// 99% two-sided confidence.
    P99,
}

impl Confidence {
    /// Two-sided Student-t critical value for `df` degrees of freedom.
    /// Exact table for small df, normal approximation beyond 30.
    fn t_value(self, df: usize) -> f64 {
        const T90: [f64; 30] = [
            6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812, 1.796, 1.782,
            1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721, 1.717, 1.714, 1.711,
            1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
        ];
        const T95: [f64; 30] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
            2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
            2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
        ];
        const T99: [f64; 30] = [
            63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169, 3.106, 3.055,
            3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845, 2.831, 2.819, 2.807, 2.797,
            2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
        ];
        let (table, z) = match self {
            Confidence::P90 => (&T90, 1.645),
            Confidence::P95 => (&T95, 1.960),
            Confidence::P99 => (&T99, 2.576),
        };
        if df == 0 {
            f64::INFINITY
        } else if df <= 30 {
            table[df - 1]
        } else {
            z
        }
    }
}

/// Welford's online algorithm for mean and variance.
///
/// Numerically stable for long runs (tens of millions of observations) where
/// the naive sum-of-squares formulation loses precision.
#[derive(Debug, Clone, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "observations must be finite");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel-combine).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Exponentially weighted moving average.
///
/// A constant-memory smoother for noisy per-slot signals (queue occupancy,
/// arrival rates): `v ← α·x + (1−α)·v`, seeded with the first observation.
/// Small `α` smooths harder. Used by the server's saturation detector to
/// keep degradation decisions from flapping on single-slot spikes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    primed: bool,
}

impl Ewma {
    /// A smoother with weight `alpha` in `(0, 1]` for new observations.
    ///
    /// # Panics
    /// If `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must be in (0,1], got {alpha}"
        );
        Ewma {
            alpha,
            value: 0.0,
            primed: false,
        }
    }

    /// Record one observation and return the updated average.
    pub fn record(&mut self, x: f64) -> f64 {
        debug_assert!(x.is_finite(), "observations must be finite");
        if self.primed {
            self.value += self.alpha * (x - self.value);
        } else {
            self.value = x;
            self.primed = true;
        }
        self.value
    }

    /// The current average (0 before any observation).
    pub fn value(&self) -> f64 {
        if self.primed {
            self.value
        } else {
            0.0
        }
    }

    /// True once at least one observation was recorded.
    pub fn primed(&self) -> bool {
        self.primed
    }
}

/// Batch-means steady-state estimator with a relative-precision stopping
/// rule.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current: Welford,
    batches: Vec<f64>,
    all: Welford,
}

impl BatchMeans {
    /// Create an estimator with the given batch size (observations/batch).
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current: Welford::new(),
            batches: Vec::new(),
            all: Welford::new(),
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.all.record(x);
        self.current.record(x);
        if self.current.count() == self.batch_size {
            self.batches.push(self.current.mean());
            self.current = Welford::new();
        }
    }

    /// Grand mean over every observation (including the unfinished batch).
    pub fn mean(&self) -> f64 {
        self.all.mean()
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.all.count()
    }

    /// Number of completed batches.
    pub fn completed_batches(&self) -> usize {
        self.batches.len()
    }

    /// Confidence-interval half width around the grand mean, from the
    /// completed batch means. `inf` until at least two batches complete.
    pub fn half_width(&self, conf: Confidence) -> f64 {
        let k = self.batches.len();
        if k < 2 {
            return f64::INFINITY;
        }
        let mut w = Welford::new();
        for &b in &self.batches {
            w.record(b);
        }
        conf.t_value(k - 1) * w.std_dev() / (k as f64).sqrt()
    }

    /// True when the CI half-width is within `rel` of the mean (and at least
    /// `min_batches` batches have completed). A zero mean is treated as
    /// converged only when the half-width is also ~zero.
    pub fn converged(&self, conf: Confidence, rel: f64, min_batches: usize) -> bool {
        if self.batches.len() < min_batches.max(2) {
            return false;
        }
        let hw = self.half_width(conf);
        let m = self.mean().abs();
        if m < f64::EPSILON {
            hw < f64::EPSILON
        } else {
            hw / m <= rel
        }
    }
}

/// Lag-`k` sample autocorrelation of a series.
///
/// Used to sanity-check the batch-means batch size: if responses at lag
/// `batch_size` still correlate strongly, batch means are not close to
/// independent and the confidence interval is optimistic. Returns 0 for
/// series too short to estimate (fewer than `k + 2` points) and for
/// constant series.
pub fn autocorrelation(xs: &[f64], k: usize) -> f64 {
    let n = xs.len();
    if n < k + 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f64>() / n as f64;
    let var: f64 = xs.iter().map(|&x| (x - mean) * (x - mean)).sum();
    if var <= f64::EPSILON {
        return 0.0;
    }
    let cov: f64 = xs
        .windows(k + 1)
        .map(|w| (w[0] - mean) * (w[k] - mean))
        .sum();
    cov / var
}

/// Fixed-width histogram with an overflow bucket; supports quantile
/// estimation by linear interpolation within a bin.
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: f64,
    bins: Vec<u64>,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// `num_bins` bins of `bin_width` starting at zero; values beyond the
    /// last bin land in the overflow bucket.
    pub fn new(bin_width: f64, num_bins: usize) -> Self {
        assert!(bin_width > 0.0 && num_bins > 0);
        Histogram {
            bin_width,
            bins: vec![0; num_bins],
            overflow: 0,
            count: 0,
        }
    }

    /// Record one non-negative observation.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x >= 0.0, "histogram observations must be non-negative");
        self.count += 1;
        let idx = (x / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations that fell past the last bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate `q`-quantile (`0 < q < 1`). Returns `None` when empty or
    /// when the quantile falls in the overflow bucket.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..1.0).contains(&q) && q > 0.0, "q must be in (0,1)");
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            let prev = cum;
            cum += c;
            if cum >= target {
                let within = if c == 0 {
                    0.0
                } else {
                    (target - prev) as f64 / c as f64
                };
                return Some((i as f64 + within) * self.bin_width);
            }
        }
        None
    }

    /// Bin counts (excluding overflow), for report rendering.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. queue length.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_time: f64,
    last_value: f64,
    weighted_sum: f64,
    span: f64,
    max: f64,
}

impl TimeWeighted {
    /// Start tracking at `t0` with initial `value`.
    pub fn new(t0: f64, value: f64) -> Self {
        TimeWeighted {
            last_time: t0,
            last_value: value,
            weighted_sum: 0.0,
            span: 0.0,
            max: value,
        }
    }

    /// Record that the signal changed to `value` at time `t` (monotone `t`).
    ///
    /// # Panics
    /// When `t` goes backwards. This is a hard assert (not a debug one): a
    /// negative `dt` would *subtract* weight from the accumulator and
    /// silently corrupt the average, which is worse than any panic.
    pub fn update(&mut self, t: f64, value: f64) {
        assert!(t >= self.last_time, "time must be monotone");
        let dt = t - self.last_time;
        self.weighted_sum += self.last_value * dt;
        self.span += dt;
        self.last_time = t;
        self.last_value = value;
        self.max = self.max.max(value);
    }

    /// Time-average of the signal up to the last update.
    pub fn average(&self) -> f64 {
        if crate::approx::exactly_zero(self.span) {
            self.last_value
        } else {
            self.weighted_sum / self.span
        }
    }

    /// Maximum value seen.
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.record(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Unbiased variance of this classic data set is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_is_zeroed() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.count(), 0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &xs[..400] {
            left.record(x);
        }
        for &x in &xs[400..] {
            right.record(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn welford_merge_with_empty_sides() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.mean(), 3.0);
        let empty = Welford::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn batch_means_converges_on_iid_data() {
        // Deterministic pseudo-noise around 10.0.
        let mut bm = BatchMeans::new(50);
        let mut x = 0x12345u64;
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            bm.record(10.0 + (u - 0.5));
        }
        assert!(bm.converged(Confidence::P95, 0.01, 10));
        assert!((bm.mean() - 10.0).abs() < 0.05);
    }

    #[test]
    fn batch_means_not_converged_with_few_batches() {
        let mut bm = BatchMeans::new(100);
        for i in 0..150 {
            bm.record(f64::from(i));
        }
        assert_eq!(bm.completed_batches(), 1);
        assert!(!bm.converged(Confidence::P95, 0.5, 2));
        assert!(bm.half_width(Confidence::P95).is_infinite());
    }

    #[test]
    fn batch_means_grand_mean_includes_partial_batch() {
        let mut bm = BatchMeans::new(4);
        for &x in &[1.0, 1.0, 1.0, 1.0, 9.0] {
            bm.record(x);
        }
        assert!((bm.mean() - 13.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn t_values_decrease_with_df() {
        assert!(Confidence::P95.t_value(1) > Confidence::P95.t_value(5));
        assert!(Confidence::P95.t_value(5) > Confidence::P95.t_value(30));
        assert!((Confidence::P95.t_value(100) - 1.960).abs() < 1e-9);
        assert!(Confidence::P95.t_value(0).is_infinite());
    }

    #[test]
    fn autocorrelation_of_alternating_series_is_negative() {
        let xs: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&xs, 1) < -0.9);
        assert!(autocorrelation(&xs, 2) > 0.9);
    }

    #[test]
    fn autocorrelation_of_noise_is_small() {
        let mut x = 0x9E3779B97F4A7C15u64;
        let xs: Vec<f64> = (0..5000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect();
        assert!(autocorrelation(&xs, 1).abs() < 0.05);
        assert!(autocorrelation(&xs, 10).abs() < 0.05);
    }

    #[test]
    fn autocorrelation_degenerate_cases() {
        assert_eq!(autocorrelation(&[], 1), 0.0);
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0);
        assert_eq!(autocorrelation(&[3.0; 50], 1), 0.0);
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let mut h = Histogram::new(1.0, 100);
        for i in 0..100 {
            h.record(f64::from(i) + 0.5);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 50.0).abs() <= 1.0, "median {median}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 90.0).abs() <= 1.0, "p90 {p90}");
    }

    #[test]
    fn histogram_overflow_bucket() {
        let mut h = Histogram::new(1.0, 10);
        h.record(5.0);
        h.record(100.0);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
        // q=0.9 target falls in overflow -> None.
        assert_eq!(h.quantile(0.9), None);
    }

    #[test]
    fn time_weighted_average_of_step_function() {
        let mut tw = TimeWeighted::new(0.0, 0.0);
        tw.update(10.0, 5.0); // value 0 for 10 units
        tw.update(20.0, 0.0); // value 5 for 10 units
        assert!((tw.average() - 2.5).abs() < 1e-12);
        assert_eq!(tw.max(), 5.0);
    }

    #[test]
    fn time_weighted_no_span_returns_current() {
        let tw = TimeWeighted::new(3.0, 7.0);
        assert_eq!(tw.average(), 7.0);
    }

    #[test]
    fn ewma_seeds_with_first_observation() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.value(), 0.0);
        assert!(!e.primed());
        assert_eq!(e.record(4.0), 4.0);
        assert!(e.primed());
        // 0.9 * 4 + 0.1 * 14 = 5.0
        assert!((e.record(14.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.record(3.0);
        }
        assert!((e.value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_alpha_one_tracks_exactly() {
        let mut e = Ewma::new(1.0);
        e.record(1.0);
        e.record(9.0);
        assert_eq!(e.value(), 9.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0,1]")]
    fn ewma_rejects_zero_alpha() {
        Ewma::new(0.0);
    }
}
