//! Deterministic random-number plumbing — fully in-tree.
//!
//! Every stochastic component of the simulation (Zipf draws, think times,
//! the PullBW and SteadyStatePerc coins, noise permutation, ...) gets its
//! own independent generator derived from a single experiment seed and a
//! stable *stream* label. Two properties follow:
//!
//! 1. a whole experiment is reproducible from one `u64` seed, and
//! 2. changing how often one component draws (e.g. adding a VC coin flip)
//!    does not perturb the variates seen by any other component — the
//!    classic "common random numbers" discipline for variance reduction
//!    when comparing algorithms.
//!
//! The generator itself is **xoshiro256++** (Blackman & Vigna), implemented
//! here rather than pulled from a crate so that the variate streams — and
//! with them every published number of the reproduction — can never change
//! underneath us with a dependency upgrade. Seeding goes through SplitMix64
//! exactly as the reference implementation recommends, and the
//! `rng_streams_are_pinned_forever` golden test pins the first draws of
//! several `(seed, stream)` pairs so any accidental change to the stream
//! discipline fails loudly.

/// SplitMix64 output mix (finalizer without the increment).
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 finalizer; the standard way to decorrelate nearby seeds.
fn splitmix64(z: u64) -> u64 {
    splitmix64_mix(z.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

/// The subset of uniform draws the simulator actually uses.
///
/// Implemented by [`Xoshiro256pp`]; generic consumers (alias tables, think
/// times, the MUX coin) bound on `R: Rng + ?Sized` so tests can substitute
/// counting or constant generators.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample of `T`: full range for integers, `[0, 1)` for
    /// `f64`, a fair coin for `bool`.
    fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform integer in `[range.start, range.end)`, bias-free
    /// (Lemire's multiply-shift rejection).
    ///
    /// # Panics
    /// If the range is empty.
    fn random_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "cannot sample an empty range");
        let span = (range.end - range.start) as u64;
        let mut m = u128::from(self.next_u64()) * u128::from(span);
        if (m as u64) < span {
            // Rejection threshold: 2^64 mod span.
            let t = span.wrapping_neg() % span;
            while (m as u64) < t {
                m = u128::from(self.next_u64()) * u128::from(span);
            }
        }
        range.start + (m >> 64) as usize
    }

    /// A coin that lands heads with probability `p` (clamped to `[0, 1]`).
    /// Always consumes exactly one variate, so CRN streams stay aligned
    /// whatever `p` is.
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

/// Types drawable uniformly from an [`Rng`].
pub trait Sample {
    /// Draw one uniform value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for f64 {
    /// 53-bit mantissa convention: uniform on `[0, 1)` with 2⁻⁵³ spacing.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

/// xoshiro256++ — the workspace's one and only generator.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; the `++` scrambler
/// makes all 64 output bits usable. Public-domain algorithm by David
/// Blackman and Sebastiano Vigna (2019), re-implemented from the reference
/// description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed the full 256-bit state from one `u64` via consecutive
    /// SplitMix64 outputs (the seeding procedure the xoshiro authors
    /// recommend; it also guarantees a non-zero state in practice).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *w = splitmix64_mix(sm);
        }
        if s == [0; 4] {
            // The all-zero state is the one fixed point of the transition;
            // unreachable from SplitMix64 in practice, but cheap to guard.
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256pp { s }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Derive an independent generator for (`seed`, `stream`).
///
/// The same pair always yields the same generator; distinct streams under
/// the same seed are decorrelated by two SplitMix64 rounds.
pub fn stream_rng(seed: u64, stream: u64) -> Xoshiro256pp {
    let mixed =
        splitmix64(splitmix64(seed) ^ splitmix64(stream.wrapping_mul(0xA24B_AED4_963E_E407)));
    Xoshiro256pp::seed_from_u64(mixed)
}

/// A seed sequence: hands out numbered sub-seeds from a root seed, for
/// components that themselves need several generators.
#[derive(Debug, Clone, Copy)]
pub struct SeedSeq {
    root: u64,
    next: u64,
}

impl SeedSeq {
    /// Start a sequence from `root`.
    pub fn new(root: u64) -> Self {
        SeedSeq { root, next: 0 }
    }

    /// The next generator in the sequence.
    pub fn next_rng(&mut self) -> Xoshiro256pp {
        let s = self.next;
        self.next += 1;
        stream_rng(self.root, s)
    }

    /// A generator for an explicit stream id (does not advance the sequence).
    pub fn named(&self, stream: u64) -> Xoshiro256pp {
        stream_rng(self.root, stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_is_reproducible() {
        let mut a = stream_rng(42, 7);
        let mut b = stream_rng(42, 7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = stream_rng(42, 0);
        let mut b = stream_rng(42, 1);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0, "adjacent streams must not collide");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = stream_rng(1, 0);
        let mut b = stream_rng(2, 0);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn seed_seq_hands_out_distinct_generators() {
        let mut seq = SeedSeq::new(9);
        let mut a = seq.next_rng();
        let mut b = seq.next_rng();
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn named_stream_matches_stream_rng() {
        let seq = SeedSeq::new(5);
        let mut a = seq.named(3);
        let mut b = stream_rng(5, 3);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn splitmix_distributes_low_entropy_seeds() {
        // Seeds 0..16 must produce well-spread first outputs (sanity check
        // against accidentally feeding raw counters to the generator).
        let firsts: Vec<u64> = (0..16).map(|s| stream_rng(s, 0).random::<u64>()).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len());
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = stream_rng(1, 1);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..100_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            min = min.min(u);
            max = max.max(u);
        }
        assert!(min < 0.001, "min {min}");
        assert!(max > 0.999, "max {max}");
    }

    #[test]
    fn random_range_is_unbiased_and_in_bounds() {
        let mut rng = stream_rng(2, 2);
        let mut counts = [0u32; 7];
        let n = 140_000;
        for _ in 0..n {
            let v = rng.random_range(3..10);
            assert!((3..10).contains(&v));
            counts[v - 3] += 1;
        }
        let expect = n as f64 / 7.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expect).abs() / expect;
            assert!(dev < 0.03, "bucket {i}: count {c}, expected {expect}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        stream_rng(0, 0).random_range(5..5);
    }

    #[test]
    fn random_bool_tracks_probability_and_stream_alignment() {
        let mut rng = stream_rng(3, 3);
        let n = 100_000;
        let heads = (0..n).filter(|_| rng.random_bool(0.3)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
        // Degenerate probabilities still consume exactly one variate each,
        // so downstream draws stay aligned across configurations.
        let mut a = stream_rng(4, 4);
        let mut b = stream_rng(4, 4);
        assert!(!a.random_bool(0.0));
        assert!(b.random_bool(1.0));
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    /// Golden values: the first 8 draws of three (seed, stream) pairs.
    ///
    /// These constants pin the common-random-numbers contract. If this test
    /// fails, a change has silently re-randomised every experiment in the
    /// repo — do NOT update the constants without bumping the experiment
    /// provenance notes in EXPERIMENTS.md.
    #[test]
    fn rng_streams_are_pinned_forever() {
        // Filled in from the first run of this implementation; verified
        // stable across rebuilds and platforms (pure integer arithmetic).
        let golden: [(u64, u64, [u64; 8]); 3] = [
            (0, 0, GOLDEN_0_0),
            (42, 7, GOLDEN_42_7),
            (0x5EED_B0DC, 4, GOLDEN_5EEDB0DC_4),
        ];
        for (seed, stream, want) in golden {
            let mut rng = stream_rng(seed, stream);
            let got: Vec<u64> = (0..8).map(|_| rng.random::<u64>()).collect();
            assert_eq!(got, want, "stream_rng({seed}, {stream}) drifted");
        }
    }

    const GOLDEN_0_0: [u64; 8] = [
        0x84f0_9bf3_07c1_073a,
        0xc82f_fb59_7cee_e51b,
        0xadf9_6905_c5df_4417,
        0xe9d9_a848_9d04_2c93,
        0xad67_db02_49c4_1e0a,
        0xff32_6c7e_de4e_f54b,
        0x7e20_b38f_8e28_a54c,
        0x51fd_ab71_c49a_c2be,
    ];
    const GOLDEN_42_7: [u64; 8] = [
        0xcbb3_5849_8fd5_e720,
        0x3663_cbcf_6c2e_a945,
        0xabb6_1169_a8ff_36db,
        0xde98_4963_5e13_f25a,
        0xe0dc_f5f4_edb4_210e,
        0x5f49_5da3_169c_d8c6,
        0xb23c_c0ad_6e31_91de,
        0xe526_fa17_cde4_2077,
    ];
    const GOLDEN_5EEDB0DC_4: [u64; 8] = [
        0x068b_66a6_eaf9_5a67,
        0x38ea_ec58_eab0_7d6e,
        0x3f1a_53b2_7215_eb5f,
        0xd93d_3032_2344_11ea,
        0x4693_20c1_f2a0_c80a,
        0x3929_2a52_f54e_2a27,
        0xf9ed_a129_f7f4_3a27,
        0x1011_fe11_a746_33e7,
    ];
}
