//! Deterministic random-number plumbing.
//!
//! Every stochastic component of the simulation (Zipf draws, think times,
//! the PullBW and SteadyStatePerc coins, noise permutation, ...) gets its
//! own independent generator derived from a single experiment seed and a
//! stable *stream* label. Two properties follow:
//!
//! 1. a whole experiment is reproducible from one `u64` seed, and
//! 2. changing how often one component draws (e.g. adding a VC coin flip)
//!    does not perturb the variates seen by any other component — the
//!    classic "common random numbers" discipline for variance reduction
//!    when comparing algorithms.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 finalizer; the standard way to decorrelate nearby seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive an independent generator for (`seed`, `stream`).
///
/// The same pair always yields the same generator; distinct streams under
/// the same seed are decorrelated by two SplitMix64 rounds.
pub fn stream_rng(seed: u64, stream: u64) -> SmallRng {
    let mixed = splitmix64(splitmix64(seed) ^ splitmix64(stream.wrapping_mul(0xA24B_AED4_963E_E407)));
    SmallRng::seed_from_u64(mixed)
}

/// A seed sequence: hands out numbered sub-seeds from a root seed, for
/// components that themselves need several generators.
#[derive(Debug, Clone, Copy)]
pub struct SeedSeq {
    root: u64,
    next: u64,
}

impl SeedSeq {
    /// Start a sequence from `root`.
    pub fn new(root: u64) -> Self {
        SeedSeq { root, next: 0 }
    }

    /// The next generator in the sequence.
    pub fn next_rng(&mut self) -> SmallRng {
        let s = self.next;
        self.next += 1;
        stream_rng(self.root, s)
    }

    /// A generator for an explicit stream id (does not advance the sequence).
    pub fn named(&self, stream: u64) -> SmallRng {
        stream_rng(self.root, stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream_is_reproducible() {
        let mut a = stream_rng(42, 7);
        let mut b = stream_rng(42, 7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = stream_rng(42, 0);
        let mut b = stream_rng(42, 1);
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert_eq!(same, 0, "adjacent streams must not collide");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = stream_rng(1, 0);
        let mut b = stream_rng(2, 0);
        let same = (0..64).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn seed_seq_hands_out_distinct_generators() {
        let mut seq = SeedSeq::new(9);
        let mut a = seq.next_rng();
        let mut b = seq.next_rng();
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn named_stream_matches_stream_rng() {
        let seq = SeedSeq::new(5);
        let mut a = seq.named(3);
        let mut b = stream_rng(5, 3);
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn splitmix_distributes_low_entropy_seeds() {
        // Seeds 0..16 must produce well-spread first outputs (sanity check
        // against accidentally feeding raw counters to the generator).
        let firsts: Vec<u64> = (0..16).map(|s| stream_rng(s, 0).random::<u64>()).collect();
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), firsts.len());
    }
}
