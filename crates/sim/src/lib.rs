//! # bpp-sim — discrete-event simulation kernel
//!
//! A small, deterministic discrete-event simulation engine plus the online
//! statistics used by the `bpp` broadcast-dissemination simulator.
//!
//! The original paper ("Balancing Push and Pull for Data Broadcast",
//! SIGMOD 1997) implemented its model on CSIM, a process-oriented C
//! simulation library. This crate provides the equivalent substrate in an
//! event/state-machine formulation:
//!
//! * logical time is a non-negative `f64` measured in *broadcast units*
//!   (the time to broadcast one page);
//! * events scheduled for the same instant fire in FIFO order (a strict
//!   total order, so runs are bit-for-bit reproducible);
//! * events can be cancelled via the [`EventId`] handle returned at
//!   scheduling time;
//! * randomness comes only from explicitly seeded generators
//!   (see [`rng`]), never from ambient entropy.
//!
//! The engine is intentionally single-threaded: the simulated system is a
//! totally ordered sequence of broadcast slots and client actions, and
//! determinism is worth far more here than parallel speed. Parameter sweeps
//! parallelise across independent simulations instead.
//!
//! ## Example
//!
//! ```
//! use bpp_sim::{Engine, Model, Scheduler, Time};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! enum Ev {
//!     Tick,
//! }
//!
//! impl Model for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, now: Time, _ev: Ev, sched: &mut Scheduler<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 10 {
//!             sched.schedule_in(1.0, Ev::Tick);
//!         }
//!         let _ = now;
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 });
//! engine.scheduler().schedule_at(0.0, Ev::Tick);
//! engine.run_to_completion();
//! assert_eq!(engine.model().fired, 10);
//! assert_eq!(engine.now(), 9.0);
//! ```

#![forbid(unsafe_code)]

pub mod approx;
pub mod engine;
pub mod refsched;
pub mod rng;
pub mod stats;

pub use approx::{approx_eq, exactly, exactly_zero};
pub use bpp_obs::EngineObs;
pub use engine::{Engine, EventId, Model, Scheduler, Time};
pub use refsched::ReferenceScheduler;
pub use rng::{stream_rng, Rng, Sample, SeedSeq, Xoshiro256pp};
pub use stats::{autocorrelation, BatchMeans, Confidence, Ewma, Histogram, TimeWeighted, Welford};
