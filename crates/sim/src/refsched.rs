//! Reference event queue: the pre-wheel binary-heap scheduler, retained
//! verbatim in behaviour as a differential-testing oracle.
//!
//! [`crate::engine::Scheduler`] is a hashed hierarchical timer wheel; its
//! correctness contract is "identical `(time, seq)` dispatch order to a
//! priority queue with FIFO tie-break". This module keeps that priority
//! queue alive — tombstone cancellation and all — so property tests can
//! drive both implementations with the same operation sequence and demand
//! identical dispatch logs, head times, and pending counts. It is not used
//! by any simulation path.
//!
//! Event handles are plain `u64` sequence numbers (the wheel's opaque
//! [`crate::EventId`] cannot be constructed outside its module); the n-th
//! `schedule_at` call on either implementation gets the same number, so a
//! driver can cancel "the same event" on both sides.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::engine::Time;

struct Scheduled<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get (earliest time, lowest seq)
        // at the top. Times are non-NaN at insertion, where total_cmp
        // agrees with IEEE ordering, so no panic path is needed.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The retained binary-heap scheduler with lazy tombstone cancellation.
///
/// Semantics match the timer wheel exactly: same panics on bad times, same
/// `(time, seq)` dispatch order, `pending()` counts live events only, and
/// `peek_live` reports the next *live* head time (draining tombstones).
pub struct ReferenceScheduler<E> {
    heap: BinaryHeap<Scheduled<E>>,
    live: HashSet<u64>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: Time,
}

impl<E> Default for ReferenceScheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ReferenceScheduler<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        ReferenceScheduler {
            heap: BinaryHeap::new(),
            live: HashSet::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// Current simulated time (the time of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Schedule `event` at absolute time `at` (must be `>= now` and finite).
    /// Returns the event's sequence number, usable with [`Self::cancel`].
    pub fn schedule_at(&mut self, at: Time, event: E) -> u64 {
        assert!(at.is_finite(), "event time must be finite, got {at}");
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} < now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Scheduled {
            time: at,
            seq,
            event,
        });
        seq
    }

    /// Schedule `event` after a non-negative `delay` from now.
    pub fn schedule_in(&mut self, delay: Time, event: E) -> u64 {
        assert!(
            delay >= 0.0,
            "delay must be non-negative, got {delay} at t={}",
            self.now
        );
        self.schedule_at(self.now + delay, event)
    }

    /// Cancel a pending event (tombstone; the entry is discarded lazily).
    /// Returns `true` if the event had not yet fired or been cancelled.
    pub fn cancel(&mut self, seq: u64) -> bool {
        if self.live.remove(&seq) {
            self.cancelled.insert(seq);
            true
        } else {
            false
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// Time of the next *live* event, draining head tombstones first.
    pub fn peek_live(&mut self) -> Option<Time> {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.remove(&head.seq) {
                self.heap.pop();
                continue;
            }
            return Some(head.time);
        }
        None
    }

    /// Pop the next live event, advancing `now` to its time — the heap-side
    /// equivalent of one [`crate::Engine::step`] dispatch.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(s) = self.heap.pop() {
            if self.cancelled.remove(&s.seq) {
                continue;
            }
            self.live.remove(&s.seq);
            self.now = s.time;
            return Some((s.time, s.event));
        }
        None
    }

    /// Pop every live event at or before `t`, in `(time, seq)` order — the
    /// heap-side equivalent of [`crate::Engine::run_until`]. Returns the
    /// dispatched `(time, event)` pairs.
    pub fn drain_until(&mut self, t: Time) -> Vec<(Time, E)> {
        let mut out = Vec::new();
        while self.peek_live().is_some_and(|next| next <= t) {
            let Some(fired) = self.pop() else {
                break;
            };
            out.push(fired);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatches_in_time_then_seq_order() {
        let mut s = ReferenceScheduler::new();
        s.schedule_at(2.0, "b");
        s.schedule_at(1.0, "a");
        s.schedule_at(2.0, "c");
        let fired = s.drain_until(2.0);
        assert_eq!(fired, vec![(1.0, "a"), (2.0, "b"), (2.0, "c")]);
        assert_eq!(s.now(), 2.0);
    }

    #[test]
    fn tombstone_past_deadline_admits_no_dispatch() {
        // The PR 5 regression shape, on the oracle itself.
        let mut s = ReferenceScheduler::new();
        let victim = s.schedule_at(1.9, "victim");
        s.schedule_at(2.1, "live");
        assert!(s.cancel(victim));
        assert!(s.drain_until(2.0).is_empty());
        assert_eq!(s.now(), 0.0);
        assert_eq!(s.pending(), 1);
        assert_eq!(s.drain_until(2.1), vec![(2.1, "live")]);
    }

    #[test]
    fn pending_excludes_tombstones() {
        let mut s = ReferenceScheduler::new();
        let a = s.schedule_at(1.0, ());
        s.schedule_at(2.0, ());
        assert_eq!(s.pending(), 2);
        assert!(s.cancel(a));
        assert!(!s.cancel(a));
        assert_eq!(s.pending(), 1);
        assert_eq!(s.peek_live(), Some(2.0));
    }
}
