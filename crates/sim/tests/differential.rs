//! Differential property test: the timer-wheel scheduler must produce the
//! exact dispatch sequence of the retained reference binary-heap scheduler
//! under seeded random operation mixes.
//!
//! The wheel side runs through a full [`Engine`] (so `run_until`, cursor
//! advancement, and in-handler scheduling are exercised exactly as the
//! simulator uses them); the heap side is driven through
//! [`ReferenceScheduler::drain_until`]. Both sides see identical operation
//! streams; after every drain the `(time, tag)` dispatch logs, pending
//! counts, and head times must agree.

use bpp_sim::{Engine, EventId, Model, ReferenceScheduler, Rng, Scheduler, Time, Xoshiro256pp};

/// Wheel-side model: records every dispatch as `(time, tag)`.
struct Recorder {
    log: Vec<(Time, u32)>,
}

impl Model for Recorder {
    type Event = u32;
    fn handle(&mut self, now: Time, tag: u32, _sched: &mut Scheduler<u32>) {
        self.log.push((now, tag));
    }
}

/// One differential run: `ops` random operations under `seed`.
///
/// Live events are tracked as `(wheel_id, heap_seq, tag)` triples so a
/// cancel targets "the same event" on both sides. The op mix leans on the
/// shapes the simulator produces: same-instant bursts, zero delays, short
/// think-time hops, and rare far-future jumps that cross wheel levels.
fn differential_run(seed: u64, ops: usize) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut wheel = Engine::new(Recorder { log: Vec::new() });
    let mut heap: ReferenceScheduler<u32> = ReferenceScheduler::new();
    let mut heap_log: Vec<(Time, u32)> = Vec::new();
    let mut live: Vec<(EventId, u64, u32)> = Vec::new();
    let mut next_tag: u32 = 0;

    let schedule = |wheel: &mut Engine<Recorder>,
                    heap: &mut ReferenceScheduler<u32>,
                    live: &mut Vec<(EventId, u64, u32)>,
                    next_tag: &mut u32,
                    delay: f64| {
        let tag = *next_tag;
        *next_tag += 1;
        let at = wheel.now() + delay;
        let wid = wheel.scheduler().schedule_at(at, tag);
        let hid = heap.schedule_at(at, tag);
        live.push((wid, hid, tag));
    };

    for _ in 0..ops {
        match rng.random_range(0..10) {
            // Schedule with a short delay (often same-tick / same-instant).
            0..=3 => {
                let delay = match rng.random_range(0..4) {
                    0 => 0.0,
                    1 => rng.random::<f64>() * 0.5,
                    2 => 1.0,
                    _ => rng.random::<f64>() * 8.0,
                };
                schedule(&mut wheel, &mut heap, &mut live, &mut next_tag, delay);
            }
            // Schedule far ahead, crossing one or more wheel levels.
            4 => {
                let delay = 50.0 + rng.random::<f64>() * 10_000.0;
                schedule(&mut wheel, &mut heap, &mut live, &mut next_tag, delay);
            }
            // Cancel a random tracked event; both sides must agree on
            // whether it was still live.
            5 | 6 => {
                if !live.is_empty() {
                    let k = rng.random_range(0..live.len());
                    let (wid, hid, _) = live.swap_remove(k);
                    let a = wheel.scheduler().cancel(wid);
                    let b = heap.cancel(hid);
                    assert_eq!(a, b, "cancel disagreement (seed {seed})");
                }
            }
            // Reschedule: cancel + replant at a fresh time.
            7 => {
                if !live.is_empty() {
                    let k = rng.random_range(0..live.len());
                    let (wid, hid, _) = live.swap_remove(k);
                    let a = wheel.scheduler().cancel(wid);
                    let b = heap.cancel(hid);
                    assert_eq!(a, b, "cancel disagreement (seed {seed})");
                    let delay = rng.random::<f64>() * 64.0;
                    schedule(&mut wheel, &mut heap, &mut live, &mut next_tag, delay);
                }
            }
            // Drain up to a deadline; sometimes ending exactly on a tick
            // boundary or between a tombstone and the next live event.
            _ => {
                let dt = match rng.random_range(0..3) {
                    0 => rng.random::<f64>() * 2.0,
                    1 => (rng.random_range(0..70)) as f64,
                    _ => rng.random::<f64>() * 300.0,
                };
                let t = wheel.now() + dt;
                wheel.run_until(t);
                heap_log.extend(heap.drain_until(t));
                assert_eq!(
                    wheel.model().log,
                    heap_log,
                    "dispatch logs diverged (seed {seed})"
                );
                assert_eq!(
                    wheel.scheduler().pending(),
                    heap.pending(),
                    "pending counts diverged (seed {seed})"
                );
                assert_eq!(
                    wheel.scheduler().peek_live(),
                    heap.peek_live(),
                    "head times diverged (seed {seed})"
                );
                live.retain(|&(_, _, tag)| !heap_log.iter().any(|&(_, t2)| t2 == tag));
            }
        }
    }

    // Final total drain: everything left must come out identically.
    wheel.run_to_completion();
    while let Some(fired) = heap.pop() {
        heap_log.push(fired);
    }
    assert_eq!(
        wheel.model().log,
        heap_log,
        "final dispatch logs diverged (seed {seed})"
    );
    assert_eq!(wheel.scheduler().pending(), 0);
    assert_eq!(heap.pending(), 0);
}

#[test]
fn wheel_matches_reference_heap_over_random_op_sequences() {
    for seed in 0..24u64 {
        differential_run(0x00D1_FF00 + seed, 400);
    }
}

#[test]
fn wheel_matches_reference_heap_on_long_mixed_run() {
    differential_run(0xFEED_FACE, 4000);
}

#[test]
fn tombstone_past_deadline_regression_matches_on_both() {
    // The PR 5 regression shape: a cancelled head at t-ε must not let a
    // live event at t+ε fire from `run_until(t)` — on either side.
    let mut wheel = Engine::new(Recorder { log: Vec::new() });
    let mut heap: ReferenceScheduler<u32> = ReferenceScheduler::new();

    let w_victim = wheel.scheduler().schedule_at(1.9, 0);
    let h_victim = heap.schedule_at(1.9, 0);
    wheel.scheduler().schedule_at(2.1, 1);
    heap.schedule_at(2.1, 1);
    assert!(wheel.scheduler().cancel(w_victim));
    assert!(heap.cancel(h_victim));

    wheel.run_until(2.0);
    let heap_fired = heap.drain_until(2.0);
    assert_eq!(wheel.model().log, heap_fired);
    assert!(wheel.model().log.is_empty());
    assert_eq!(wheel.now(), 0.0);
    assert_eq!(heap.now(), 0.0);
    assert_eq!(wheel.scheduler().pending(), heap.pending());

    wheel.run_until(2.1);
    let heap_fired = heap.drain_until(2.1);
    assert_eq!(wheel.model().log, heap_fired);
    assert_eq!(wheel.model().log, vec![(2.1, 1)]);
}
