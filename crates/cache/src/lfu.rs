//! Least-frequently-used replacement — a frequency-based baseline.
//!
//! LFU approximates the P policy without oracle probabilities: observed
//! access counts stand in for `p`. Ties (common early on) break by recency,
//! oldest out first.

use crate::policy::{CacheStats, ReplacementPolicy};
use std::collections::{BTreeSet, HashMap};

/// LFU cache over dense item indexes.
#[derive(Debug, Clone, Default)]
pub struct LfuCache {
    capacity: usize,
    /// item -> (count, stamp)
    state: HashMap<usize, (u64, u64)>,
    /// (count, stamp, item): least frequent, then oldest, first.
    order: BTreeSet<(u64, u64, usize)>,
    clock: u64,
    stats: CacheStats,
}

impl LfuCache {
    /// An empty LFU cache of `capacity` items.
    pub fn new(capacity: usize) -> Self {
        LfuCache {
            capacity,
            ..Default::default()
        }
    }

    fn bump(&mut self, item: usize) {
        self.clock += 1;
        let stamp = self.clock;
        let entry = self.state.entry(item).or_insert((0, 0));
        let old = *entry;
        entry.0 += 1;
        entry.1 = stamp;
        if old.0 > 0 || self.order.contains(&(old.0, old.1, item)) {
            self.order.remove(&(old.0, old.1, item));
        }
        self.order.insert((entry.0, stamp, item));
    }
}

impl ReplacementPolicy for LfuCache {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.state.len()
    }

    fn contains(&self, item: usize) -> bool {
        self.state.contains_key(&item)
    }

    fn lookup(&mut self, item: usize) -> bool {
        if self.state.contains_key(&item) {
            self.stats.hits += 1;
            self.bump(item);
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    fn insert(&mut self, item: usize) -> Option<usize> {
        if self.capacity == 0 {
            return None;
        }
        if self.state.contains_key(&item) {
            self.bump(item);
            return None;
        }
        let evicted = if self.state.len() == self.capacity {
            // bpp-lint: allow(D3): reached only when the cache is full, so the order set is non-empty
            let &(c, s, victim) = self.order.first().expect("full cache non-empty");
            self.order.remove(&(c, s, victim));
            self.state.remove(&victim);
            self.stats.evictions += 1;
            Some(victim)
        } else {
            None
        };
        self.bump(item);
        self.stats.insertions += 1;
        evicted
    }

    fn remove(&mut self, item: usize) -> bool {
        match self.state.remove(&item) {
            Some((count, stamp)) => {
                self.order.remove(&(count, stamp, item));
                self.stats.evictions += 1;
                true
            }
            None => false,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_frequent() {
        let mut c = LfuCache::new(2);
        c.insert(1);
        c.insert(2);
        c.lookup(1);
        c.lookup(1); // 1 now hot
        assert_eq!(c.insert(3), Some(2));
        assert!(c.contains(1) && c.contains(3));
    }

    #[test]
    fn frequency_ties_evict_oldest() {
        let mut c = LfuCache::new(2);
        c.insert(1);
        c.insert(2); // both freq 1; 1 older
        assert_eq!(c.insert(3), Some(1));
    }

    #[test]
    fn counts_persist_across_hits() {
        let mut c = LfuCache::new(3);
        c.insert(1);
        for _ in 0..5 {
            assert!(c.lookup(1));
        }
        assert_eq!(c.stats().hits, 5);
        assert_eq!(c.state[&1].0, 6); // insert + 5 hits
    }

    #[test]
    fn capacity_bound_holds() {
        let mut c = LfuCache::new(4);
        for i in 0..50 {
            c.insert(i % 10);
            assert!(c.len() <= 4);
        }
    }

    #[test]
    fn remove_clears_frequency_state() {
        let mut c = LfuCache::new(2);
        c.insert(1);
        c.lookup(1);
        c.lookup(1);
        assert!(c.remove(1));
        assert!(!c.contains(1));
        // Re-inserted item starts from a fresh count.
        c.insert(1);
        assert_eq!(c.state[&1].0, 1);
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut c = LfuCache::new(0);
        assert_eq!(c.insert(5), None);
        assert!(!c.contains(5));
    }
}
