//! Least-recently-used replacement — the paper's strawman baseline.
//!
//! \[Acha95a\] showed LRU "can perform poorly in this environment" because it
//! ignores broadcast frequency; we keep it for the ablation benches that
//! reproduce that claim.

use crate::policy::{CacheStats, ReplacementPolicy};
use std::collections::{BTreeSet, HashMap};

/// Classic LRU over dense item indexes.
#[derive(Debug, Clone, Default)]
pub struct LruCache {
    capacity: usize,
    /// item -> last-use stamp
    stamp_of: HashMap<usize, u64>,
    /// (stamp, item) ordered oldest first
    by_age: BTreeSet<(u64, usize)>,
    clock: u64,
    stats: CacheStats,
}

impl LruCache {
    /// An empty LRU cache of `capacity` items.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            ..Default::default()
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn touch(&mut self, item: usize) {
        let stamp = self.tick();
        if let Some(old) = self.stamp_of.insert(item, stamp) {
            self.by_age.remove(&(old, item));
        }
        self.by_age.insert((stamp, item));
    }
}

impl ReplacementPolicy for LruCache {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.stamp_of.len()
    }

    fn contains(&self, item: usize) -> bool {
        self.stamp_of.contains_key(&item)
    }

    fn lookup(&mut self, item: usize) -> bool {
        if self.stamp_of.contains_key(&item) {
            self.stats.hits += 1;
            self.touch(item);
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    fn insert(&mut self, item: usize) -> Option<usize> {
        if self.capacity == 0 {
            return None;
        }
        if self.stamp_of.contains_key(&item) {
            self.touch(item);
            return None;
        }
        let evicted = if self.stamp_of.len() == self.capacity {
            // bpp-lint: allow(D3): reached only when the cache is full, so the age set is non-empty
            let &(stamp, victim) = self.by_age.first().expect("full cache non-empty");
            self.by_age.remove(&(stamp, victim));
            self.stamp_of.remove(&victim);
            self.stats.evictions += 1;
            Some(victim)
        } else {
            None
        };
        self.touch(item);
        self.stats.insertions += 1;
        evicted
    }

    fn remove(&mut self, item: usize) -> bool {
        match self.stamp_of.remove(&item) {
            Some(stamp) => {
                self.by_age.remove(&(stamp, item));
                self.stats.evictions += 1;
                true
            }
            None => false,
        }
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        assert!(c.lookup(1)); // 2 becomes LRU
        assert_eq!(c.insert(3), Some(2));
        assert!(c.contains(1) && c.contains(3));
    }

    #[test]
    fn insert_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        c.insert(1); // refresh, no eviction
        assert_eq!(c.len(), 2);
        assert_eq!(c.insert(3), Some(2));
    }

    #[test]
    fn lookup_miss_does_not_admit() {
        let mut c = LruCache::new(2);
        assert!(!c.lookup(9));
        assert!(!c.contains(9));
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn zero_capacity_is_inert() {
        let mut c = LruCache::new(0);
        assert_eq!(c.insert(1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn remove_drops_membership_and_age_entry() {
        let mut c = LruCache::new(2);
        c.insert(1);
        c.insert(2);
        assert!(c.remove(1));
        assert!(!c.contains(1));
        assert!(!c.remove(1));
        // 2 is now alone; inserting 3 must not evict anything.
        assert_eq!(c.insert(3), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = LruCache::new(5);
        for i in 0..100 {
            c.insert(i);
            assert!(c.len() <= 5);
        }
        assert_eq!(c.len(), 5);
        // Content is the 5 most recent.
        for i in 95..100 {
            assert!(c.contains(i));
        }
    }
}
