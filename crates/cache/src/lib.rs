//! # bpp-cache — client cache replacement policies
//!
//! The paper's central cache insight (inherited from \[Acha95a\]) is that in a
//! broadcast environment a page's caching value is *not* its access
//! probability alone: a hot page that flies by every few slots is cheap to
//! re-fetch, while a lukewarm page on a slow disk is expensive to miss.
//!
//! * [`StaticScoreCache`] — cost-based replacement with a fixed per-item
//!   score; instantiate with score `p/x` for **PIX** (push environments) or
//!   score `p` for **P** (Pure-Pull, where every page costs the same to
//!   re-fetch);
//! * [`LruCache`] — least-recently-used, the paper's strawman, kept as an
//!   ablation baseline;
//! * [`LfuCache`] — least-frequently-used, a second recency/frequency
//!   baseline;
//! * [`CacheStats`] — hit/miss/eviction accounting shared by all policies.
//!
//! Items are dense `usize` indexes (database page numbers); policies are
//! deliberately domain-free so they can be tested in isolation.

#![forbid(unsafe_code)]

pub mod lfu;
pub mod lru;
pub mod policy;
pub mod static_score;

pub use lfu::LfuCache;
pub use lru::LruCache;
pub use policy::{CacheStats, ReplacementPolicy};
pub use static_score::StaticScoreCache;
