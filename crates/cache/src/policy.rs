//! The replacement-policy trait and shared accounting.

/// A fixed-capacity page cache with a replacement policy.
///
/// The access protocol is: on every page access call
/// [`lookup`](ReplacementPolicy::lookup); on a miss, once the page has been
/// retrieved from the broadcast or the server, call
/// [`insert`](ReplacementPolicy::insert).
pub trait ReplacementPolicy {
    /// Maximum number of items the cache holds.
    fn capacity(&self) -> usize;

    /// Current number of cached items.
    fn len(&self) -> usize;

    /// True when no items are cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the cache is at capacity.
    fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }

    /// Membership test *without* recording an access (no statistics, no
    /// recency update). For instrumentation such as warm-up tracking.
    fn contains(&self, item: usize) -> bool;

    /// Access `item`: returns `true` on a hit (updating recency/frequency
    /// state and statistics), `false` on a miss.
    fn lookup(&mut self, item: usize) -> bool;

    /// Insert `item` after a miss was satisfied. Returns the evicted item,
    /// if any. Policies with value-based admission may refuse the insert
    /// and return `None` while leaving the cache unchanged (the incoming
    /// item itself was the lowest-valued candidate).
    fn insert(&mut self, item: usize) -> Option<usize>;

    /// Drop `item` from the cache (server-side update invalidated it).
    /// Returns `true` if it was cached. Counted as an eviction.
    fn remove(&mut self, item: usize) -> bool;

    /// Statistics accumulated so far.
    fn stats(&self) -> &CacheStats;
}

/// Hit/miss/eviction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the item.
    pub hits: u64,
    /// Lookups that did not.
    pub misses: u64,
    /// Successful insertions.
    pub insertions: u64,
    /// Items pushed out by an insertion.
    pub evictions: u64,
    /// Insertions refused by value-based admission.
    pub rejected: u64,
}

impl CacheStats {
    /// Fraction of lookups that hit (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_zero_lookups() {
        let s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn hit_rate_is_fractional() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}
