//! Cost-based replacement with static per-item scores.
//!
//! Covers both of the paper's cost-based policies:
//!
//! * **PIX**: score = `p / x` — access probability over broadcast frequency.
//!   A page that is likely to be needed *and* slow to come around again is
//!   the most valuable to cache.
//! * **P**: score = `p` — under Pure-Pull every page costs the same to
//!   re-fetch, so plain access probability is the right value.
//!
//! The simulation gives clients perfect knowledge of their own access
//! probabilities (as in the paper), so scores are fixed at construction.
//! Admission is value-based: inserting into a full cache evicts the
//! lowest-scored of (cached ∪ incoming) — if the incoming item scores lowest
//! it is simply not cached.

use crate::policy::{CacheStats, ReplacementPolicy};
use std::collections::BTreeSet;

/// Orders items by (score, id) — total, deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    score: f64,
    item: usize,
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.score
            .partial_cmp(&other.score)
            // bpp-lint: allow(D3): scores are validated finite at construction
            .expect("scores are finite")
            .then_with(|| self.item.cmp(&other.item))
    }
}

/// Fixed-capacity cache evicting the lowest static score.
#[derive(Debug, Clone)]
pub struct StaticScoreCache {
    scores: Vec<f64>,
    cached: Vec<bool>,
    ordered: BTreeSet<Entry>,
    capacity: usize,
    stats: CacheStats,
}

impl StaticScoreCache {
    /// Build a cache of `capacity` items with one finite score per item.
    ///
    /// # Panics
    /// If any score is non-finite.
    pub fn new(capacity: usize, scores: Vec<f64>) -> Self {
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "scores must be finite"
        );
        let n = scores.len();
        StaticScoreCache {
            scores,
            cached: vec![false; n],
            ordered: BTreeSet::new(),
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// The PIX policy: score `p/x` from access probabilities and broadcast
    /// frequencies. Pages never broadcast (`x = 0`) get the score `p / x_min`
    /// scaled by the major cycle — effectively "maximally expensive to
    /// re-fetch", so they are favoured for retention; this matches the
    /// intuition that a pull-only page can take unboundedly long to recover.
    pub fn pix(capacity: usize, probs: &[f64], freqs: &[usize]) -> Self {
        assert_eq!(probs.len(), freqs.len(), "probs/freqs length mismatch");
        let scores = probs
            .iter()
            .zip(freqs)
            .map(|(&p, &x)| {
                if x == 0 {
                    // Not on the broadcast: treat as rarer than the rarest
                    // broadcast page (x = 1) by a full order of magnitude.
                    p * 10.0
                } else {
                    p / x as f64
                }
            })
            .collect();
        StaticScoreCache::new(capacity, scores)
    }

    /// The P policy: score is the access probability itself (Pure-Pull).
    pub fn p(capacity: usize, probs: &[f64]) -> Self {
        StaticScoreCache::new(capacity, probs.to_vec())
    }

    /// The static score of `item`.
    pub fn score(&self, item: usize) -> f64 {
        self.scores[item]
    }

    /// The `capacity` highest-scored items — the steady-state cache content.
    /// Deterministic (ties broken by item id, matching eviction order).
    pub fn ideal_content(&self) -> Vec<usize> {
        let mut entries: Vec<Entry> = self
            .scores
            .iter()
            .enumerate()
            .map(|(item, &score)| Entry { score, item })
            .collect();
        entries.sort_unstable_by(|a, b| b.cmp(a));
        entries
            .into_iter()
            .take(self.capacity)
            .map(|e| e.item)
            .collect()
    }

    /// Pre-fill the cache with its ideal (steady-state) content.
    pub fn warm(&mut self) {
        for item in self.ideal_content() {
            self.cached[item] = true;
            self.ordered.insert(Entry {
                score: self.scores[item],
                item,
            });
        }
    }
}

impl ReplacementPolicy for StaticScoreCache {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.ordered.len()
    }

    fn contains(&self, item: usize) -> bool {
        self.cached[item]
    }

    fn lookup(&mut self, item: usize) -> bool {
        if self.cached[item] {
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    fn insert(&mut self, item: usize) -> Option<usize> {
        if self.capacity == 0 || self.cached[item] {
            return None;
        }
        let entry = Entry {
            score: self.scores[item],
            item,
        };
        if self.ordered.len() < self.capacity {
            self.cached[item] = true;
            self.ordered.insert(entry);
            self.stats.insertions += 1;
            return None;
        }
        let min = *self
            .ordered
            .first()
            // bpp-lint: allow(D3): reached only when the cache is full, so a minimum exists
            .expect("cache is full, hence non-empty");
        if entry <= min {
            // Incoming item is the lowest-valued candidate: do not admit.
            self.stats.rejected += 1;
            return None;
        }
        self.ordered.remove(&min);
        self.cached[min.item] = false;
        self.cached[item] = true;
        self.ordered.insert(entry);
        self.stats.insertions += 1;
        self.stats.evictions += 1;
        Some(min.item)
    }

    fn remove(&mut self, item: usize) -> bool {
        if !self.cached[item] {
            return false;
        }
        self.cached[item] = false;
        self.ordered.remove(&Entry {
            score: self.scores[item],
            item,
        });
        self.stats.evictions += 1;
        true
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_up_to_capacity_without_eviction() {
        let mut c = StaticScoreCache::new(3, vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(c.insert(0), None);
        assert_eq!(c.insert(1), None);
        assert_eq!(c.insert(2), None);
        assert_eq!(c.len(), 3);
        assert!(c.is_full());
    }

    #[test]
    fn evicts_lowest_score() {
        let mut c = StaticScoreCache::new(2, vec![0.5, 0.1, 0.9]);
        c.insert(0);
        c.insert(1);
        // 2 scores 0.9 > min 0.1 -> evict item 1.
        assert_eq!(c.insert(2), Some(1));
        assert!(c.contains(0) && c.contains(2) && !c.contains(1));
    }

    #[test]
    fn refuses_admission_of_lowest_value_item() {
        let mut c = StaticScoreCache::new(2, vec![0.5, 0.4, 0.1]);
        c.insert(0);
        c.insert(1);
        assert_eq!(c.insert(2), None);
        assert!(!c.contains(2));
        assert_eq!(c.stats().rejected, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinserting_cached_item_is_noop() {
        let mut c = StaticScoreCache::new(2, vec![0.5, 0.4]);
        c.insert(0);
        assert_eq!(c.insert(0), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().insertions, 1);
    }

    #[test]
    fn zero_capacity_never_caches() {
        let mut c = StaticScoreCache::new(0, vec![1.0, 2.0]);
        assert_eq!(c.insert(1), None);
        assert!(!c.contains(1));
        assert!(c.is_full());
    }

    #[test]
    fn lookup_tracks_stats() {
        let mut c = StaticScoreCache::new(2, vec![0.5, 0.4]);
        c.insert(0);
        assert!(c.lookup(0));
        assert!(!c.lookup(1));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pix_prefers_slow_disk_pages_over_hotter_fast_ones() {
        // Paper example: p_a=0.3 on x=4 vs p_b=0.1 on x=1.
        // PIX(a) = 0.075 < PIX(b) = 0.1, so a is ejected before b.
        let probs = vec![0.3, 0.1];
        let freqs = vec![4usize, 1];
        let mut c = StaticScoreCache::pix(1, &probs, &freqs);
        c.insert(0);
        assert_eq!(c.insert(1), Some(0));
        assert!(c.contains(1));
    }

    #[test]
    fn pix_treats_pull_only_pages_as_most_expensive() {
        let probs = vec![0.2, 0.2];
        let freqs = vec![1usize, 0];
        let c = StaticScoreCache::pix(2, &probs, &freqs);
        assert!(c.score(1) > c.score(0));
    }

    #[test]
    fn p_policy_orders_by_probability() {
        let c = StaticScoreCache::p(2, &[0.1, 0.5, 0.3]);
        assert_eq!(c.ideal_content(), vec![1, 2]);
    }

    #[test]
    fn warm_fills_with_ideal_content() {
        let mut c = StaticScoreCache::p(2, &[0.1, 0.5, 0.3]);
        c.warm();
        assert!(c.is_full());
        assert!(c.contains(1) && c.contains(2) && !c.contains(0));
    }

    #[test]
    fn ideal_content_ties_break_deterministically() {
        let c = StaticScoreCache::p(2, &[0.5, 0.5, 0.5]);
        // Higher item id wins a tie (matches eviction order: Entry cmp).
        assert_eq!(c.ideal_content(), vec![2, 1]);
    }

    #[test]
    fn remove_invalidates_and_allows_reinsertion() {
        let mut c = StaticScoreCache::new(2, vec![0.5, 0.4, 0.1]);
        c.insert(0);
        c.insert(1);
        assert!(c.remove(0));
        assert!(!c.contains(0));
        assert_eq!(c.len(), 1);
        assert!(!c.remove(0), "double remove is a no-op");
        assert_eq!(c.stats().evictions, 1);
        // The slot freed by the invalidation is reusable.
        assert_eq!(c.insert(2), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_and_ideal_content_agree_under_churn() {
        let scores: Vec<f64> = (0..50).map(|i| f64::from(i) * 0.01).collect();
        let mut c = StaticScoreCache::new(10, scores);
        for i in 0..50 {
            c.insert(i);
        }
        let mut content: Vec<usize> = (0..50).filter(|&i| c.contains(i)).collect();
        content.sort_unstable();
        let mut ideal = c.ideal_content();
        ideal.sort_unstable();
        assert_eq!(content, ideal);
    }
}
