//! Property tests: invariants every replacement policy must uphold, driven
//! by deterministic generator loops — case `i` derives its inputs from
//! `stream_rng(SEED, i)`, so failures reproduce from the case index alone.

// bpp-lint: allow-file(D1): property cases derive per-case RNG streams from the case index
use bpp_cache::{LfuCache, LruCache, ReplacementPolicy, StaticScoreCache};
use bpp_sim::rng::{stream_rng, Rng, Xoshiro256pp};

const SEED: u64 = 0x5EED_B0DC;
const CASES: u64 = 64;

/// Run a random access trace against a policy and check the universal
/// invariants: capacity bound, contains/lookup agreement, eviction accuracy.
fn exercise<P: ReplacementPolicy>(mut cache: P, universe: usize, ops: usize, seed: u64) {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut shadow = std::collections::HashSet::new();
    for _ in 0..ops {
        // Occasionally invalidate (server-side update), otherwise access.
        if rng.random_range(0..10) == 0 {
            let item = rng.random_range(0..universe);
            let removed = cache.remove(item);
            assert_eq!(removed, shadow.remove(&item), "remove/shadow disagree");
        } else {
            let item = rng.random_range(0..universe);
            let hit = cache.lookup(item);
            assert_eq!(hit, shadow.contains(&item), "lookup/shadow disagree");
            if !hit {
                if let Some(victim) = cache.insert(item) {
                    assert!(shadow.remove(&victim), "evicted non-member {victim}");
                    assert!(!cache.contains(victim));
                }
                if cache.contains(item) {
                    shadow.insert(item);
                }
            }
        }
        assert!(cache.len() <= cache.capacity(), "over capacity");
        assert_eq!(cache.len(), shadow.len(), "len/shadow disagree");
    }
    let s = cache.stats();
    assert!(s.hits + s.misses <= ops as u64);
}

/// Generator: (capacity in 0..20, universe in 1..50, trace seed).
fn gen_case(case: u64) -> (usize, usize, u64) {
    let mut rng = stream_rng(SEED, case);
    let cap = rng.random_range(0..20);
    let universe = 1 + rng.random_range(0..49);
    let seed = rng.random::<u64>();
    (cap, universe, seed)
}

#[test]
fn lru_invariants() {
    for case in 0..CASES {
        let (cap, universe, seed) = gen_case(case);
        exercise(LruCache::new(cap), universe, 500, seed);
    }
}

#[test]
fn lfu_invariants() {
    for case in 0..CASES {
        let (cap, universe, seed) = gen_case(case);
        exercise(LfuCache::new(cap), universe, 500, seed);
    }
}

#[test]
fn static_score_invariants() {
    for case in 0..CASES {
        let (cap, universe, seed) = gen_case(case);
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xABCD);
        let scores: Vec<f64> = (0..universe).map(|_| rng.random::<f64>()).collect();
        exercise(StaticScoreCache::new(cap, scores), universe, 500, seed);
    }
}

#[test]
fn static_score_converges_to_ideal() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, case);
        let cap = 1 + rng.random_range(0..19);
        let universe = 20 + rng.random_range(0..40);
        let scores: Vec<f64> = (0..universe).map(|_| rng.random::<f64>()).collect();
        let mut c = StaticScoreCache::new(cap, scores);
        // Insert every item once: cache must end up holding the ideal set.
        for i in 0..universe {
            c.insert(i);
        }
        let mut content: Vec<usize> = (0..universe).filter(|&i| c.contains(i)).collect();
        let mut ideal = c.ideal_content();
        content.sort_unstable();
        ideal.sort_unstable();
        assert_eq!(content, ideal, "case {case}");
    }
}

#[test]
fn pix_scores_scale_inversely_with_frequency() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, case);
        let p = 0.0001 + rng.random::<f64>() * 0.9999;
        let x = 1 + rng.random_range(0..19);
        let c = StaticScoreCache::pix(1, &[p, p], &[x, x * 2]);
        assert!(c.score(0) > c.score(1), "case {case}: p={p} x={x}");
    }
}
