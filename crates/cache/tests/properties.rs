//! Property-based tests: invariants every replacement policy must uphold.

use bpp_cache::{LfuCache, LruCache, ReplacementPolicy, StaticScoreCache};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Run a random access trace against a policy and check the universal
/// invariants: capacity bound, contains/lookup agreement, eviction accuracy.
fn exercise<P: ReplacementPolicy>(mut cache: P, universe: usize, ops: usize, seed: u64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut shadow = std::collections::HashSet::new();
    for _ in 0..ops {
        // Occasionally invalidate (server-side update), otherwise access.
        if rng.random_range(0..10) == 0 {
            let item = rng.random_range(0..universe);
            let removed = cache.remove(item);
            assert_eq!(removed, shadow.remove(&item), "remove/shadow disagree");
        } else {
            let item = rng.random_range(0..universe);
            let hit = cache.lookup(item);
            assert_eq!(hit, shadow.contains(&item), "lookup/shadow disagree");
            if !hit {
                if let Some(victim) = cache.insert(item) {
                    assert!(shadow.remove(&victim), "evicted non-member {victim}");
                    assert!(!cache.contains(victim));
                }
                if cache.contains(item) {
                    shadow.insert(item);
                }
            }
        }
        assert!(cache.len() <= cache.capacity(), "over capacity");
        assert_eq!(cache.len(), shadow.len(), "len/shadow disagree");
    }
    let s = cache.stats();
    assert!(s.hits + s.misses <= ops as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lru_invariants(cap in 0usize..20, universe in 1usize..50, seed in any::<u64>()) {
        exercise(LruCache::new(cap), universe, 500, seed);
    }

    #[test]
    fn lfu_invariants(cap in 0usize..20, universe in 1usize..50, seed in any::<u64>()) {
        exercise(LfuCache::new(cap), universe, 500, seed);
    }

    #[test]
    fn static_score_invariants(cap in 0usize..20, universe in 1usize..50, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD);
        let scores: Vec<f64> = (0..universe).map(|_| rng.random::<f64>()).collect();
        exercise(StaticScoreCache::new(cap, scores), universe, 500, seed);
    }

    #[test]
    fn static_score_converges_to_ideal(cap in 1usize..20, universe in 20usize..60, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let scores: Vec<f64> = (0..universe).map(|_| rng.random::<f64>()).collect();
        let mut c = StaticScoreCache::new(cap, scores);
        // Insert every item once: cache must end up holding the ideal set.
        for i in 0..universe {
            c.insert(i);
        }
        let mut content: Vec<usize> = (0..universe).filter(|&i| c.contains(i)).collect();
        let mut ideal = c.ideal_content();
        content.sort_unstable();
        ideal.sort_unstable();
        prop_assert_eq!(content, ideal);
    }

    #[test]
    fn pix_scores_scale_inversely_with_frequency(p in 0.0001f64..1.0, x in 1usize..20) {
        let c = StaticScoreCache::pix(1, &[p, p], &[x, x * 2]);
        prop_assert!(c.score(0) > c.score(1));
    }
}
