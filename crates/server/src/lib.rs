//! # bpp-server — the broadcast server model
//!
//! Two server-side mechanisms from the paper:
//!
//! * [`RequestQueue`] — the bounded backchannel queue. Requests for a page
//!   already queued are *coalesced* (the earlier broadcast satisfies both);
//!   requests arriving at a full queue are *dropped*, silently — clients get
//!   no feedback. The queue records the statistics the paper reports
//!   (e.g. "at a ThinkTimeRatio of 50 the server drops 68.8% of the pull
//!   requests it receives when IPP is used").
//! * [`BandwidthMux`] — the Push/Pull multiplexer. Before every slot the
//!   server flips a coin weighted by `PullBW`; heads *and* a non-empty queue
//!   means the slot serves the queue head, otherwise the periodic broadcast
//!   continues. `PullBW` is therefore an upper bound on pull bandwidth:
//!   unused pull slots fall back to push.
//!
//! The queue offers three service disciplines: the paper's FIFO, plus
//! most-requested-first and shortest-latency-first as extension ablations.

#![forbid(unsafe_code)]

pub mod admission;
pub mod mux;
pub mod queue;
pub mod saturation;

pub use admission::{Admission, AdmissionConfig, AdmissionStats};
pub use mux::{BandwidthMux, SlotDecision};
pub use queue::{Discipline, OverflowPolicy, QueueStats, RequestQueue, SubmitOutcome};
pub use saturation::{SaturationDetector, SaturationPolicy, SaturationStats};
