//! The Push/Pull bandwidth multiplexer.
//!
//! "Before every page is broadcast, a coin weighted by PullBW is tossed and
//! depending on the outcome, either the requested page at the head of queue
//! is broadcast or the regular broadcast program continues. Note that the
//! regular broadcast is not interrupted if the server queue is empty and
//! thus, PullBW is only an upper limit on the bandwidth used to satisfy
//! backchannel requests."

use bpp_sim::rng::Rng;

/// What the next broadcast slot should carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotDecision {
    /// Serve the head of the pull queue.
    ServePull,
    /// Continue the periodic push program.
    ContinuePush,
}

/// The PullBW-weighted coin.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthMux {
    pull_bw: f64,
}

impl BandwidthMux {
    /// Create a MUX giving at most `pull_bw` (in `[0, 1]`) of the slots to
    /// pulled pages.
    pub fn new(pull_bw: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pull_bw),
            "PullBW must be a fraction in [0,1], got {pull_bw}"
        );
        BandwidthMux { pull_bw }
    }

    /// The configured pull-bandwidth bound.
    pub fn pull_bw(&self) -> f64 {
        self.pull_bw
    }

    /// Replace the bound (used by the adaptive extension).
    pub fn set_pull_bw(&mut self, pull_bw: f64) {
        assert!((0.0..=1.0).contains(&pull_bw));
        self.pull_bw = pull_bw;
    }

    /// Decide the next slot. `queue_empty` short-circuits the coin: an empty
    /// queue always continues the push program.
    ///
    /// With a backlog, exactly one variate is consumed *regardless of the
    /// bound's value*. A draw in `[0, 1)` compared against the bound decides
    /// both endpoints correctly (never below `0.0`, always below `1.0`), so
    /// short-circuiting them would only save a draw — and an adaptive
    /// trajectory that touches `0.0` or `1.0` would then consume fewer
    /// variates and desynchronize every later decision on this stream.
    pub fn decide<R: Rng + ?Sized>(&self, queue_empty: bool, rng: &mut R) -> SlotDecision {
        if queue_empty {
            return SlotDecision::ContinuePush;
        }
        if rng.random::<f64>() < self.pull_bw {
            SlotDecision::ServePull
        } else {
            SlotDecision::ContinuePush
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpp_sim::rng::Xoshiro256pp;

    #[test]
    fn empty_queue_always_pushes() {
        let mux = BandwidthMux::new(1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(mux.decide(true, &mut rng), SlotDecision::ContinuePush);
        }
    }

    #[test]
    fn zero_pull_bw_never_pulls() {
        let mux = BandwidthMux::new(0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(mux.decide(false, &mut rng), SlotDecision::ContinuePush);
        }
    }

    #[test]
    fn full_pull_bw_always_pulls_when_backlogged() {
        let mux = BandwidthMux::new(1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(mux.decide(false, &mut rng), SlotDecision::ServePull);
        }
    }

    #[test]
    fn coin_respects_the_bound_empirically() {
        let mux = BandwidthMux::new(0.3);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let n = 200_000;
        let pulls = (0..n)
            .filter(|_| mux.decide(false, &mut rng) == SlotDecision::ServePull)
            .count();
        let frac = pulls as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "pull fraction {frac}");
    }

    #[test]
    fn set_pull_bw_takes_effect() {
        let mut mux = BandwidthMux::new(0.0);
        mux.set_pull_bw(1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        assert_eq!(mux.decide(false, &mut rng), SlotDecision::ServePull);
    }

    #[test]
    #[should_panic(expected = "PullBW must be a fraction")]
    fn out_of_range_pull_bw_panics() {
        BandwidthMux::new(1.5);
    }

    #[test]
    fn draw_count_is_independent_of_the_bound() {
        // An adaptive trajectory that touches the endpoints must consume
        // exactly one variate per backlogged slot, like a flat fractional
        // trajectory — otherwise every later decision on the stream
        // desynchronizes the moment the bound crosses 1.0 (or 0.0).
        let trajectory = [0.9, 1.0, 1.0, 0.9, 0.0, 0.0, 0.9, 1.0, 0.0, 0.9];
        let mut a = Xoshiro256pp::seed_from_u64(6);
        let mut b = Xoshiro256pp::seed_from_u64(6);
        let mut crossing = BandwidthMux::new(0.9);
        let flat = BandwidthMux::new(0.9);
        for &bw in &trajectory {
            crossing.set_pull_bw(bw);
            let d = crossing.decide(false, &mut a);
            flat.decide(false, &mut b);
            // The endpoints still decide deterministically.
            if bw >= 1.0 {
                assert_eq!(d, SlotDecision::ServePull);
            }
            if bw <= 0.0 {
                assert_eq!(d, SlotDecision::ContinuePush);
            }
        }
        // Both streams sit at the same position afterwards: the next
        // consumer of the stream sees identical variates.
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
