//! The Push/Pull bandwidth multiplexer.
//!
//! "Before every page is broadcast, a coin weighted by PullBW is tossed and
//! depending on the outcome, either the requested page at the head of queue
//! is broadcast or the regular broadcast program continues. Note that the
//! regular broadcast is not interrupted if the server queue is empty and
//! thus, PullBW is only an upper limit on the bandwidth used to satisfy
//! backchannel requests."

use bpp_sim::approx::exactly_zero;
use bpp_sim::rng::Rng;

/// What the next broadcast slot should carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotDecision {
    /// Serve the head of the pull queue.
    ServePull,
    /// Continue the periodic push program.
    ContinuePush,
}

/// The PullBW-weighted coin.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthMux {
    pull_bw: f64,
}

impl BandwidthMux {
    /// Create a MUX giving at most `pull_bw` (in `[0, 1]`) of the slots to
    /// pulled pages.
    pub fn new(pull_bw: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&pull_bw),
            "PullBW must be a fraction in [0,1], got {pull_bw}"
        );
        BandwidthMux { pull_bw }
    }

    /// The configured pull-bandwidth bound.
    pub fn pull_bw(&self) -> f64 {
        self.pull_bw
    }

    /// Replace the bound (used by the adaptive extension).
    pub fn set_pull_bw(&mut self, pull_bw: f64) {
        assert!((0.0..=1.0).contains(&pull_bw));
        self.pull_bw = pull_bw;
    }

    /// Decide the next slot. `queue_empty` short-circuits the coin: an empty
    /// queue always continues the push program.
    pub fn decide<R: Rng + ?Sized>(&self, queue_empty: bool, rng: &mut R) -> SlotDecision {
        if queue_empty || exactly_zero(self.pull_bw) {
            return SlotDecision::ContinuePush;
        }
        if self.pull_bw >= 1.0 || rng.random::<f64>() < self.pull_bw {
            SlotDecision::ServePull
        } else {
            SlotDecision::ContinuePush
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpp_sim::rng::Xoshiro256pp;

    #[test]
    fn empty_queue_always_pushes() {
        let mux = BandwidthMux::new(1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(mux.decide(true, &mut rng), SlotDecision::ContinuePush);
        }
    }

    #[test]
    fn zero_pull_bw_never_pulls() {
        let mux = BandwidthMux::new(0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(mux.decide(false, &mut rng), SlotDecision::ContinuePush);
        }
    }

    #[test]
    fn full_pull_bw_always_pulls_when_backlogged() {
        let mux = BandwidthMux::new(1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(mux.decide(false, &mut rng), SlotDecision::ServePull);
        }
    }

    #[test]
    fn coin_respects_the_bound_empirically() {
        let mux = BandwidthMux::new(0.3);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let n = 200_000;
        let pulls = (0..n)
            .filter(|_| mux.decide(false, &mut rng) == SlotDecision::ServePull)
            .count();
        let frac = pulls as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "pull fraction {frac}");
    }

    #[test]
    fn set_pull_bw_takes_effect() {
        let mut mux = BandwidthMux::new(0.0);
        mux.set_pull_bw(1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        assert_eq!(mux.decide(false, &mut rng), SlotDecision::ServePull);
    }

    #[test]
    #[should_panic(expected = "PullBW must be a fraction")]
    fn out_of_range_pull_bw_panics() {
        BandwidthMux::new(1.5);
    }
}
