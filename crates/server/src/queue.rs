//! The bounded, coalescing backchannel request queue.

use bpp_broadcast::PageId;
use bpp_json::{Json, JsonError};
use std::collections::{HashMap, VecDeque};

/// What happened to a submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// Queued as a new entry.
    Enqueued,
    /// A request for the page was already pending; this one piggybacks.
    Coalesced,
    /// The queue was full; the request is silently discarded.
    DroppedFull,
}

/// What to do with a *new* page request arriving at a full queue.
///
/// The paper's queue silently discards the newcomer ([`DropNewest`]);
/// the fault-model extension adds [`DropOldest`], which evicts the
/// longest-waiting entry to make room — trading head-of-line staleness for
/// admission of fresh demand. Either way somebody loses: the accounting in
/// [`QueueStats`] says who.
///
/// [`DropNewest`]: OverflowPolicy::DropNewest
/// [`DropOldest`]: OverflowPolicy::DropOldest
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Discard the arriving request (the paper's behavior).
    #[default]
    DropNewest,
    /// Evict the oldest queued entry (and all its coalesced waiters) to
    /// admit the arriving request.
    DropOldest,
}

impl bpp_json::ToJson for OverflowPolicy {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                OverflowPolicy::DropNewest => "drop_newest",
                OverflowPolicy::DropOldest => "drop_oldest",
            }
            .into(),
        )
    }
}

impl bpp_json::FromJson for OverflowPolicy {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("drop_newest") => Ok(OverflowPolicy::DropNewest),
            Some("drop_oldest") => Ok(OverflowPolicy::DropOldest),
            _ => Err(JsonError::new(format!("invalid overflow policy: {v:?}"))),
        }
    }
}

/// Service order of the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Discipline {
    /// First in, first out — the paper's discipline.
    #[default]
    Fifo,
    /// Serve the page with the most coalesced requests first (extension).
    /// Ties go to the older entry.
    MostRequested,
}

/// Counters matching the drop/coalesce accounting the paper reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests submitted in total.
    pub received: u64,
    /// Requests that created a new queue entry.
    pub enqueued: u64,
    /// Requests absorbed by an existing entry for the same page.
    pub coalesced: u64,
    /// Requests discarded because the queue was full.
    pub dropped_full: u64,
    /// Queued entries evicted by [`OverflowPolicy::DropOldest`] to admit a
    /// newer request (always 0 under the paper's `DropNewest` policy).
    pub dropped_evicted: u64,
    /// Entries served (broadcast in a pull slot).
    pub served: u64,
    /// Individual requests served: every pop counts the entry's coalesced
    /// waiters too (request grain, where `served` is entry grain). The
    /// conservation auditor works at this grain.
    pub served_requests: u64,
    /// Individual requests evicted under `DropOldest` (riders included;
    /// request-grain counterpart of `dropped_evicted`).
    pub evicted_requests: u64,
}

impl QueueStats {
    /// Fraction of received requests discarded at a full queue.
    pub fn drop_rate(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.dropped_full as f64 / self.received as f64
        }
    }

    /// Fraction of received requests that were *ignored* by the server —
    /// the paper's wider definition, counting both full-queue drops and
    /// coalesced duplicates ("a request is dropped if either the queue is
    /// already full or if there is a pre-existing queued request").
    pub fn ignore_rate(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            (self.dropped_full + self.coalesced) as f64 / self.received as f64
        }
    }
}

/// Bounded queue of distinct page requests.
#[derive(Debug, Clone)]
pub struct RequestQueue {
    capacity: usize,
    discipline: Discipline,
    // bpp-lint: allow(D13): config knob — restart preserves the configured policy
    overflow: OverflowPolicy,
    order: VecDeque<PageId>,
    /// page -> number of coalesced requests waiting on it (>= 1).
    pending: HashMap<PageId, u32>,
    /// page -> submission time of the entry, kept only when wait tracking
    /// is on. Pure keyed storage — never iterated — so hash order cannot
    /// leak into behavior.
    enqueue_at: Option<HashMap<PageId, f64>>,
    // bpp-lint: allow(D13): cumulative run accounting — the conservation ledger needs it across crashes
    stats: QueueStats,
}

impl RequestQueue {
    /// An empty FIFO queue holding at most `capacity` distinct pages.
    pub fn new(capacity: usize) -> Self {
        Self::with_discipline(capacity, Discipline::Fifo)
    }

    /// An empty queue with an explicit service discipline.
    pub fn with_discipline(capacity: usize, discipline: Discipline) -> Self {
        RequestQueue {
            capacity,
            discipline,
            overflow: OverflowPolicy::DropNewest,
            order: VecDeque::new(),
            pending: HashMap::new(),
            enqueue_at: None,
            stats: QueueStats::default(),
        }
    }

    /// Start remembering when each entry was enqueued so that
    /// [`RequestQueue::pop_wait`] can report queueing delays. Off by
    /// default: the untracked queue does zero extra work.
    pub fn track_waits(&mut self) {
        self.enqueue_at = Some(HashMap::new());
    }

    /// Change what happens when a new page arrives at a full queue.
    pub fn set_overflow(&mut self, overflow: OverflowPolicy) {
        self.overflow = overflow;
    }

    /// The configured overflow policy.
    pub fn overflow(&self) -> OverflowPolicy {
        self.overflow
    }

    /// Submit a pull request for `page`.
    pub fn submit(&mut self, page: PageId) -> SubmitOutcome {
        self.stats.received += 1;
        if let Some(count) = self.pending.get_mut(&page) {
            *count += 1;
            self.stats.coalesced += 1;
            return SubmitOutcome::Coalesced;
        }
        if self.order.len() >= self.capacity {
            match self.overflow {
                OverflowPolicy::DropOldest if !self.order.is_empty() => {
                    // bpp-lint: allow(D3): guarded by the at-capacity branch: a full queue has a front
                    let old = self.order.pop_front().expect("non-empty");
                    let riders = self.pending.remove(&old).unwrap_or(0);
                    if let Some(at) = &mut self.enqueue_at {
                        at.remove(&old);
                    }
                    self.stats.dropped_evicted += 1;
                    self.stats.evicted_requests += u64::from(riders);
                }
                _ => {
                    self.stats.dropped_full += 1;
                    return SubmitOutcome::DroppedFull;
                }
            }
        }
        self.pending.insert(page, 1);
        self.order.push_back(page);
        self.stats.enqueued += 1;
        SubmitOutcome::Enqueued
    }

    /// Submit a pull request for `page` at simulated time `now`, recording
    /// the enqueue time when wait tracking is on (see
    /// [`RequestQueue::track_waits`]). Identical to [`RequestQueue::submit`]
    /// when tracking is off.
    pub fn submit_at(&mut self, page: PageId, now: f64) -> SubmitOutcome {
        let outcome = self.submit(page);
        if outcome == SubmitOutcome::Enqueued {
            if let Some(at) = &mut self.enqueue_at {
                at.insert(page, now);
            }
        }
        outcome
    }

    /// Serve the next entry like [`RequestQueue::pop`], additionally
    /// reporting how long it waited in the queue (`now` minus its enqueue
    /// time). The wait is `None` when tracking is off or the entry predates
    /// [`RequestQueue::track_waits`].
    pub fn pop_wait(&mut self, now: f64) -> Option<(PageId, Option<f64>)> {
        let page = self.pop()?;
        let wait = self
            .enqueue_at
            .as_mut()
            .and_then(|at| at.remove(&page))
            .map(|t0| now - t0);
        Some((page, wait))
    }

    /// Serve the next entry according to the discipline. Returns the page to
    /// broadcast in the pull slot.
    pub fn pop(&mut self) -> Option<PageId> {
        let page = match self.discipline {
            Discipline::Fifo => self.order.pop_front()?,
            Discipline::MostRequested => {
                let (idx, _) = self
                    .order
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, p)| (self.pending[p], std::cmp::Reverse(i)))?;
                // bpp-lint: allow(D3): idx was just produced by position() over this very deque
                self.order.remove(idx).expect("index valid")
            }
        };
        let riders = self.pending.remove(&page).unwrap_or(0);
        self.stats.served += 1;
        self.stats.served_requests += u64::from(riders);
        Some(page)
    }

    /// Individual requests currently waiting, coalesced riders included
    /// (the `in_flight` term of the conservation ledger).
    pub fn pending_requests(&self) -> u64 {
        self.order.iter().map(|p| u64::from(self.pending[p])).sum()
    }

    /// Server crash: volatile state is lost. Discards every queued entry
    /// and returns the number of individual requests orphaned (riders
    /// included). The statistics survive — they are the *run's* ledger,
    /// not server memory.
    pub fn crash_drain(&mut self) -> u64 {
        let orphaned = self.pending_requests();
        self.order.clear();
        self.pending.clear();
        if let Some(at) = &mut self.enqueue_at {
            at.clear();
        }
        orphaned
    }

    /// True when a request for `page` is pending.
    pub fn is_pending(&self, page: PageId) -> bool {
        self.pending.contains_key(&page)
    }

    /// Number of coalesced requests waiting on `page` (0 if none).
    pub fn waiters(&self, page: PageId) -> u32 {
        self.pending.get(&page).copied().unwrap_or(0)
    }

    /// Distinct pages currently queued.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Maximum number of distinct queued pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &QueueStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PageId {
        PageId(i)
    }

    #[test]
    fn fifo_serves_in_arrival_order() {
        let mut q = RequestQueue::new(10);
        q.submit(p(3));
        q.submit(p(1));
        q.submit(p(2));
        assert_eq!(q.pop(), Some(p(3)));
        assert_eq!(q.pop(), Some(p(1)));
        assert_eq!(q.pop(), Some(p(2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn duplicate_requests_coalesce() {
        let mut q = RequestQueue::new(10);
        assert_eq!(q.submit(p(5)), SubmitOutcome::Enqueued);
        assert_eq!(q.submit(p(5)), SubmitOutcome::Coalesced);
        assert_eq!(q.len(), 1);
        assert_eq!(q.waiters(p(5)), 2);
        assert_eq!(q.stats().coalesced, 1);
    }

    #[test]
    fn full_queue_drops_new_pages_but_coalesces_known_ones() {
        let mut q = RequestQueue::new(2);
        q.submit(p(1));
        q.submit(p(2));
        assert_eq!(q.submit(p(3)), SubmitOutcome::DroppedFull);
        // Coalescing still works at capacity.
        assert_eq!(q.submit(p(1)), SubmitOutcome::Coalesced);
        assert_eq!(q.stats().dropped_full, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_clears_pending_so_page_can_requeue() {
        let mut q = RequestQueue::new(2);
        q.submit(p(7));
        assert!(q.is_pending(p(7)));
        assert_eq!(q.pop(), Some(p(7)));
        assert!(!q.is_pending(p(7)));
        assert_eq!(q.submit(p(7)), SubmitOutcome::Enqueued);
    }

    #[test]
    fn drop_and_ignore_rates() {
        let mut q = RequestQueue::new(1);
        q.submit(p(1)); // enqueued
        q.submit(p(1)); // coalesced
        q.submit(p(2)); // dropped
        q.submit(p(2)); // dropped
        let s = q.stats();
        assert_eq!(s.received, 4);
        assert!((s.drop_rate() - 0.5).abs() < 1e-12);
        assert!((s.ignore_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rates_are_zero_with_no_traffic() {
        let q = RequestQueue::new(5);
        assert_eq!(q.stats().drop_rate(), 0.0);
        assert_eq!(q.stats().ignore_rate(), 0.0);
    }

    #[test]
    fn most_requested_discipline_prefers_popular_pages() {
        let mut q = RequestQueue::with_discipline(10, Discipline::MostRequested);
        q.submit(p(1));
        q.submit(p(2));
        q.submit(p(2));
        q.submit(p(3));
        assert_eq!(q.pop(), Some(p(2)));
        // Tie between 1 and 3 -> older entry (1) first.
        assert_eq!(q.pop(), Some(p(1)));
        assert_eq!(q.pop(), Some(p(3)));
    }

    #[test]
    fn zero_capacity_queue_drops_everything() {
        let mut q = RequestQueue::new(0);
        assert_eq!(q.submit(p(1)), SubmitOutcome::DroppedFull);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn served_counter_tracks_pops() {
        let mut q = RequestQueue::new(5);
        q.submit(p(1));
        q.submit(p(2));
        q.pop();
        assert_eq!(q.stats().served, 1);
    }

    #[test]
    fn drop_oldest_evicts_head_to_admit_newcomer() {
        let mut q = RequestQueue::new(2);
        q.set_overflow(OverflowPolicy::DropOldest);
        q.submit(p(1));
        q.submit(p(2));
        assert_eq!(q.submit(p(3)), SubmitOutcome::Enqueued);
        assert_eq!(q.len(), 2);
        assert!(!q.is_pending(p(1)), "oldest entry should have been evicted");
        assert!(q.is_pending(p(3)));
        let s = q.stats();
        assert_eq!(s.dropped_evicted, 1);
        assert_eq!(s.dropped_full, 0);
        assert_eq!(q.pop(), Some(p(2)));
        assert_eq!(q.pop(), Some(p(3)));
    }

    #[test]
    fn drop_oldest_with_zero_capacity_still_drops_newcomer() {
        let mut q = RequestQueue::new(0);
        q.set_overflow(OverflowPolicy::DropOldest);
        assert_eq!(q.submit(p(1)), SubmitOutcome::DroppedFull);
        assert_eq!(q.stats().dropped_full, 1);
        assert_eq!(q.stats().dropped_evicted, 0);
    }

    #[test]
    fn drop_oldest_still_coalesces_at_capacity() {
        let mut q = RequestQueue::new(1);
        q.set_overflow(OverflowPolicy::DropOldest);
        q.submit(p(1));
        assert_eq!(q.submit(p(1)), SubmitOutcome::Coalesced);
        assert_eq!(q.stats().dropped_evicted, 0);
    }

    #[test]
    fn pop_wait_reports_queueing_delay_when_tracking() {
        let mut q = RequestQueue::new(5);
        q.track_waits();
        q.submit_at(p(1), 10.0);
        q.submit_at(p(2), 12.0);
        let (page, wait) = q.pop_wait(15.0).unwrap();
        assert_eq!(page, p(1));
        assert_eq!(wait, Some(5.0));
        let (page, wait) = q.pop_wait(15.0).unwrap();
        assert_eq!(page, p(2));
        assert_eq!(wait, Some(3.0));
    }

    #[test]
    fn pop_wait_without_tracking_gives_no_wait() {
        let mut q = RequestQueue::new(5);
        q.submit_at(p(1), 10.0);
        assert_eq!(q.pop_wait(15.0), Some((p(1), None)));
    }

    #[test]
    fn submit_at_matches_submit_outcomes() {
        let mut q = RequestQueue::new(1);
        q.track_waits();
        assert_eq!(q.submit_at(p(1), 0.0), SubmitOutcome::Enqueued);
        assert_eq!(q.submit_at(p(1), 1.0), SubmitOutcome::Coalesced);
        assert_eq!(q.submit_at(p(2), 2.0), SubmitOutcome::DroppedFull);
        // Coalesced arrivals keep the original enqueue time.
        assert_eq!(q.pop_wait(4.0), Some((p(1), Some(4.0))));
    }

    #[test]
    fn drop_oldest_eviction_clears_the_evicted_timestamp() {
        let mut q = RequestQueue::new(1);
        q.set_overflow(OverflowPolicy::DropOldest);
        q.track_waits();
        q.submit_at(p(1), 0.0);
        assert_eq!(q.submit_at(p(2), 5.0), SubmitOutcome::Enqueued);
        // p(1)'s stale timestamp must not survive; a later re-submission of
        // p(1) starts a fresh wait.
        q.pop_wait(6.0);
        q.submit_at(p(1), 6.0);
        assert_eq!(q.pop_wait(8.0), Some((p(1), Some(2.0))));
    }

    #[test]
    fn request_grain_counters_include_coalesced_riders() {
        let mut q = RequestQueue::new(5);
        q.submit(p(1));
        q.submit(p(1));
        q.submit(p(2));
        assert_eq!(q.pending_requests(), 3);
        q.pop();
        assert_eq!(q.stats().served_requests, 2);
        assert_eq!(q.pending_requests(), 1);
    }

    #[test]
    fn crash_drain_orphans_every_pending_request() {
        let mut q = RequestQueue::new(5);
        q.track_waits();
        q.submit_at(p(1), 0.0);
        q.submit_at(p(1), 1.0);
        q.submit_at(p(2), 2.0);
        assert_eq!(q.crash_drain(), 3);
        assert!(q.is_empty());
        assert!(!q.is_pending(p(1)));
        // Counters survive the crash; the queue is usable again.
        assert_eq!(q.stats().received, 3);
        assert_eq!(q.submit_at(p(1), 3.0), SubmitOutcome::Enqueued);
        assert_eq!(q.pop_wait(5.0), Some((p(1), Some(2.0))));
    }

    #[test]
    fn drop_oldest_eviction_counts_riders() {
        let mut q = RequestQueue::new(1);
        q.set_overflow(OverflowPolicy::DropOldest);
        q.submit(p(1));
        q.submit(p(1));
        q.submit(p(2));
        assert_eq!(q.stats().dropped_evicted, 1);
        assert_eq!(q.stats().evicted_requests, 2);
    }

    #[test]
    fn overflow_policy_json_round_trip() {
        for policy in [OverflowPolicy::DropNewest, OverflowPolicy::DropOldest] {
            let text = bpp_json::to_string(&policy);
            let back: OverflowPolicy = bpp_json::from_str(&text).unwrap();
            assert_eq!(policy, back);
        }
        assert!(bpp_json::from_str::<OverflowPolicy>("\"bogus\"").is_err());
    }
}
