//! Token-bucket admission control for the backchannel.
//!
//! After a server crash every blocked client's retry timer fires at
//! roughly the same time and the restart sees a thundering herd: a burst
//! of re-issued pulls that floods the (cold, empty) request queue and
//! starves the push schedule. The classic mitigation pair is client-side
//! reconnect jitter plus server-side admission control; this module is the
//! server half.
//!
//! The [`Admission`] layer is a standard token bucket: it refills at
//! `rate` tokens per broadcast unit up to a `burst` ceiling, and each
//! admitted request spends one token. A request arriving at an empty
//! bucket is *rejected with feedback* — unlike a silent queue drop, the
//! rejection carries a `retry_after` hint that the client folds into its
//! backoff, spreading the herd over time instead of letting it hammer a
//! cold server. On restart the bucket is deliberately reset to *empty*
//! ([`Admission::restart_cold`]), so the first `burst`-worth of reconnects
//! is paced at the refill rate rather than admitted at once.
//!
//! The bucket draws no randomness: given the same arrival times it makes
//! the same decisions, preserving bitwise reproducibility.

use bpp_json::{field, Json, JsonError, ToJson};

/// Token-bucket parameters for the backchannel admission layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Token refill rate in requests per broadcast unit. `0` disables the
    /// layer entirely (no bucket is constructed, every request passes).
    pub rate: f64,
    /// Bucket capacity: the largest burst admitted from a full bucket.
    pub burst: f64,
    /// Retry-after hint (broadcast units) returned with every rejection;
    /// clients take the max of this and their own backoff delay.
    pub retry_after: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::disabled()
    }
}

impl AdmissionConfig {
    /// The disabled layer: no bucket, no rejections, no JSON emitted.
    pub fn disabled() -> Self {
        AdmissionConfig {
            rate: 0.0,
            burst: 0.0,
            retry_after: 0.0,
        }
    }

    /// A reasonable default for crash experiments: admit one request per
    /// broadcast unit, bursts of up to 8, and ask rejected clients to come
    /// back after 32 units.
    pub fn standard() -> Self {
        AdmissionConfig {
            rate: 1.0,
            burst: 8.0,
            retry_after: 32.0,
        }
    }

    /// Whether the layer gates requests at all.
    pub fn enabled(&self) -> bool {
        self.rate > 0.0
    }

    /// Check the parameters, returning a human-readable description of the
    /// first problem found. A disabled config is always valid.
    pub fn validate(&self) -> Result<(), String> {
        let AdmissionConfig {
            rate,
            burst,
            retry_after,
        } = *self;
        if !rate.is_finite() || rate < 0.0 {
            return Err(format!(
                "admission rate must be finite and >= 0, got {rate}"
            ));
        }
        if !self.enabled() {
            return Ok(());
        }
        if !burst.is_finite() || burst < 1.0 {
            return Err(format!(
                "admission burst must be finite and >= 1 when enabled, got {burst}"
            ));
        }
        if !retry_after.is_finite() || retry_after < 0.0 {
            return Err(format!(
                "admission retry_after must be finite and >= 0, got {retry_after}"
            ));
        }
        Ok(())
    }
}

impl ToJson for AdmissionConfig {
    fn to_json(&self) -> Json {
        Json::object([
            ("rate", self.rate.to_json()),
            ("burst", self.burst.to_json()),
            ("retry_after", self.retry_after.to_json()),
        ])
    }
}

impl bpp_json::FromJson for AdmissionConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(AdmissionConfig {
            rate: field(v, "rate")?,
            burst: field(v, "burst")?,
            retry_after: field(v, "retry_after")?,
        })
    }
}

/// Admission accounting for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests that spent a token and went on to the queue.
    pub admitted: u64,
    /// Requests bounced with a retry-after hint.
    pub rejected: u64,
}

/// The runtime token bucket (see the module docs for the model).
#[derive(Debug, Clone)]
pub struct Admission {
    cfg: AdmissionConfig,
    tokens: f64,
    refilled_at: f64,
    // bpp-lint: allow(D13): cumulative run accounting — the conservation ledger needs it across crashes
    stats: AdmissionStats,
}

impl Admission {
    /// A bucket starting *full* at time zero (steady-state operation; the
    /// cold-restart path uses [`Admission::restart_cold`]).
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission {
            tokens: cfg.burst,
            cfg,
            refilled_at: 0.0,
            stats: AdmissionStats::default(),
        }
    }

    /// Decide one request arriving at `now`: `true` admits (one token
    /// spent), `false` rejects. Time must not run backwards between calls.
    pub fn admit(&mut self, now: f64) -> bool {
        let elapsed = (now - self.refilled_at).max(0.0);
        self.tokens = (self.tokens + elapsed * self.cfg.rate).min(self.cfg.burst);
        self.refilled_at = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.stats.admitted += 1;
            true
        } else {
            self.stats.rejected += 1;
            false
        }
    }

    /// Cold restart after a crash: the bucket comes back *empty*, so the
    /// reconnect herd is paced at the refill rate from the first request.
    pub fn restart_cold(&mut self, now: f64) {
        self.tokens = 0.0;
        self.refilled_at = now;
    }

    /// The retry-after hint attached to rejections.
    pub fn retry_after(&self) -> f64 {
        self.cfg.retry_after
    }

    /// Accumulated admission counters.
    pub fn stats(&self) -> &AdmissionStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdmissionConfig {
        AdmissionConfig {
            rate: 1.0,
            burst: 4.0,
            retry_after: 16.0,
        }
    }

    #[test]
    fn full_bucket_admits_a_burst_then_rejects() {
        let mut a = Admission::new(cfg());
        for _ in 0..4 {
            assert!(a.admit(0.0));
        }
        assert!(!a.admit(0.0), "fifth request at t=0 exceeds the burst");
        assert_eq!(a.stats().admitted, 4);
        assert_eq!(a.stats().rejected, 1);
    }

    #[test]
    fn tokens_refill_at_the_configured_rate() {
        let mut a = Admission::new(cfg());
        for _ in 0..4 {
            assert!(a.admit(0.0));
        }
        assert!(!a.admit(0.5), "half a token is not enough");
        assert!(a.admit(1.5), "1.5 units refill past one token");
        assert!(!a.admit(1.5));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut a = Admission::new(cfg());
        // A long quiet period must not bank more than `burst` tokens.
        for _ in 0..4 {
            assert!(a.admit(1000.0));
        }
        assert!(!a.admit(1000.0));
    }

    #[test]
    fn cold_restart_paces_the_herd() {
        let mut a = Admission::new(cfg());
        a.restart_cold(100.0);
        assert!(!a.admit(100.0), "the bucket restarts empty");
        assert!(a.admit(101.0), "one unit later one token has dripped in");
        assert!(!a.admit(101.0), "the herd is paced, not batched");
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let mut a = Admission::new(cfg());
            a.restart_cold(10.0);
            (0..40)
                .map(|i| a.admit(10.0 + 0.25 * i as f64))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn validate_flags_bad_parameters() {
        assert!(AdmissionConfig::disabled().validate().is_ok());
        assert!(AdmissionConfig::standard().validate().is_ok());
        let bad_rate = AdmissionConfig {
            rate: f64::NAN,
            ..AdmissionConfig::standard()
        };
        assert!(bad_rate.validate().unwrap_err().contains("rate"));
        let bad_burst = AdmissionConfig {
            burst: 0.5,
            ..AdmissionConfig::standard()
        };
        assert!(bad_burst.validate().unwrap_err().contains("burst"));
        let bad_hint = AdmissionConfig {
            retry_after: -1.0,
            ..AdmissionConfig::standard()
        };
        assert!(bad_hint.validate().unwrap_err().contains("retry_after"));
    }

    #[test]
    fn json_round_trip() {
        let c = AdmissionConfig::standard();
        let text = bpp_json::to_string(&c);
        let back: AdmissionConfig = bpp_json::from_str(&text).unwrap();
        assert_eq!(c, back);
    }
}
