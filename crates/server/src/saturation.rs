//! Pull-queue saturation detection and graceful degradation to push-only.
//!
//! Under heavy load the IPP backchannel queue saturates: pull slots cannot
//! drain requests as fast as they arrive, drops climb, and every pull slot
//! stolen from the periodic broadcast makes the *push* side slower for
//! everyone. The paper handles this statically (small `PullBW`, threshold
//! filter); a production server must react *online*. This module implements
//! the reactive half: watch smoothed queue occupancy, and while it sits
//! above a high-water mark, shed pull bandwidth (degrade IPP toward
//! pure push) until occupancy falls below a low-water mark.
//!
//! Two design points keep the control loop stable and deterministic:
//!
//! * **EWMA smoothing** ([`bpp_sim::Ewma`]) — a momentary burst that fills
//!   the queue for a few slots should not flap the multiplexer; only
//!   sustained pressure triggers degradation.
//! * **Hysteresis** — the recovery threshold (`off_occupancy`) sits well
//!   below the trigger (`on_occupancy`), so the server does not oscillate
//!   when occupancy hovers near the trigger point.
//!
//! The detector draws no randomness at all: given the same queue-length
//! trace it makes the same decisions, preserving bitwise reproducibility.

use bpp_json::{field, Json, JsonError, ToJson};
use bpp_sim::Ewma;

/// When and how hard to shed pull bandwidth under queue pressure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationPolicy {
    /// Smoothed occupancy (queue length / capacity) at or above which the
    /// server declares saturation. `0` disables the detector entirely.
    pub on_occupancy: f64,
    /// Smoothed occupancy at or below which a saturated server recovers.
    /// Must be strictly below `on_occupancy` (hysteresis band).
    pub off_occupancy: f64,
    /// Multiplier applied to the configured `PullBW` while saturated:
    /// `0` degrades all the way to pure push, `0.25` keeps a quarter of the
    /// pull bandwidth, etc.
    pub shed_to: f64,
    /// EWMA smoothing factor in `(0, 1]` for the occupancy signal (smaller
    /// = steadier, slower to react).
    pub smoothing: f64,
}

impl Default for SaturationPolicy {
    fn default() -> Self {
        SaturationPolicy::disabled()
    }
}

impl SaturationPolicy {
    /// The disabled policy: the detector is never constructed and the
    /// multiplexer keeps its configured `PullBW` forever.
    pub fn disabled() -> Self {
        SaturationPolicy {
            on_occupancy: 0.0,
            off_occupancy: 0.0,
            shed_to: 1.0,
            smoothing: 0.1,
        }
    }

    /// A reasonable default: degrade to pure push when smoothed occupancy
    /// crosses 90%, recover below 50%, smoothing factor 0.05.
    pub fn standard() -> Self {
        SaturationPolicy {
            on_occupancy: 0.9,
            off_occupancy: 0.5,
            shed_to: 0.0,
            smoothing: 0.05,
        }
    }

    /// Whether the detector should run at all.
    pub fn enabled(&self) -> bool {
        self.on_occupancy > 0.0
    }

    /// Check the parameters, returning a human-readable description of the
    /// first problem found. A disabled policy is always valid.
    pub fn validate(&self) -> Result<(), String> {
        if !self.enabled() {
            return Ok(());
        }
        if !self.on_occupancy.is_finite() || self.on_occupancy > 1.0 {
            return Err(format!(
                "saturation on_occupancy must be in (0,1], got {}",
                self.on_occupancy
            ));
        }
        if !self.off_occupancy.is_finite()
            || self.off_occupancy < 0.0
            || self.off_occupancy >= self.on_occupancy
        {
            return Err(format!(
                "saturation off_occupancy must be in [0, on_occupancy), got {} (on = {})",
                self.off_occupancy, self.on_occupancy
            ));
        }
        if !self.shed_to.is_finite() || !(0.0..=1.0).contains(&self.shed_to) {
            return Err(format!(
                "saturation shed_to must be in [0,1], got {}",
                self.shed_to
            ));
        }
        if !self.smoothing.is_finite() || self.smoothing <= 0.0 || self.smoothing > 1.0 {
            return Err(format!(
                "saturation smoothing must be in (0,1], got {}",
                self.smoothing
            ));
        }
        Ok(())
    }
}

impl ToJson for SaturationPolicy {
    fn to_json(&self) -> Json {
        Json::object([
            ("on_occupancy", self.on_occupancy.to_json()),
            ("off_occupancy", self.off_occupancy.to_json()),
            ("shed_to", self.shed_to.to_json()),
            ("smoothing", self.smoothing.to_json()),
        ])
    }
}

impl bpp_json::FromJson for SaturationPolicy {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SaturationPolicy {
            on_occupancy: field(v, "on_occupancy")?,
            off_occupancy: field(v, "off_occupancy")?,
            shed_to: field(v, "shed_to")?,
            smoothing: field(v, "smoothing")?,
        })
    }
}

/// Counters describing the degradation history of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaturationStats {
    /// Transitions from normal to saturated (pull bandwidth shed).
    pub degradations: u64,
    /// Transitions from saturated back to normal (bandwidth restored).
    pub recoveries: u64,
    /// Slots observed while in the saturated state.
    pub saturated_slots: u64,
}

/// The online occupancy monitor: feed it the queue length every slot,
/// multiply the configured `PullBW` by what it returns.
#[derive(Debug, Clone)]
pub struct SaturationDetector {
    policy: SaturationPolicy,
    occupancy: Ewma,
    saturated: bool,
    // bpp-lint: allow(D13): run-history counters — deliberately survive a crash
    stats: SaturationStats,
}

impl SaturationDetector {
    /// A detector in the normal (non-saturated) state.
    pub fn new(policy: SaturationPolicy) -> Self {
        SaturationDetector {
            occupancy: Ewma::new(policy.smoothing),
            policy,
            saturated: false,
            stats: SaturationStats::default(),
        }
    }

    /// Observe the queue state for one slot and return the pull-bandwidth
    /// multiplier to apply this slot (`1.0` normal, `shed_to` saturated).
    pub fn observe(&mut self, len: usize, capacity: usize) -> f64 {
        let occ = if capacity == 0 {
            0.0
        } else {
            len as f64 / capacity as f64
        };
        let smoothed = self.occupancy.record(occ);
        if !self.saturated && smoothed >= self.policy.on_occupancy {
            self.saturated = true;
            self.stats.degradations += 1;
        } else if self.saturated && smoothed <= self.policy.off_occupancy {
            self.saturated = false;
            self.stats.recoveries += 1;
        }
        if self.saturated {
            self.stats.saturated_slots += 1;
            self.policy.shed_to
        } else {
            1.0
        }
    }

    /// Server crash: the smoothed occupancy signal and the saturated flag
    /// are volatile state and do not survive a restart. The history
    /// counters do — they belong to the run's ledger, not server memory.
    pub fn crash_reset(&mut self) {
        self.occupancy = Ewma::new(self.policy.smoothing);
        self.saturated = false;
    }

    /// Whether the server is currently shedding pull bandwidth.
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// The smoothed occupancy signal (0 before any observation).
    pub fn occupancy(&self) -> f64 {
        self.occupancy.value()
    }

    /// Accumulated degradation counters.
    pub fn stats(&self) -> &SaturationStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_policy() -> SaturationPolicy {
        SaturationPolicy {
            on_occupancy: 0.8,
            off_occupancy: 0.3,
            shed_to: 0.0,
            smoothing: 1.0, // unsmoothed: the raw occupancy drives transitions
        }
    }

    #[test]
    fn degrades_at_high_water_and_recovers_at_low_water() {
        let mut d = SaturationDetector::new(quick_policy());
        assert_eq!(d.observe(5, 10), 1.0); // 0.5 — below trigger
        assert_eq!(d.observe(9, 10), 0.0); // 0.9 — saturated
        assert!(d.is_saturated());
        // Hysteresis: 0.5 is below `on` but above `off`; stay saturated.
        assert_eq!(d.observe(5, 10), 0.0);
        assert_eq!(d.observe(2, 10), 1.0); // 0.2 — recovered
        assert!(!d.is_saturated());
        let s = d.stats();
        assert_eq!(s.degradations, 1);
        assert_eq!(s.recoveries, 1);
        assert_eq!(s.saturated_slots, 2);
    }

    #[test]
    fn smoothing_absorbs_momentary_spikes() {
        let mut d = SaturationDetector::new(SaturationPolicy {
            smoothing: 0.1,
            ..quick_policy()
        });
        d.observe(0, 10);
        // One full-queue slot moves the EWMA only to ~0.1 — no flap.
        assert_eq!(d.observe(10, 10), 1.0);
        assert!(!d.is_saturated());
        // Sustained pressure eventually trips it.
        for _ in 0..200 {
            d.observe(10, 10);
        }
        assert!(d.is_saturated());
        assert_eq!(d.stats().degradations, 1);
    }

    #[test]
    fn partial_shedding_returns_multiplier() {
        let mut d = SaturationDetector::new(SaturationPolicy {
            shed_to: 0.25,
            ..quick_policy()
        });
        assert_eq!(d.observe(10, 10), 0.25);
    }

    #[test]
    fn zero_capacity_queue_never_saturates() {
        let mut d = SaturationDetector::new(quick_policy());
        for _ in 0..100 {
            assert_eq!(d.observe(0, 0), 1.0);
        }
        assert_eq!(d.stats().degradations, 0);
    }

    #[test]
    fn crash_reset_clears_signal_but_keeps_history() {
        let mut d = SaturationDetector::new(quick_policy());
        d.observe(9, 10);
        assert!(d.is_saturated());
        d.crash_reset();
        assert!(!d.is_saturated());
        assert_eq!(d.occupancy(), 0.0, "EWMA is volatile state");
        assert_eq!(d.stats().degradations, 1, "ledger survives the crash");
        // A cold detector re-degrades only under fresh pressure.
        assert_eq!(d.observe(2, 10), 1.0);
    }

    #[test]
    fn validate_enforces_hysteresis_band() {
        assert!(SaturationPolicy::standard().validate().is_ok());
        assert!(SaturationPolicy::disabled().validate().is_ok());
        let inverted = SaturationPolicy {
            on_occupancy: 0.5,
            off_occupancy: 0.6,
            ..SaturationPolicy::standard()
        };
        assert!(inverted.validate().unwrap_err().contains("off_occupancy"));
        let bad_shed = SaturationPolicy {
            shed_to: -0.1,
            ..SaturationPolicy::standard()
        };
        assert!(bad_shed.validate().unwrap_err().contains("shed_to"));
        let bad_smoothing = SaturationPolicy {
            smoothing: 0.0,
            ..SaturationPolicy::standard()
        };
        assert!(bad_smoothing.validate().unwrap_err().contains("smoothing"));
    }

    #[test]
    fn json_round_trip() {
        let policy = SaturationPolicy::standard();
        let text = bpp_json::to_string(&policy);
        let back: SaturationPolicy = bpp_json::from_str(&text).unwrap();
        assert_eq!(policy, back);
    }
}
