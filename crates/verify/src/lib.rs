//! # bpp-verify — static broadcast-program verifier
//!
//! The paper's response-time claims all rest on structural properties of
//! the generated broadcast program: every page present, equal per-page
//! spacing (the paper proves variance in inter-arrival spacing strictly
//! hurts expected wait), disk frequencies tracking access probabilities by
//! the square-root rule, and the push/pull split matching the configured
//! `PullBW`. The simulator exercises these only indirectly; this crate is
//! their *static* complement — exactly as bpp-lint's D12 is the static
//! complement of the chaos `ConservationLedger`.
//!
//! A [`Target`] bundles everything one verification subject needs: the
//! [`BroadcastProgram`], the assignment shape it was generated from, the
//! access weights and ideal cache contents, the bandwidth split, an
//! optional (1, m) index view and a (possibly single-channel)
//! [`MultiChannelProgram`]. [`verify_target`] runs rules V0–V6 (see
//! [`rules`]) over a target; [`verify_config`] builds the target from a
//! [`SystemConfig`] exactly as the simulator and the closed-form comparator
//! do; [`verify_grid`] sweeps every experiment-grid configuration
//! ([`bpp_core::experiments::verify_targets`]) into a schema-versioned
//! [`Report`] — the artifact `scripts/ci.sh` gates on.
//!
//! The verifier is itself verified by a mutation harness: the
//! `with_*` constructors on [`Target`] inject surgical corruptions (drop a
//! page, swap two slots, skew a disk frequency, shift an index offset) and
//! the test suite asserts each corruption is caught by exactly the intended
//! rule while clean programs raise nothing.

#![forbid(unsafe_code)]

pub mod rules;

use bpp_broadcast::assignment::identity_ranking;
use bpp_broadcast::{
    hot_access_sets, optimal_m, Assignment, BroadcastProgram, DiskSpec, IndexedProgram,
    IndexedSlot, MultiChannelProgram, PageId, Slot,
};
use bpp_core::analytic;
use bpp_core::config::{Algorithm, SystemConfig};
use bpp_json::{Json, ToJson};
use bpp_workload::Zipf;

/// Slots per index segment used when a target derives its (1, m) view.
pub const INDEX_SIZE: usize = 8;

/// One rule violation found in a target.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Label of the verified target (e.g. `fig7b/IPP-30-chop400`).
    pub target: String,
    /// Rule identifier, `V0`..`V6`.
    pub rule: &'static str,
    /// Human-readable statement of the violation.
    pub message: String,
}

impl ToJson for Finding {
    fn to_json(&self) -> Json {
        Json::object([
            ("target", self.target.to_json()),
            ("rule", self.rule.to_json()),
            ("message", self.message.to_json()),
        ])
    }
}

/// Schema-versioned verification report (schema version 1), bpp-lint style:
/// deterministic ordering, pretty JSON with a trailing newline as the
/// golden-file bytes, and a human rendering for terminals.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Number of targets verified.
    pub targets: usize,
    /// Every finding, sorted by (target, rule, message).
    pub findings: Vec<Finding>,
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::object([
            ("version", 1u64.to_json()),
            ("targets", (self.targets as u64).to_json()),
            ("findings", self.findings.to_json()),
        ])
    }
}

impl Report {
    /// True when no rule fired on any target.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Restore the canonical (target, rule, message) ordering.
    pub fn sort(&mut self) {
        self.findings.sort();
    }

    /// The pretty-printed JSON document (trailing newline included), the
    /// exact bytes the golden test pins.
    pub fn to_json_string(&self) -> String {
        let mut s = bpp_json::to_string_pretty(self);
        s.push('\n');
        s
    }

    /// Human-readable `target: rule: message` lines plus a per-rule count
    /// summary (rules with nothing to report are elided).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!("{}: {}: {}\n", f.target, f.rule, f.message));
        }
        for (rule, what) in rules::RULES {
            let n = self.findings.iter().filter(|f| f.rule == rule).count();
            if n > 0 {
                out.push_str(&format!("{rule} ({what}): {n}\n"));
            }
        }
        out.push_str(&format!(
            "verified {} target{}: {}\n",
            self.targets,
            if self.targets == 1 { "" } else { "s" },
            if self.is_clean() {
                "clean".to_string()
            } else {
                format!("{} finding(s)", self.findings.len())
            }
        ));
        out
    }
}

/// The (1, m) index data rule V3 audits, detached from [`IndexedProgram`]
/// so the mutation harness can corrupt the offset table alone.
#[derive(Debug, Clone)]
pub struct IndexView {
    /// The indexed cycle's slots in order.
    pub slots: Vec<IndexedSlot>,
    /// Declared starting offset of every index segment.
    pub starts: Vec<usize>,
    /// Declared length of each segment.
    pub index_size: usize,
}

impl From<&IndexedProgram> for IndexView {
    fn from(ip: &IndexedProgram) -> Self {
        IndexView {
            slots: ip.slots().to_vec(),
            starts: ip.index_starts().to_vec(),
            index_size: ip.index_size(),
        }
    }
}

/// Everything one verification subject carries: the program, the
/// assignment shape that generated it, the access model, the bandwidth
/// split, and the derived index / multi-channel views.
#[derive(Debug, Clone)]
pub struct Target {
    /// Display label used in findings.
    pub label: String,
    /// The program under verification.
    pub program: BroadcastProgram,
    /// Pages per disk, fastest first (the assignment's layout).
    pub disks: Vec<Vec<PageId>>,
    /// Relative disk frequencies, parallel to `disks`.
    pub rel_freqs: Vec<u32>,
    /// Pages chopped off the broadcast (pull-only).
    pub non_broadcast: Vec<PageId>,
    /// Per-page access weights (Zipf probabilities for config targets).
    pub weights: Vec<f64>,
    /// Ideally warmed cache contents — these pages are free hits.
    pub cached: Vec<PageId>,
    /// True when the configuration demands an empty program (Pure-Pull).
    pub expect_empty: bool,
    /// Effective pull bandwidth share in `[0, 1]`.
    pub pull_bw: f64,
    /// Derived (1, m) index view; `None` for empty programs.
    pub index: Option<IndexView>,
    /// Channel placement; `single(program)` unless a K-channel layout is
    /// under test.
    pub channels: MultiChannelProgram,
    /// Client access sets for the V6 conflict-freedom precheck.
    pub access_sets: Vec<Vec<PageId>>,
    /// External closed-form expected response to cross-check against
    /// (`analytic::push_response` for config targets; `None` for detached
    /// or mutated targets, where V5 compares its two internal derivations).
    pub closed_form: Option<f64>,
    /// When true (the default), V0 demands every database page appear in
    /// exactly one of `disks` / `non_broadcast`. A single-channel shard of
    /// a K-channel layout covers only its own pages and sets this false.
    pub require_total_coverage: bool,
}

impl Target {
    /// Build the target for a [`SystemConfig`] exactly as the simulator
    /// does: identity ranking, offset transform, chop (everything for
    /// Pure-Pull, whose program is empty), Zipf weights at Noise-0, and
    /// the ideal cache under the effective policy. The closed-form
    /// cross-check value is pinned to [`analytic::push_response`] for push
    /// algorithms.
    pub fn from_config(label: &str, cfg: &SystemConfig) -> Self {
        let ranking = identity_ranking(cfg.db_size);
        let spec = DiskSpec::new(cfg.disk_sizes.clone(), cfg.rel_freqs.clone());
        let mut a = if cfg.offset {
            Assignment::with_offset(&ranking, &spec, cfg.cache_size)
        } else {
            Assignment::from_ranking(&ranking, &spec)
        };
        let pure_pull = cfg.algorithm == Algorithm::PurePull;
        a.chop(if pure_pull { cfg.db_size } else { cfg.chop });
        let program = BroadcastProgram::generate(&a, cfg.db_size);
        let weights = Zipf::new(cfg.db_size, cfg.zipf_theta).probs().to_vec();
        let cached = analytic::ideal_cache(cfg, &program);
        let closed = (!pure_pull).then(|| analytic::push_response(cfg));
        let mut t = Self::assemble(
            label,
            &a,
            program,
            weights,
            cached,
            cfg.effective_pull_bw(),
            pure_pull,
            closed,
        );
        // K-channel configurations verify the placement the simulator
        // actually airs: the conflict-aware generator over the same access
        // sets, so V6 gates the real layout rather than the single-channel
        // reduction.
        if cfg.num_channels > 1 {
            t.channels =
                MultiChannelProgram::generate(&a, cfg.db_size, cfg.num_channels, &t.access_sets);
        }
        t
    }

    /// Build a detached target from an [`Assignment`]: the generator
    /// -verifier agreement entry point used by the property tests. No
    /// external closed form is attached (V5 cross-checks its two internal
    /// derivations).
    pub fn from_assignment(
        label: &str,
        assignment: &Assignment,
        db_size: usize,
        weights: Vec<f64>,
        cached: Vec<PageId>,
        pull_bw: f64,
        expect_empty: bool,
    ) -> Self {
        let program = BroadcastProgram::generate(assignment, db_size);
        Self::assemble(
            label,
            assignment,
            program,
            weights,
            cached,
            pull_bw,
            expect_empty,
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn assemble(
        label: &str,
        assignment: &Assignment,
        program: BroadcastProgram,
        weights: Vec<f64>,
        cached: Vec<PageId>,
        pull_bw: f64,
        expect_empty: bool,
        closed_form: Option<f64>,
    ) -> Self {
        let index = (program.major_cycle() > 0).then(|| {
            IndexView::from(&IndexedProgram::new(
                &program,
                INDEX_SIZE,
                optimal_m(program.major_cycle(), INDEX_SIZE),
            ))
        });
        let access_sets = default_access_sets(&program, &weights, &cached);
        let channels = MultiChannelProgram::single(program.clone());
        Target {
            label: label.to_string(),
            program,
            disks: assignment.disks().to_vec(),
            rel_freqs: assignment.rel_freqs().to_vec(),
            non_broadcast: assignment.non_broadcast().to_vec(),
            weights,
            cached,
            expect_empty,
            pull_bw,
            index,
            channels,
            access_sets,
            closed_form,
            require_total_coverage: true,
        }
    }

    /// Rebuild the derived pieces (occurrence index, index view, channel
    /// view) from a corrupted slot sequence, detaching the external closed
    /// form so V5 judges the corrupted schedule on its own terms.
    fn rebuilt(&self, slots: Vec<Slot>, suffix: &str) -> Self {
        let program = BroadcastProgram::from_slots(
            slots,
            self.program.disk_map().to_vec(),
            self.program.minor_cycle(),
            self.program.num_minor_cycles(),
            self.program.db_size(),
        );
        let index = self.index.as_ref().map(|v| {
            IndexView::from(&IndexedProgram::new(
                &program,
                v.index_size,
                v.starts.len().max(1),
            ))
        });
        let mut t = self.clone();
        t.label = format!("{}{suffix}", self.label);
        t.channels = MultiChannelProgram::single(program.clone());
        t.index = index;
        t.program = program;
        t.closed_form = None;
        t
    }

    /// Mutation: erase every occurrence of `page` (slots become padding).
    /// Caught by V0 (coverage + excess padding).
    pub fn with_dropped_page(&self, page: PageId) -> Self {
        let slots = self
            .program
            .slots()
            .iter()
            .map(|&s| {
                if s == Slot::Page(page) {
                    Slot::Empty
                } else {
                    s
                }
            })
            .collect();
        self.rebuilt(slots, &format!("+drop({page})"))
    }

    /// Mutation: swap the contents of slots `i` and `j`. When the slots
    /// carry different pages that each appear at least twice, this breaks
    /// equal spacing and is caught by V1.
    pub fn with_swapped_slots(&self, i: usize, j: usize) -> Self {
        let mut slots = self.program.slots().to_vec();
        slots.swap(i, j);
        self.rebuilt(slots, &format!("+swap({i},{j})"))
    }

    /// Mutation: multiply disk `disk`'s relative frequency by `factor`,
    /// breaking the square-root relationship. Caught by V2.
    pub fn with_skewed_freq(&self, disk: usize, factor: u32) -> Self {
        let mut t = self.clone();
        t.label = format!("{}+skew({disk}x{factor})", self.label);
        t.rel_freqs[disk] *= factor;
        t
    }

    /// Mutation: shift declared index segment `k` forward by `delta`
    /// slots without moving the segment itself. Caught by V3.
    ///
    /// # Panics
    ///
    /// Panics when the target has no index view.
    pub fn with_shifted_index_start(&self, k: usize, delta: usize) -> Self {
        let mut t = self.clone();
        t.label = format!("{}+shift({k}+{delta})", self.label);
        let v = t.index.as_mut().expect("target has an index view"); // bpp-lint: allow(D3): documented panic — mutation harness misuse, not a runtime path
        v.starts[k] += delta;
        t
    }
}

/// Default V6 access set: the hottest eight uncached broadcast pages (one
/// set), shared with the simulator's K-channel generator
/// ([`bpp_broadcast::hot_access_sets`]) so the verifier audits the exact
/// sets the placement was built to keep conflict-free.
fn default_access_sets(
    program: &BroadcastProgram,
    weights: &[f64],
    cached: &[PageId],
) -> Vec<Vec<PageId>> {
    hot_access_sets(program, weights, cached)
}

/// Run every rule (V0–V6) over one target.
pub fn verify_target(t: &Target) -> Vec<Finding> {
    let mut out = Vec::new();
    rules::v0_coverage(t, &mut out);
    rules::v1_spacing(t, &mut out);
    rules::v2_sqrt_rule(t, &mut out);
    rules::v3_index(t, &mut out);
    rules::v4_bandwidth(t, &mut out);
    rules::v5_analytic(t, &mut out);
    rules::v6_conflicts(t, &mut out);
    out
}

/// Verify the program a [`SystemConfig`] generates.
pub fn verify_config(label: &str, cfg: &SystemConfig) -> Vec<Finding> {
    verify_target(&Target::from_config(label, cfg))
}

/// Verify every experiment-grid configuration derived from `base`
/// ([`bpp_core::experiments::verify_targets`]) and collect the report.
pub fn verify_grid(base: &SystemConfig) -> Report {
    let mut report = Report::default();
    for (label, cfg) in bpp_core::experiments::verify_targets(base) {
        report.targets += 1;
        report.findings.extend(verify_config(&label, &cfg));
    }
    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_shape_is_schema_v1() {
        let mut r = Report {
            targets: 2,
            findings: vec![
                Finding {
                    target: "b".into(),
                    rule: "V1",
                    message: "m".into(),
                },
                Finding {
                    target: "a".into(),
                    rule: "V0",
                    message: "m".into(),
                },
            ],
        };
        r.sort();
        assert_eq!(r.findings[0].target, "a");
        let s = r.to_json_string();
        assert!(s.starts_with("{\n  \"version\": 1,"), "{s}");
        assert!(s.ends_with('\n'));
        assert!(s.contains("\"targets\": 2"));
        let human = r.render_human();
        assert!(human.contains("a: V0: m"));
        assert!(human.contains("verified 2 targets: 2 finding(s)"));
    }

    #[test]
    fn clean_report_renders_clean() {
        let r = Report {
            targets: 1,
            findings: Vec::new(),
        };
        assert!(r.is_clean());
        assert!(r.render_human().contains("verified 1 target: clean"));
    }

    #[test]
    fn small_config_target_is_clean_for_all_algorithms() {
        for algorithm in [Algorithm::PurePush, Algorithm::PurePull, Algorithm::Ipp] {
            let mut cfg = SystemConfig::small();
            cfg.algorithm = algorithm;
            if algorithm == Algorithm::Ipp {
                cfg.pull_bw = 0.3;
            }
            let findings = verify_config("small", &cfg);
            assert!(findings.is_empty(), "{algorithm:?}: {findings:?}");
        }
    }

    #[test]
    fn paper_default_target_is_clean() {
        let mut cfg = SystemConfig::paper_default();
        cfg.algorithm = Algorithm::Ipp;
        cfg.pull_bw = 0.3;
        cfg.thres_perc = 0.35;
        let findings = verify_config("paper", &cfg);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn small_grid_is_clean() {
        let report = verify_grid(&SystemConfig::small());
        assert!(report.targets > 20, "targets {}", report.targets);
        assert!(report.is_clean(), "{}", report.render_human());
    }
}
