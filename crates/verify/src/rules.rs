//! The V0–V6 rule implementations.
//!
//! Each rule re-derives what it checks from primary inputs (the raw slot
//! array, the assignment layout, the access weights) rather than trusting
//! the program's own derived state, so a corruption in either side is a
//! disagreement the rule can see. The mutation tests in
//! `tests/properties.rs` pin the *selectivity* of every rule: each of the
//! four canonical corruptions is caught by exactly its intended rule.

use crate::{Finding, Target};
use bpp_broadcast::{IndexedSlot, PageId, Slot};

/// Rule identifiers with one-line summaries, in order.
pub const RULES: [(&str, &str); 7] = [
    ("V0", "total page coverage and chop-remainder padding"),
    ("V1", "per-page spacing regularity"),
    ("V2", "square-root-rule disk frequency consistency"),
    ("V3", "index coherence"),
    ("V4", "bandwidth accounting"),
    ("V5", "analytic cross-check"),
    ("V6", "K-channel conflict freedom"),
];

/// Tolerated multiplicative slack either side of the square-root-rule
/// ideal frequency ratio. The paper's own configurations use small integer
/// frequency ratios (3:2:1) against ideals like 1.56 and 1.60, so the band
/// must admit coarse rounding; a factor-4 breach means the disk layout no
/// longer tracks access probabilities in any square-root sense.
pub const V2_SLACK: f64 = 4.0;

/// Relative tolerance for the V5 expected-wait comparisons. Both sides are
/// exact integer sums divided by the cycle length, so disagreement beyond
/// float rounding is a real defect.
pub const V5_REL_TOL: f64 = 1e-6;

fn finding(t: &Target, rule: &'static str, message: String) -> Finding {
    Finding {
        target: t.label.clone(),
        rule,
        message,
    }
}

fn lcm(a: u64, b: u64) -> u64 {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    a / gcd(a, b) * b
}

/// `(padding, major_cycle)` the generator must emit for this layout: a
/// live disk with `len` pages is split into `nc = max_chunks / freq`
/// chunks of `cs = ceil(len / nc)` slots, wasting `nc * cs - len` slots
/// per pass — and the disk makes `freq` full passes per major cycle, which
/// is `max_chunks` minor cycles of one chunk per disk. Re-derived here
/// from the assignment alone, independently of the generator.
fn expected_layout(disks: &[Vec<PageId>], freqs: &[u32]) -> (usize, usize) {
    let live: Vec<(usize, u64)> = disks
        .iter()
        .zip(freqs)
        .filter(|(d, _)| !d.is_empty())
        .map(|(d, &f)| (d.len(), u64::from(f)))
        .collect();
    if live.is_empty() {
        return (0, 0);
    }
    let max_chunks = live.iter().fold(1u64, |acc, &(_, f)| lcm(acc, f)) as usize;
    let minor: usize = live
        .iter()
        .map(|&(len, f)| len.div_ceil(max_chunks / f as usize))
        .sum();
    let padding = live
        .iter()
        .map(|&(len, f)| {
            let nc = max_chunks / f as usize;
            (nc * len.div_ceil(nc) - len) * f as usize
        })
        .sum();
    (padding, minor * max_chunks)
}

/// V0 — total page coverage. Every database page sits in exactly one place
/// (one disk or the chop list); every assigned page is actually on the
/// broadcast; every chopped page is off it; and the program's empty slots
/// are exactly the chop-remainder padding the layout demands — no dangling
/// holes beyond it.
pub fn v0_coverage(t: &Target, out: &mut Vec<Finding>) {
    let db = t.program.db_size();
    let mut appearances = vec![0usize; db];
    for disk in &t.disks {
        for p in disk {
            appearances[p.index()] += 1;
        }
    }
    for p in &t.non_broadcast {
        appearances[p.index()] += 1;
    }
    for (page, &n) in appearances.iter().enumerate() {
        let ok = if t.require_total_coverage {
            n == 1
        } else {
            n <= 1
        };
        if !ok {
            out.push(finding(
                t,
                "V0",
                format!(
                    "page p{page} appears {n} times across disks + chop list; \
                     every database page must be assigned exactly once"
                ),
            ));
        }
    }
    for (d, disk) in t.disks.iter().enumerate() {
        for &p in disk {
            if !t.program.contains(p) {
                out.push(finding(
                    t,
                    "V0",
                    format!("disk {d} assigns {p} but the program never broadcasts it"),
                ));
            }
        }
    }
    for &p in &t.non_broadcast {
        if t.program.contains(p) {
            out.push(finding(
                t,
                "V0",
                format!("{p} was chopped off the broadcast but still appears in the program"),
            ));
        }
    }
    // Padding is judged only when the declared layout and the program
    // agree on the cycle geometry — when they disagree, the declared
    // frequencies are not the broadcast frequencies, which is V2's finding.
    let (expected, declared_major) = expected_layout(&t.disks, &t.rel_freqs);
    if declared_major == t.program.major_cycle() {
        let actual = t
            .program
            .slots()
            .iter()
            .filter(|&&s| s == Slot::Empty)
            .count();
        if actual != expected {
            out.push(finding(
                t,
                "V0",
                format!(
                    "program carries {actual} empty slots but the chop remainder \
                     accounts for exactly {expected}"
                ),
            ));
        }
    }
}

/// V1 — spacing regularity. The paper proves that for a fixed per-page
/// bandwidth share, *equal* inter-instance spacing minimizes expected wait
/// (\[Acha95a\] §3); the generator achieves it exactly, because every chunk
/// occupies a fixed position within its minor cycle. Any page whose
/// circular inter-occurrence gaps are not all identical is a pessimization.
pub fn v1_spacing(t: &Target, out: &mut Vec<Finding>) {
    let m = t.program.major_cycle();
    if m == 0 {
        return;
    }
    // Occurrences re-derived from the raw slot array, independent of the
    // program's occurrence index (V4 cross-checks that index separately).
    let mut occ: Vec<Vec<usize>> = vec![Vec::new(); t.program.db_size()];
    for (i, s) in t.program.slots().iter().enumerate() {
        if let Slot::Page(p) = s {
            occ[p.index()].push(i);
        }
    }
    for (page, o) in occ.iter().enumerate() {
        if o.len() < 2 {
            continue; // a single occurrence has one circular gap: regular
        }
        let mut min_gap = usize::MAX;
        let mut max_gap = 0usize;
        for (i, &cur) in o.iter().enumerate() {
            let next = if i + 1 < o.len() { o[i + 1] } else { o[0] + m };
            let gap = next - cur;
            min_gap = min_gap.min(gap);
            max_gap = max_gap.max(gap);
        }
        if min_gap != max_gap {
            out.push(finding(
                t,
                "V1",
                format!(
                    "page p{page} is spaced irregularly: inter-instance gaps range \
                     {min_gap}..{max_gap} slots; unequal spacing strictly increases \
                     expected wait at fixed frequency"
                ),
            ));
        }
    }
}

/// V2 — square-root rule. Broadcast bandwidth is allocated optimally when
/// each item's frequency is proportional to the square root of its access
/// probability, so for consecutive disks the frequency ratio should track
/// `sqrt(mean weight ratio)` within [`V2_SLACK`]. Cached pages are masked
/// out (their broadcasts serve only cache misses). Also demands the
/// declared frequencies be non-increasing fastest-first.
pub fn v2_sqrt_rule(t: &Target, out: &mut Vec<Finding>) {
    if t.disks.len() != t.rel_freqs.len() {
        out.push(finding(
            t,
            "V2",
            format!(
                "assignment lists {} disks but {} relative frequencies",
                t.disks.len(),
                t.rel_freqs.len()
            ),
        ));
        return;
    }
    // The declared frequencies must first be the *actual* broadcast
    // frequencies: every page a disk carries that is on the air at all must
    // appear exactly `rel_freq` times per major cycle. Pages absent from
    // the broadcast entirely are V0's finding, not V2's.
    for (d, (disk, &f)) in t.disks.iter().zip(&t.rel_freqs).enumerate() {
        let off: Vec<&PageId> = disk
            .iter()
            .filter(|p| {
                let obs = t.program.frequency(**p);
                obs > 0 && obs != f as usize
            })
            .collect();
        if let Some(p) = off.first() {
            out.push(finding(
                t,
                "V2",
                format!(
                    "disk {d} declares relative frequency {f} but {} of its pages \
                     broadcast at another rate (e.g. {p} appears {} times per cycle)",
                    off.len(),
                    t.program.frequency(**p)
                ),
            ));
        }
    }
    let mut is_cached = vec![false; t.program.db_size()];
    for p in &t.cached {
        is_cached[p.index()] = true;
    }
    // Live disks with their cache-masked mean access weight.
    let live: Vec<(usize, f64, f64)> = t
        .disks
        .iter()
        .zip(&t.rel_freqs)
        .enumerate()
        .filter(|(_, (d, _))| !d.is_empty())
        .map(|(i, (d, &f))| {
            let mass: f64 = d
                .iter()
                .map(|p| {
                    if is_cached[p.index()] {
                        0.0
                    } else {
                        t.weights[p.index()]
                    }
                })
                .sum();
            (i, f64::from(f), mass / d.len() as f64)
        })
        .collect();
    for pair in live.windows(2) {
        let (fast, f_fast, w_fast) = pair[0];
        let (slow, f_slow, w_slow) = pair[1];
        if f_slow > f_fast {
            out.push(finding(
                t,
                "V2",
                format!(
                    "disk {slow} spins at frequency {f_slow} above faster-ranked \
                     disk {fast} at {f_fast}; frequencies must be non-increasing"
                ),
            ));
            continue;
        }
        if w_fast <= 0.0 || w_slow <= 0.0 {
            continue; // a fully cached or weightless disk pins no ratio
        }
        let ratio = f_fast / f_slow;
        let ideal = (w_fast / w_slow).sqrt();
        if ratio > ideal * V2_SLACK || ratio * V2_SLACK < ideal {
            out.push(finding(
                t,
                "V2",
                format!(
                    "disks {fast}/{slow} spin at frequency ratio {ratio:.2} but the \
                     square-root rule on their mean access weights wants {ideal:.2} \
                     (tolerated slack x{V2_SLACK})"
                ),
            ));
        }
    }
}

/// V3 — index coherence. Every declared index offset must begin a real
/// index segment of exactly `index_size` slots, segments must not overlap,
/// no index slot may float outside a declared segment, the data slots must
/// reconstruct the underlying program in order, and consecutive offsets
/// must sit within one data chunk of each other so a client never waits
/// more than `ceil(data/m) + index_size` slots for the next index.
pub fn v3_index(t: &Target, out: &mut Vec<Finding>) {
    let Some(v) = &t.index else { return };
    let total = v.slots.len();
    let sz = v.index_size;
    for pair in v.starts.windows(2) {
        if pair[1] < pair[0] + sz {
            out.push(finding(
                t,
                "V3",
                format!(
                    "index offsets {} and {} overlap or are out of order \
                     (segment length {sz})",
                    pair[0], pair[1]
                ),
            ));
        }
    }
    let mut covered = vec![false; total];
    for &s in &v.starts {
        if s + sz > total {
            out.push(finding(
                t,
                "V3",
                format!("index offset {s} + segment length {sz} runs past the cycle ({total})"),
            ));
            continue;
        }
        for (off, flag) in covered.iter_mut().enumerate().take(s + sz).skip(s) {
            *flag = true;
            if !matches!(v.slots[off], IndexedSlot::Index) {
                out.push(finding(
                    t,
                    "V3",
                    format!(
                        "declared index offset {s} does not resolve to an index \
                         segment: slot {off} carries data"
                    ),
                ));
                break;
            }
        }
    }
    for (i, s) in v.slots.iter().enumerate() {
        if matches!(s, IndexedSlot::Index) && !covered[i] {
            out.push(finding(
                t,
                "V3",
                format!("index slot {i} lies outside every declared segment"),
            ));
        }
    }
    let data: Vec<Slot> = v
        .slots
        .iter()
        .filter_map(|s| match s {
            IndexedSlot::Data(d) => Some(*d),
            IndexedSlot::Index => None,
        })
        .collect();
    if data != t.program.slots() {
        out.push(finding(
            t,
            "V3",
            format!(
                "stripping index slots yields {} data slots that do not reconstruct \
                 the {}-slot program in order",
                data.len(),
                t.program.major_cycle()
            ),
        ));
    }
    if !v.starts.is_empty() && !data.is_empty() {
        let chunk = data.len().div_ceil(v.starts.len());
        for (i, &cur) in v.starts.iter().enumerate() {
            let next = if i + 1 < v.starts.len() {
                v.starts[i + 1]
            } else {
                v.starts[0] + total
            };
            let gap = next - cur;
            if gap > chunk + sz {
                out.push(finding(
                    t,
                    "V3",
                    format!(
                        "index segments unevenly spread: {gap} slots separate offsets \
                         {cur} and {} but one data chunk plus a segment is {}",
                        next % total,
                        chunk + sz
                    ),
                ));
            }
        }
    }
}

/// V4 — bandwidth accounting. The occurrence index and the raw slot array
/// must agree on how many slots carry pages (two independently maintained
/// structures), the pull share must be a valid probability, and the
/// program's emptiness must match the algorithm's declared split: Pure-Pull
/// reserves the whole channel for pulls (empty program, `PullBW` 1), while
/// a push algorithm with assigned pages must actually emit them.
pub fn v4_bandwidth(t: &Target, out: &mut Vec<Finding>) {
    let m = t.program.major_cycle();
    let scan_pages = t
        .program
        .slots()
        .iter()
        .filter(|s| matches!(s, Slot::Page(_)))
        .count();
    let index_pages: usize = (0..t.program.db_size())
        .map(|i| t.program.frequency(PageId(i as u32)))
        .sum();
    if scan_pages != index_pages {
        out.push(finding(
            t,
            "V4",
            format!(
                "occurrence index accounts for {index_pages} page slots but the \
                 schedule carries {scan_pages}"
            ),
        ));
    }
    if !(0.0..=1.0).contains(&t.pull_bw) {
        out.push(finding(
            t,
            "V4",
            format!("pull bandwidth share {} lies outside [0, 1]", t.pull_bw),
        ));
    }
    let has_assigned = t.disks.iter().any(|d| !d.is_empty());
    if t.expect_empty {
        if m > 0 {
            out.push(finding(
                t,
                "V4",
                format!(
                    "Pure-Pull reserves the whole channel for pulls but the program \
                     still schedules {m} push slots"
                ),
            ));
        }
        if t.pull_bw < 1.0 {
            out.push(finding(
                t,
                "V4",
                format!(
                    "Pure-Pull must hand pulls the full bandwidth but PullBW is {}",
                    t.pull_bw
                ),
            ));
        }
    } else if has_assigned && m == 0 {
        out.push(finding(
            t,
            "V4",
            format!(
                "assignment places pages on disks but the program is empty — the \
                 configured push share {} is never used",
                1.0 - t.pull_bw
            ),
        ));
    }
}

/// V5 — analytic cross-check. The probability-weighted expected wait is
/// derived two independent ways from slot positions alone — a brute-force
/// average of `slots_until` over every cursor (the binary-search wraparound
/// path) and the per-gap closed form `sum g(g+1)/2 / M` — and, when the
/// target carries one, compared against the external
/// `analytic::push_response` value. Both internal sides are exact integer
/// sums, so they must agree to float rounding.
pub fn v5_analytic(t: &Target, out: &mut Vec<Finding>) {
    let m = t.program.major_cycle();
    let mut is_cached = vec![false; t.program.db_size()];
    for p in &t.cached {
        is_cached[p.index()] = true;
    }
    let mut brute = 0.0f64;
    let mut gap_form = 0.0f64;
    for (page, &cached) in is_cached.iter().enumerate() {
        if cached {
            continue;
        }
        let pid = PageId(page as u32);
        let Some(expect) = t.program.expected_slots(pid) else {
            continue; // pull-only page: no push wait on either side
        };
        let w = t.weights[page];
        gap_form += w * expect;
        let total: u64 = (0..m)
            .map(|c| t.program.slots_until_present(pid, c) as u64)
            .sum();
        brute += w * (total as f64 / m as f64);
    }
    let close = |a: f64, b: f64| {
        let scale = a.abs().max(b.abs());
        scale < 1e-12 || (a - b).abs() <= V5_REL_TOL * scale
    };
    if !close(brute, gap_form) {
        out.push(finding(
            t,
            "V5",
            format!(
                "slot-position brute force expects {brute:.6} slots of wait but the \
                 per-gap closed form expects {gap_form:.6}"
            ),
        ));
    }
    if let Some(external) = t.closed_form {
        if !close(brute, external) {
            out.push(finding(
                t,
                "V5",
                format!(
                    "schedule-derived expected wait {brute:.6} disagrees with \
                     analytic::push_response {external:.6}"
                ),
            ));
        }
    }
}

/// V6 — K-channel conflict freedom. No client access set may need two
/// different pages that fly in the same aligned slot on different channels
/// (a single-tuner client must miss one and wait a full extra cycle). On
/// the default single-channel layout this is vacuously clean; it is the
/// precheck for multi-channel layouts.
pub fn v6_conflicts(t: &Target, out: &mut Vec<Finding>) {
    for c in t.channels.conflicts(&t.access_sets) {
        let (ch_a, p_a) = c.first;
        let (ch_b, p_b) = c.second;
        out.push(finding(
            t,
            "V6",
            format!(
                "access set {} needs {p_a} (channel {ch_a}) and {p_b} (channel \
                 {ch_b}) which share aligned slot {}; a single-tuner client must \
                 miss one",
                c.set, c.slot
            ),
        ));
    }
}
