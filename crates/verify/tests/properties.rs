//! Generator–verifier agreement and mutation-detection tests.
//!
//! Two halves prove the verifier from opposite directions:
//!
//! * **Agreement** — seeded generator loops build random assignments
//!   (weights chosen as `rel_freq²` per page, so the square-root rule holds
//!   by construction) and assert `verify_target` raises nothing on any
//!   `BroadcastProgram::generate` output. The verifier must never cry wolf.
//! * **Mutation detection** — each canonical corruption (drop a page, swap
//!   two slots, skew a disk frequency, shift an index offset, cross-channel
//!   slot collision) must be caught by *exactly* its intended rule. The
//!   verifier must never bark up the wrong tree.

// bpp-lint: allow-file(D1): property cases derive per-case RNG streams from the case index
use bpp_broadcast::{
    assignment::identity_ranking, Assignment, BroadcastProgram, DiskSpec, MultiChannelProgram,
    PageId, Slot,
};
use bpp_core::config::{Algorithm, SystemConfig};
use bpp_sim::rng::{stream_rng, Rng};
use bpp_verify::{verify_target, Finding, Target};

const SEED: u64 = 0x5EED_B0DC;
const CASES: u64 = 96;

/// Generator: a small random multi-disk spec with non-increasing
/// frequencies (mirrors the paper's fastest-to-slowest ordering).
fn gen_spec<R: Rng + ?Sized>(rng: &mut R) -> DiskSpec {
    let ndisks = 1 + rng.random_range(0..4);
    let sizes: Vec<usize> = (0..ndisks).map(|_| 1 + rng.random_range(0..59)).collect();
    let mut freqs: Vec<u32> = (0..ndisks)
        .map(|_| 1 + rng.random_range(0..6) as u32)
        .collect();
    freqs.sort_unstable_by(|a, b| b.cmp(a));
    DiskSpec::new(sizes, freqs)
}

/// Per-page weights proportional to `rel_freq²` of the page's disk, so the
/// square-root rule `f ∝ sqrt(w)` holds exactly by construction.
fn sqrt_rule_weights(spec: &DiskSpec) -> Vec<f64> {
    let mut weights = Vec::with_capacity(spec.total_pages());
    for (d, &size) in spec.sizes.iter().enumerate() {
        let f = f64::from(spec.rel_freqs[d]);
        weights.extend(std::iter::repeat_n(f * f, size));
    }
    weights
}

/// A target over a freshly generated random assignment, optionally chopped.
fn gen_target<R: Rng + ?Sized>(rng: &mut R, label: &str, chop: bool) -> Target {
    let spec = gen_spec(rng);
    let n = spec.total_pages();
    let weights = sqrt_rule_weights(&spec);
    let mut a = Assignment::from_ranking(&identity_ranking(n), &spec);
    if chop {
        a.chop(rng.random_range(0..n + 1));
    }
    Target::from_assignment(label, &a, n, weights, Vec::new(), 0.3, false)
}

#[test]
fn every_generated_program_verifies_clean() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, case);
        let t = gen_target(&mut rng, &format!("fuzz-{case}"), false);
        let findings = verify_target(&t);
        assert!(findings.is_empty(), "case {case}: {findings:?}");
    }
}

#[test]
fn every_chopped_program_verifies_clean() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, 1000 + case);
        let t = gen_target(&mut rng, &format!("chop-{case}"), true);
        let findings = verify_target(&t);
        assert!(findings.is_empty(), "case {case}: {findings:?}");
    }
}

/// The small-system config target (simulator-identical construction path,
/// closed-form cross-check attached) used by the mutation suite.
fn small_target() -> Target {
    let mut cfg = SystemConfig::small();
    cfg.algorithm = Algorithm::Ipp;
    cfg.pull_bw = 0.3;
    let t = Target::from_config("small", &cfg);
    assert!(
        t.closed_form.is_some(),
        "config targets carry the analytic cross-check"
    );
    t
}

/// Assert `findings` is non-empty and every finding fired `rule` — the
/// mutation-selectivity contract: exactly one rule sees each corruption.
fn assert_only_rule(findings: &[Finding], rule: &str) {
    assert!(!findings.is_empty(), "mutation went undetected");
    for f in findings {
        assert_eq!(
            f.rule, rule,
            "expected only {rule} to fire, got {findings:?}"
        );
    }
}

#[test]
fn clean_small_target_raises_nothing() {
    let findings = verify_target(&small_target());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn dropped_page_is_caught_by_v0_alone() {
    let t = small_target();
    // An uncached broadcast page, so the drop is visible to the rules.
    let page = (0..t.program.db_size() as u32)
        .map(PageId)
        .find(|p| t.program.contains(*p) && !t.cached.contains(p))
        .expect("small config broadcasts uncached pages");
    let mutated = t.with_dropped_page(page);
    assert_only_rule(&verify_target(&mutated), "V0");
}

#[test]
fn swapped_slots_are_caught_by_v1_alone() {
    let t = small_target();
    // Two adjacent slots carrying different pages that each appear at
    // least twice: the swap leaves every count intact but breaks equal
    // spacing for both pages.
    let slots = t.program.slots();
    let i = (0..slots.len() - 1)
        .find(|&i| match (slots[i], slots[i + 1]) {
            (Slot::Page(a), Slot::Page(b)) => {
                a != b && t.program.frequency(a) >= 2 && t.program.frequency(b) >= 2
            }
            _ => false,
        })
        .expect("adjacent multi-occurrence pages exist");
    let mutated = t.with_swapped_slots(i, i + 1);
    assert_only_rule(&verify_target(&mutated), "V1");
}

#[test]
fn skewed_disk_frequency_is_caught_by_v2_alone() {
    let t = small_target();
    let mutated = t.with_skewed_freq(0, 8);
    assert_only_rule(&verify_target(&mutated), "V2");
}

#[test]
fn shifted_index_offset_is_caught_by_v3_alone() {
    let t = small_target();
    let starts = t
        .index
        .as_ref()
        .expect("small program is indexed")
        .starts
        .len();
    assert!(starts >= 2, "need a second segment to shift");
    let mutated = t.with_shifted_index_start(1, 3);
    assert_only_rule(&verify_target(&mutated), "V3");
}

/// A flat single-disk program broadcasting pages `lo..hi` of a `db`-page
/// database — one shard of a K-channel layout.
fn band_program(db: usize, lo: u32, hi: u32) -> BroadcastProgram {
    let pages: Vec<PageId> = (lo..hi).map(PageId).collect();
    let spec = DiskSpec::new(vec![pages.len()], vec![1]);
    BroadcastProgram::generate(&Assignment::from_ranking(&pages, &spec), db)
}

/// A two-channel target: channel 0 carries pages 0..5 (the target's own
/// assignment shard), channel 1 carries pages 5..10.
fn two_channel_target() -> Target {
    let db = 10;
    let pages0: Vec<PageId> = (0..5).map(PageId).collect();
    let spec = DiskSpec::new(vec![5], vec![1]);
    let a = Assignment::from_ranking(&pages0, &spec);
    let weights = vec![1.0; db];
    let mut t = Target::from_assignment("two-channel", &a, db, weights, Vec::new(), 0.3, false);
    // A channel shard covers only its own pages, not the whole database.
    t.require_total_coverage = false;
    t.channels =
        MultiChannelProgram::from_channels(vec![t.program.clone(), band_program(db, 5, 10)]);
    // One access set per channel: conflict-free.
    t.access_sets = vec![vec![PageId(0), PageId(1)], vec![PageId(5), PageId(6)]];
    t
}

#[test]
fn conflict_free_two_channel_layout_is_clean() {
    let findings = verify_target(&two_channel_target());
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn cross_channel_collision_is_caught_by_v6_alone() {
    let mut t = two_channel_target();
    // Both flat channels cycle in lockstep: page 2 (channel 0) and page 7
    // (channel 1) fly in the same aligned slot 2.
    t.access_sets = vec![vec![PageId(2), PageId(7)]];
    assert_only_rule(&verify_target(&t), "V6");
}

#[test]
fn k_channel_config_targets_verify_clean_for_every_grid_count() {
    // The conflict-aware generator must produce placements that pass the
    // full rule set (V6 included) by construction, at every channel count
    // the experiment grid sweeps.
    for k in [2usize, 4, 8] {
        let mut cfg = SystemConfig::small();
        cfg.algorithm = Algorithm::Ipp;
        cfg.pull_bw = 0.5;
        cfg.num_channels = k;
        let t = Target::from_config(&format!("small-ch{k}"), &cfg);
        assert_eq!(t.channels.num_channels(), k);
        // The simulator's hot access set rides along, so V6 audits the
        // exact sets the placement was built around.
        assert!(!t.access_sets.is_empty());
        let findings = verify_target(&t);
        assert!(findings.is_empty(), "ch{k}: {findings:?}");
    }
}

#[test]
#[should_panic(expected = "outside the")]
fn out_of_universe_access_set_page_panics_in_the_precheck() {
    // Silently skipping an out-of-universe page would let a malformed
    // access set pass V6 clean; the precheck must refuse it loudly instead.
    let t = two_channel_target();
    t.channels.conflicts(&[vec![PageId(0), PageId(10)]]);
}

#[test]
fn mutated_labels_identify_the_corruption() {
    let t = small_target();
    let page = PageId(0);
    assert!(t.with_dropped_page(page).label.contains("drop"));
    assert!(t.with_swapped_slots(0, 1).label.contains("swap"));
    assert!(t.with_skewed_freq(0, 2).label.contains("skew"));
    assert!(t.with_shifted_index_start(0, 1).label.contains("shift"));
}
