//! Retry state machine for pull requests over a lossy backchannel.
//!
//! The paper assumes the backchannel never drops a request; under the fault
//! model a request can vanish (random loss or a server brownout window), and
//! the Measured Client would then wait forever for a pull that was never
//! queued. The fix is the classic one: arm a timeout when the request is
//! sent, and on expiry resend with **capped exponential backoff plus
//! jitter**. When the retry budget is exhausted the client stops resending
//! and falls back to catching the page on the push schedule — the broadcast
//! is the reliability floor that a pure unicast system does not have.
//!
//! All delays are measured in broadcast units (the time to push one page),
//! like every other duration in the simulator. Jitter draws come from a
//! dedicated RNG stream owned by the caller, so enabling retries never
//! perturbs the workload/mux streams and disabled retries draw nothing.

use bpp_json::{field, Json, JsonError, ToJson};
use bpp_sim::rng::Rng;

/// Timeout/backoff parameters for pull-request retries.
///
/// The schedule for attempt `i` (0-based; attempt 0 is the timeout armed for
/// the *initial* request) is
///
/// ```text
/// delay(i) = min(base_timeout · backoff_factor^i, cap) · (1 + jitter · u)
/// ```
///
/// where `u ~ U[0,1)` is drawn only when `jitter > 0`, and `cap` is
/// `max_backoff` when positive, otherwise unbounded. A policy with
/// `base_timeout == 0` is *disabled*: no timers are armed and no RNG is
/// consumed, making the fault layer a strict no-op when unconfigured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Resend budget after the initial request (`0` = time out once, then
    /// fall back to the broadcast without ever resending).
    pub max_retries: u32,
    /// Timeout armed for the initial request, in broadcast units. `0`
    /// disables the whole state machine.
    pub base_timeout: f64,
    /// Multiplier applied to the timeout after each expiry (`>= 1`).
    pub backoff_factor: f64,
    /// Upper bound on the un-jittered delay; `0` means uncapped.
    pub max_backoff: f64,
    /// Jitter fraction in `[0, 1]`: each delay is stretched by a uniform
    /// factor in `[1, 1 + jitter)` to decorrelate resends.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::disabled()
    }
}

impl RetryPolicy {
    /// The disabled policy: no timeouts, no resends, no RNG draws.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_timeout: 0.0,
            backoff_factor: 2.0,
            max_backoff: 0.0,
            jitter: 0.0,
        }
    }

    /// A reasonable default for lossy-channel experiments: time out after
    /// 64 broadcast units, double up to a 1024-unit cap, retry four times,
    /// with 50% jitter.
    pub fn standard() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_timeout: 64.0,
            backoff_factor: 2.0,
            max_backoff: 1024.0,
            jitter: 0.5,
        }
    }

    /// Whether the state machine arms timers at all.
    pub fn enabled(&self) -> bool {
        self.base_timeout > 0.0
    }

    /// Check the parameters, returning a human-readable description of the
    /// first problem found (the core config layer folds this into its own
    /// error enum).
    pub fn validate(&self) -> Result<(), String> {
        if !self.base_timeout.is_finite() || self.base_timeout < 0.0 {
            return Err(format!(
                "retry base_timeout must be finite and >= 0, got {}",
                self.base_timeout
            ));
        }
        if !self.backoff_factor.is_finite() || self.backoff_factor < 1.0 {
            return Err(format!(
                "retry backoff_factor must be finite and >= 1, got {}",
                self.backoff_factor
            ));
        }
        if !self.max_backoff.is_finite() || self.max_backoff < 0.0 {
            return Err(format!(
                "retry max_backoff must be finite and >= 0, got {}",
                self.max_backoff
            ));
        }
        if !self.jitter.is_finite() || !(0.0..=1.0).contains(&self.jitter) {
            return Err(format!(
                "retry jitter must be in [0,1], got {}",
                self.jitter
            ));
        }
        // A run that arms five-digit retry budgets per request is a
        // misconfiguration, not an experiment: each retry costs at least
        // `base_timeout` simulated units, so 10k retries exceeds any
        // `max_sim_time` the protocol allows.
        if self.max_retries > 10_000 {
            return Err(format!(
                "retry max_retries must be <= 10000, got {}",
                self.max_retries
            ));
        }
        Ok(())
    }
}

impl ToJson for RetryPolicy {
    fn to_json(&self) -> Json {
        Json::object([
            ("max_retries", self.max_retries.to_json()),
            ("base_timeout", self.base_timeout.to_json()),
            ("backoff_factor", self.backoff_factor.to_json()),
            ("max_backoff", self.max_backoff.to_json()),
            ("jitter", self.jitter.to_json()),
        ])
    }
}

impl bpp_json::FromJson for RetryPolicy {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(RetryPolicy {
            max_retries: field(v, "max_retries")?,
            base_timeout: field(v, "base_timeout")?,
            backoff_factor: field(v, "backoff_factor")?,
            max_backoff: field(v, "max_backoff")?,
            jitter: field(v, "jitter")?,
        })
    }
}

/// Per-outstanding-request retry progress.
///
/// One lives in the simulation `World` for the Measured Client's single
/// outstanding pull request; `arm` it when a request is first sent, ask
/// [`RetryState::next_delay`] for each successive timeout, and drop it when
/// the page arrives.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetryState {
    attempt: u32,
}

impl RetryState {
    /// Fresh state for a newly sent request (attempt counter at zero).
    pub fn arm() -> Self {
        RetryState { attempt: 0 }
    }

    /// Number of `next_delay` calls answered so far (attempt 0 is the
    /// initial request's timeout; every later one is a resend).
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// The delay to the next timeout, or `None` when the budget is spent
    /// (or the policy is disabled) and the client should fall back to the
    /// broadcast.
    ///
    /// Yields exactly `max_retries + 1` delays for an enabled policy. The
    /// jitter variate is drawn only when `jitter > 0`, so zero-jitter
    /// schedules consume no randomness.
    pub fn next_delay<R: Rng>(&mut self, policy: &RetryPolicy, rng: &mut R) -> Option<f64> {
        if !policy.enabled() || self.attempt > policy.max_retries {
            return None;
        }
        let mut delay = policy.base_timeout * policy.backoff_factor.powi(self.attempt as i32);
        if policy.max_backoff > 0.0 {
            delay = delay.min(policy.max_backoff);
        }
        if policy.jitter > 0.0 {
            let u: f64 = rng.random();
            delay *= 1.0 + policy.jitter * u;
        }
        self.attempt += 1;
        Some(delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streams;
    use bpp_sim::rng::stream_rng;

    fn drain(policy: &RetryPolicy, seed: u64) -> Vec<f64> {
        let mut rng = stream_rng(seed, streams::RETRY);
        let mut st = RetryState::arm();
        let mut out = Vec::new();
        while let Some(d) = st.next_delay(policy, &mut rng) {
            out.push(d);
        }
        out
    }

    #[test]
    fn disabled_policy_never_arms() {
        let mut rng = stream_rng(1, streams::RETRY);
        let mut st = RetryState::arm();
        assert_eq!(st.next_delay(&RetryPolicy::disabled(), &mut rng), None);
        assert_eq!(st.attempts(), 0);
    }

    #[test]
    fn schedule_doubles_then_caps_without_jitter() {
        let policy = RetryPolicy {
            max_retries: 5,
            base_timeout: 10.0,
            backoff_factor: 2.0,
            max_backoff: 50.0,
            jitter: 0.0,
        };
        assert_eq!(drain(&policy, 42), vec![10.0, 20.0, 40.0, 50.0, 50.0, 50.0]);
    }

    #[test]
    fn yields_exactly_max_retries_plus_one_delays() {
        let policy = RetryPolicy {
            max_retries: 3,
            ..RetryPolicy::standard()
        };
        assert_eq!(drain(&policy, 9).len(), 4);
    }

    #[test]
    fn zero_max_backoff_means_uncapped() {
        let policy = RetryPolicy {
            max_retries: 3,
            base_timeout: 1.0,
            backoff_factor: 10.0,
            max_backoff: 0.0,
            jitter: 0.0,
        };
        assert_eq!(drain(&policy, 3), vec![1.0, 10.0, 100.0, 1000.0]);
    }

    #[test]
    fn jitter_stays_within_bounds_and_is_deterministic() {
        let policy = RetryPolicy {
            max_retries: 20,
            base_timeout: 8.0,
            backoff_factor: 1.5,
            max_backoff: 100.0,
            jitter: 0.25,
        };
        let delays = drain(&policy, 1234);
        assert_eq!(delays.len(), 21);
        for (i, &d) in delays.iter().enumerate() {
            let base = (8.0 * 1.5f64.powi(i as i32)).min(100.0);
            assert!(d >= base, "attempt {i}: {d} < un-jittered {base}");
            assert!(d < base * 1.25, "attempt {i}: {d} >= jitter ceiling");
        }
        // Same stream, same schedule — bitwise.
        assert_eq!(delays, drain(&policy, 1234));
        // A different seed moves the jitter.
        assert_ne!(delays, drain(&policy, 1235));
    }

    #[test]
    fn zero_jitter_draws_no_randomness() {
        let policy = RetryPolicy {
            max_retries: 2,
            base_timeout: 5.0,
            backoff_factor: 2.0,
            max_backoff: 0.0,
            jitter: 0.0,
        };
        let mut rng = stream_rng(77, streams::RETRY);
        let before = rng.next_u64();
        let mut rng = stream_rng(77, streams::RETRY);
        let mut st = RetryState::arm();
        while st.next_delay(&policy, &mut rng).is_some() {}
        assert_eq!(rng.next_u64(), before, "schedule consumed RNG variates");
    }

    #[test]
    fn validate_flags_bad_parameters() {
        assert!(RetryPolicy::standard().validate().is_ok());
        assert!(RetryPolicy::disabled().validate().is_ok());
        let bad_factor = RetryPolicy {
            backoff_factor: 0.5,
            ..RetryPolicy::standard()
        };
        assert!(bad_factor
            .validate()
            .unwrap_err()
            .contains("backoff_factor"));
        let bad_jitter = RetryPolicy {
            jitter: 1.5,
            ..RetryPolicy::standard()
        };
        assert!(bad_jitter.validate().unwrap_err().contains("jitter"));
        let bad_timeout = RetryPolicy {
            base_timeout: f64::NAN,
            ..RetryPolicy::standard()
        };
        assert!(bad_timeout.validate().unwrap_err().contains("base_timeout"));
        let bad_budget = RetryPolicy {
            max_retries: 10_001,
            ..RetryPolicy::standard()
        };
        assert!(bad_budget.validate().unwrap_err().contains("max_retries"));
        let max_budget = RetryPolicy {
            max_retries: 10_000,
            ..RetryPolicy::standard()
        };
        assert!(max_budget.validate().is_ok());
    }

    #[test]
    fn json_round_trip() {
        let policy = RetryPolicy::standard();
        let text = bpp_json::to_string(&policy);
        let back: RetryPolicy = bpp_json::from_str(&text).unwrap();
        assert_eq!(policy, back);
    }
}
