//! The client-side threshold filter.
//!
//! "The client sends a pull request for page p only if the number of slots
//! before p is scheduled to appear in the periodic broadcast is greater
//! than the threshold parameter... expressed as a percentage of the major
//! cycle length."
//!
//! Pages that are not on the push schedule at all ("chopped" pages) have no
//! scheduled appearance and always pass the filter — with a restricted push
//! schedule, "all non-broadcast pages pass the threshold filter and the
//! effect is to reserve more of the backchannel capability for those pages".

use bpp_broadcast::{BroadcastProgram, PageId};

/// Threshold filter with a precomputed slot bound.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdFilter {
    thres_slots: usize,
}

impl ThresholdFilter {
    /// Build from `thres_perc` (fraction of the major cycle, in `[0, 1]`).
    ///
    /// With `thres_perc = 0` every miss is requested; with `thres_perc = 1`
    /// (and the whole database broadcast) no page can be farther away than
    /// a full cycle, so nothing is requested.
    pub fn from_percentage(thres_perc: f64, major_cycle: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&thres_perc),
            "ThresPerc must be in [0,1], got {thres_perc}"
        );
        ThresholdFilter {
            thres_slots: (thres_perc * major_cycle as f64).round() as usize,
        }
    }

    /// A filter that passes everything (ThresPerc = 0, or Pure-Pull where
    /// thresholds are not meaningful).
    pub fn pass_all() -> Self {
        ThresholdFilter { thres_slots: 0 }
    }

    /// The bound in schedule slots.
    pub fn slots(&self) -> usize {
        self.thres_slots
    }

    /// Should a miss on `page` be requested over the backchannel, given the
    /// program and the server's current schedule position?
    pub fn should_request(&self, program: &BroadcastProgram, page: PageId, cursor: usize) -> bool {
        match program.slots_until(page, cursor) {
            None => true, // not on the broadcast: the backchannel is the only way
            Some(dist) => dist > self.thres_slots,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpp_broadcast::{assignment::identity_ranking, Assignment, DiskSpec};

    fn program() -> BroadcastProgram {
        // Fig. 1 layout: a b d a c e a b f a c g (major cycle 12).
        let spec = DiskSpec::new(vec![1, 2, 4], vec![4, 2, 1]);
        let a = Assignment::from_ranking(&identity_ranking(7), &spec);
        BroadcastProgram::generate(&a, 7)
    }

    #[test]
    fn zero_threshold_requests_everything() {
        let p = program();
        let f = ThresholdFilter::from_percentage(0.0, p.major_cycle());
        for i in 0..7 {
            assert!(f.should_request(&p, PageId(i), 0));
        }
    }

    #[test]
    fn full_threshold_requests_nothing_broadcast() {
        let p = program();
        let f = ThresholdFilter::from_percentage(1.0, p.major_cycle());
        for i in 0..7 {
            for cursor in 0..12 {
                assert!(!f.should_request(&p, PageId(i), cursor));
            }
        }
    }

    #[test]
    fn quarter_threshold_filters_near_pages() {
        let p = program();
        // Major cycle 12, ThresPerc 25% -> 3 slots.
        let f = ThresholdFilter::from_percentage(0.25, p.major_cycle());
        assert_eq!(f.slots(), 3);
        // At cursor 0: a is 1 slot away (<=3, filtered), g is 12 away.
        assert!(!f.should_request(&p, PageId(0), 0));
        assert!(f.should_request(&p, PageId(6), 0));
        // e sits at slot 5: distance 6 from cursor 0 -> requested.
        assert!(f.should_request(&p, PageId(4), 0));
        // From cursor 5 e is 1 slot away -> filtered.
        assert!(!f.should_request(&p, PageId(4), 5));
    }

    #[test]
    fn chopped_pages_always_pass() {
        let spec = DiskSpec::new(vec![2, 2], vec![2, 1]);
        let mut a = Assignment::from_ranking(&identity_ranking(4), &spec);
        a.chop(2);
        let p = BroadcastProgram::generate(&a, 4);
        let f = ThresholdFilter::from_percentage(1.0, p.major_cycle());
        assert!(f.should_request(&p, PageId(3), 0));
        assert!(!f.should_request(&p, PageId(0), 0));
    }

    #[test]
    fn pass_all_is_zero_slots() {
        let f = ThresholdFilter::pass_all();
        assert_eq!(f.slots(), 0);
    }
}
