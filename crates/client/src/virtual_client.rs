//! The Virtual Client — the open-loop aggregate of "all other clients".
//!
//! A single simulated process stands in for an arbitrarily large population:
//! accesses arrive with exponential inter-arrival times of mean
//! `MC_ThinkTime / ThinkTimeRatio`, so a higher `ThinkTimeRatio` models a
//! proportionally larger (or busier) population.
//!
//! Per access, a coin weighted by `SteadyStatePerc` decides which kind of
//! client issued it:
//!
//! * **steady-state** — its cache is fully warmed with the highest-valued
//!   pages, so the access is filtered through a *static* ideal cache;
//! * **warm-up** — "a client's cache is relatively empty, therefore we
//!   assume that every access will be a miss".
//!
//! The VC deliberately does not block on responses: it models an arrival
//! process, not an individual, and its request rate must not be damped by
//! any single page's latency (the paper's saturation numbers — e.g. 68.8%
//! of requests dropped — only arise in an open-loop overload regime).

use bpp_broadcast::PageId;
use bpp_sim::rng::Rng;
use bpp_workload::{AccessPattern, ThinkTime};

/// Outcome of one Virtual-Client access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcAccess {
    /// Absorbed by the (static) steady-state cache.
    CacheHit,
    /// A miss that reaches the threshold filter / backchannel.
    Miss(PageId),
}

/// The open-loop population model.
#[derive(Debug, Clone)]
pub struct VirtualClient {
    pattern: AccessPattern,
    steady_cached: Vec<bool>,
    steady_state_perc: f64,
    think: ThinkTime,
    accesses: u64,
    steady_hits: u64,
}

impl VirtualClient {
    /// Build the VC.
    ///
    /// * `pattern` — the population access pattern (identity Zipf: the
    ///   broadcast program is generated from it);
    /// * `steady_items` — the ideal cache content of a warmed-up client
    ///   (top `CacheSize` by PIX under push/IPP, by P under Pure-Pull);
    /// * `steady_state_perc` — fraction of the population in steady state;
    /// * `mean_interarrival` — `MC_ThinkTime / ThinkTimeRatio`.
    pub fn new(
        pattern: AccessPattern,
        steady_items: &[usize],
        steady_state_perc: f64,
        mean_interarrival: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&steady_state_perc),
            "SteadyStatePerc must be in [0,1]"
        );
        assert!(
            mean_interarrival > 0.0,
            "inter-arrival mean must be positive"
        );
        let mut steady_cached = vec![false; pattern.len()];
        for &i in steady_items {
            steady_cached[i] = true;
        }
        VirtualClient {
            pattern,
            steady_cached,
            steady_state_perc,
            think: ThinkTime::Exponential {
                mean: mean_interarrival,
            },
            accesses: 0,
            steady_hits: 0,
        }
    }

    /// Draw the time until the next VC access.
    pub fn next_interarrival<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.think.sample(rng)
    }

    /// Generate one access.
    pub fn access<R: Rng + ?Sized>(&mut self, rng: &mut R) -> VcAccess {
        self.accesses += 1;
        let item = self.pattern.sample(rng);
        let steady = self.steady_state_perc > 0.0
            && (self.steady_state_perc >= 1.0 || rng.random::<f64>() < self.steady_state_perc);
        if steady && self.steady_cached[item] {
            self.steady_hits += 1;
            VcAccess::CacheHit
        } else {
            VcAccess::Miss(PageId(item as u32))
        }
    }

    /// Total accesses generated.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses absorbed by the steady-state cache.
    pub fn steady_hits(&self) -> u64 {
        self.steady_hits
    }

    /// The population pattern.
    pub fn pattern(&self) -> &AccessPattern {
        &self.pattern
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpp_sim::rng::Xoshiro256pp;
    use bpp_workload::Zipf;

    fn vc(ssp: f64, cached: &[usize]) -> VirtualClient {
        let z = Zipf::new(100, 0.95);
        VirtualClient::new(AccessPattern::population(&z), cached, ssp, 0.5)
    }

    #[test]
    fn warmup_population_never_hits() {
        let mut v = vc(0.0, &(0..50).collect::<Vec<_>>());
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(matches!(v.access(&mut rng), VcAccess::Miss(_)));
        }
        assert_eq!(v.steady_hits(), 0);
    }

    #[test]
    fn fully_steady_population_hits_cached_pages() {
        let cached: Vec<usize> = (0..100).collect();
        let mut v = vc(1.0, &cached);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for _ in 0..1000 {
            assert_eq!(v.access(&mut rng), VcAccess::CacheHit);
        }
    }

    #[test]
    fn steady_fraction_controls_hit_share() {
        // Cache the whole database: hit rate == steady-state fraction.
        let cached: Vec<usize> = (0..100).collect();
        let mut v = vc(0.95, &cached);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let n = 100_000;
        for _ in 0..n {
            v.access(&mut rng);
        }
        let rate = v.steady_hits() as f64 / f64::from(n);
        assert!((rate - 0.95).abs() < 0.01, "hit rate {rate}");
    }

    #[test]
    fn misses_name_uncached_or_warmup_pages() {
        let mut v = vc(1.0, &[0, 1, 2]);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        for _ in 0..2000 {
            if let VcAccess::Miss(p) = v.access(&mut rng) {
                assert!(p.index() >= 3, "steady VC missed a cached page");
            }
        }
    }

    #[test]
    fn interarrival_mean_is_configured() {
        let v = vc(0.5, &[]);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| v.next_interarrival(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
