//! Warm-up progress tracking (the metric of Figure 4).
//!
//! A client joining the broadcast starts with an empty cache. The warm-up
//! experiment asks: how long until the cache holds 10%, 20%, ..., 95% of the
//! `CacheSize` *highest-valued* pages? The tracker is told the target set up
//! front and observes cache insertions/evictions.

use bpp_sim::Time;

/// Tracks when the cache first contained each fraction of its ideal content.
#[derive(Debug, Clone)]
pub struct WarmupTracker {
    is_target: Vec<bool>,
    target_size: usize,
    in_cache: usize,
    /// milestones[i] = first time `fractions[i]` of the target was cached.
    fractions: Vec<f64>,
    reached_at: Vec<Option<Time>>,
}

impl WarmupTracker {
    /// Track the given target items (the ideal cache content) over a
    /// universe of `universe` items, reporting the paper's milestones
    /// (10%..90% in steps of 10, then 95%).
    pub fn new(universe: usize, target: &[usize]) -> Self {
        Self::with_fractions(
            universe,
            target,
            &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95],
        )
    }

    /// Track custom milestone fractions (each in `(0, 1]`, ascending).
    pub fn with_fractions(universe: usize, target: &[usize], fractions: &[f64]) -> Self {
        assert!(
            fractions.windows(2).all(|w| w[0] < w[1]),
            "fractions must be ascending"
        );
        assert!(
            fractions.iter().all(|&f| f > 0.0 && f <= 1.0),
            "fractions must be in (0,1]"
        );
        let mut is_target = vec![false; universe];
        for &t in target {
            is_target[t] = true;
        }
        WarmupTracker {
            is_target,
            target_size: target.len(),
            in_cache: 0,
            fractions: fractions.to_vec(),
            reached_at: vec![None; fractions.len()],
        }
    }

    /// Observe an insertion into the cache at `now`.
    pub fn on_insert(&mut self, now: Time, item: usize) {
        if self.is_target[item] {
            self.in_cache += 1;
            let frac = self.in_cache as f64 / self.target_size.max(1) as f64;
            for (i, &f) in self.fractions.iter().enumerate() {
                if self.reached_at[i].is_none() && frac >= f {
                    self.reached_at[i] = Some(now);
                }
            }
        }
    }

    /// Observe an eviction from the cache. Milestones already reached stay
    /// reached (the paper measures first-hit times).
    pub fn on_evict(&mut self, item: usize) {
        if self.is_target[item] {
            self.in_cache -= 1;
        }
    }

    /// Current fraction of the target set in the cache.
    pub fn progress(&self) -> f64 {
        if self.target_size == 0 {
            1.0
        } else {
            self.in_cache as f64 / self.target_size as f64
        }
    }

    /// The milestone fractions being tracked.
    pub fn fractions(&self) -> &[f64] {
        &self.fractions
    }

    /// First-reach time per milestone (`None` = not yet reached).
    pub fn milestones(&self) -> &[Option<Time>] {
        &self.reached_at
    }

    /// True when every milestone has been reached.
    pub fn complete(&self) -> bool {
        self.reached_at.iter().all(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn milestones_fire_in_order() {
        let target: Vec<usize> = (0..10).collect();
        let mut w = WarmupTracker::with_fractions(20, &target, &[0.5, 1.0]);
        for i in 0..4 {
            w.on_insert(i as f64, i);
        }
        assert_eq!(w.milestones(), &[None, None]);
        w.on_insert(4.0, 4); // 5/10 = 50%
        assert_eq!(w.milestones()[0], Some(4.0));
        for i in 5..10 {
            w.on_insert(i as f64, i);
        }
        assert_eq!(w.milestones()[1], Some(9.0));
        assert!(w.complete());
    }

    #[test]
    fn non_target_items_are_ignored() {
        let mut w = WarmupTracker::with_fractions(10, &[0, 1], &[1.0]);
        w.on_insert(1.0, 5);
        w.on_insert(2.0, 7);
        assert_eq!(w.progress(), 0.0);
        w.on_insert(3.0, 0);
        w.on_insert(4.0, 1);
        assert_eq!(w.milestones()[0], Some(4.0));
    }

    #[test]
    fn eviction_reduces_progress_but_keeps_milestones() {
        let mut w = WarmupTracker::with_fractions(10, &[0, 1], &[0.5]);
        w.on_insert(1.0, 0);
        assert_eq!(w.milestones()[0], Some(1.0));
        w.on_evict(0);
        assert_eq!(w.progress(), 0.0);
        assert_eq!(w.milestones()[0], Some(1.0));
        // Re-inserting later does not overwrite the first-reach time.
        w.on_insert(9.0, 1);
        assert_eq!(w.milestones()[0], Some(1.0));
    }

    #[test]
    fn default_fractions_match_figure_4() {
        let w = WarmupTracker::new(100, &[0]);
        assert_eq!(w.fractions().len(), 10);
        assert_eq!(w.fractions()[0], 0.1);
        assert_eq!(*w.fractions().last().unwrap(), 0.95);
    }

    #[test]
    fn empty_target_is_trivially_complete_progress() {
        let w = WarmupTracker::with_fractions(10, &[], &[0.5]);
        assert_eq!(w.progress(), 1.0);
    }
}
