//! Channel-tuning policy for K-channel broadcast.
//!
//! A mobile client listens to **one** channel at a time. When an access
//! misses the cache, the client picks the channel that minimizes its
//! expected wait for the missed page and stays tuned there until the page
//! arrives (or a retry forces a re-tune). Because the K-channel generator
//! confines every access set to one channel, the tuned channel always
//! carries everything the client needs next — the conflict-freedom
//! property bpp-verify rule V6 checks statically.

use bpp_broadcast::{MultiChannelProgram, PageId};

/// The channel a single-tuner client should listen to while waiting for
/// `page`: among the channels airing the page, the one whose next
/// occurrence is soonest from its cursor ([`BroadcastProgram::slots_until`]
/// with per-channel `cursors`), breaking ties by smaller long-run expected
/// wait ([`BroadcastProgram::expected_slots`]) and then by lowest channel
/// index. Returns `None` when no channel airs the page (pull-only
/// everywhere); callers then fall back to [`fallback_channel`].
///
/// [`BroadcastProgram::slots_until`]: bpp_broadcast::BroadcastProgram::slots_until
/// [`BroadcastProgram::expected_slots`]: bpp_broadcast::BroadcastProgram::expected_slots
pub fn best_channel(
    channels: &MultiChannelProgram,
    cursors: &[usize],
    page: PageId,
) -> Option<usize> {
    let mut best: Option<(usize, usize, f64)> = None;
    for (k, &cursor) in cursors.iter().enumerate().take(channels.num_channels()) {
        let prog = channels.channel(k);
        let Some(until) = prog.slots_until(page, cursor) else {
            continue;
        };
        let expected = prog.expected_slots(page).unwrap_or(f64::INFINITY);
        let better = match best {
            None => true,
            Some((_, b_until, b_expected)) => {
                until < b_until || (until == b_until && expected < b_expected)
            }
        };
        if better {
            best = Some((k, until, expected));
        }
    }
    best.map(|(k, _, _)| k)
}

/// Deterministic shard for pages no channel airs (pull-only): every
/// requester of one page must agree on a channel, so the single pull
/// response slot reaches all of the page's waiters.
pub fn fallback_channel(page: PageId, num_channels: usize) -> usize {
    page.index() % num_channels
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpp_broadcast::{Assignment, BroadcastProgram, DiskSpec};

    fn band(db: usize, lo: u32, hi: u32) -> BroadcastProgram {
        let pages: Vec<PageId> = (lo..hi).map(PageId).collect();
        let spec = DiskSpec::flat(pages.len());
        let a = Assignment::from_ranking(&pages, &spec);
        BroadcastProgram::generate(&a, db)
    }

    #[test]
    fn tunes_to_the_only_channel_airing_the_page() {
        let mc = MultiChannelProgram::from_channels(vec![band(10, 0, 5), band(10, 5, 10)]);
        assert_eq!(best_channel(&mc, &[0, 0], PageId(7)), Some(1));
        assert_eq!(best_channel(&mc, &[0, 0], PageId(2)), Some(0));
    }

    #[test]
    fn prefers_the_sooner_copy_of_a_duplicated_page() {
        // Both channels air page 3 (period 5); cursors decide which copy
        // comes up first.
        let mc = MultiChannelProgram::from_channels(vec![band(10, 0, 5), band(10, 0, 5)]);
        // Channel 0 is at slot 3 (page 3 next), channel 1 just passed it.
        assert_eq!(best_channel(&mc, &[3, 4], PageId(3)), Some(0));
        assert_eq!(best_channel(&mc, &[4, 3], PageId(3)), Some(1));
        // Exact tie: lowest channel wins (equal expected waits).
        assert_eq!(best_channel(&mc, &[0, 0], PageId(3)), Some(0));
    }

    #[test]
    fn tie_on_distance_breaks_by_expected_wait() {
        // Page 0 on a fast cycle (period 2) on channel 0 and a slow cycle
        // (period 4) on channel 1: same distance from aligned cursors, but
        // channel 0's long-run expected wait is smaller.
        let fast = {
            let pages = vec![PageId(0), PageId(1)];
            let a = Assignment::from_ranking(&pages, &DiskSpec::flat(2));
            BroadcastProgram::generate(&a, 4)
        };
        let slow = {
            let pages = vec![PageId(0), PageId(2), PageId(3), PageId(1)];
            let a = Assignment::from_ranking(&pages, &DiskSpec::flat(4));
            BroadcastProgram::generate(&a, 4)
        };
        assert_eq!(best_channel(&mc2(fast, slow), &[0, 0], PageId(0)), Some(0));
    }

    fn mc2(a: BroadcastProgram, b: BroadcastProgram) -> MultiChannelProgram {
        MultiChannelProgram::from_channels(vec![a, b])
    }

    #[test]
    fn pull_only_pages_have_no_channel_and_a_stable_fallback() {
        let mc = MultiChannelProgram::from_channels(vec![band(10, 0, 4), band(10, 4, 8)]);
        assert_eq!(best_channel(&mc, &[0, 0], PageId(9)), None);
        assert_eq!(fallback_channel(PageId(9), 2), 1);
        assert_eq!(fallback_channel(PageId(8), 2), 0);
    }
}
