//! # bpp-client — client models
//!
//! The paper simulates an arbitrarily large client population with two
//! processes:
//!
//! * the **Measured Client** ([`MeasuredClient`]) — a single closed-loop
//!   client whose response times are the reported metric. It thinks, draws a
//!   page from its (possibly Noise-permuted) Zipf pattern, consults its
//!   cache, optionally sends a pull request (threshold permitting), then
//!   blocks until the page is heard on the frontchannel;
//! * the **Virtual Client** ([`VirtualClient`]) — an open-loop stand-in for
//!   every other client. It draws accesses at rate
//!   `ThinkTimeRatio / MC_ThinkTime`; a `SteadyStatePerc`-weighted coin
//!   decides per access whether it behaves like a warmed-up client (filter
//!   through a static ideal cache) or a cold one (always miss). Surviving
//!   misses pass the threshold filter and land in the server queue.
//!
//! Shared pieces: the [`ThresholdFilter`] (request only pages whose next
//! push appearance is farther than `ThresPerc × MajorCycle` slots away) and
//! the [`WarmupTracker`] (when did the cache first contain X% of its ideal
//! content — Figure 4's metric).

#![forbid(unsafe_code)]

pub mod arena;
pub mod measured;
pub mod retry;
pub mod threshold;
pub mod tuning;
pub mod virtual_client;
pub mod warmup;

/// Mirror of the workspace RNG stream registry, client-owned entries only.
///
/// The canonical registry is `bpp_core`'s simulation `streams` module
/// (single source of truth, checked by `bpp-lint` rule D1). `bpp-client`
/// sits below `bpp-core` in the dependency graph and cannot import it, so
/// the one stream this crate owns is mirrored here; the
/// `client_retry_stream_mirror_matches` test in `bpp-core` pins the two
/// values together.
pub mod streams {
    /// 7 — retry backoff jitter, must equal the canonical
    /// `bpp_core` `streams::RETRY`.
    pub const RETRY: u64 = 7;
}

pub use arena::{ClientArena, FleetStats, WakeOutcome};
pub use measured::{BeginOutcome, McStats, MeasuredClient};
pub use retry::{RetryPolicy, RetryState};
pub use threshold::ThresholdFilter;
pub use tuning::{best_channel, fallback_channel};
pub use virtual_client::{VcAccess, VirtualClient};
pub use warmup::WarmupTracker;
