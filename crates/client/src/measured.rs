//! The Measured Client — the closed-loop client whose response times are
//! the paper's reported metric.
//!
//! Lifecycle per access: think → draw a page from the (Noise-permuted) Zipf
//! pattern → probe the cache. A hit completes instantly (response 0). On a
//! miss the client blocks, listening to the frontchannel; if the page's next
//! scheduled appearance is beyond the threshold (or the page is not on the
//! schedule) it also fires a pull request at the server. Whichever slot —
//! push or pull, its own request or another client's — first carries the
//! page completes the access, and the page enters the cache.

use crate::threshold::ThresholdFilter;
use crate::warmup::WarmupTracker;
use bpp_broadcast::{BroadcastProgram, PageId};
use bpp_cache::ReplacementPolicy;
use bpp_sim::rng::Rng;
use bpp_sim::Time;
use bpp_workload::{AccessPattern, ThinkTime};

/// Outcome of starting an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeginOutcome {
    /// Served from the cache; response time 0.
    Hit {
        /// The page that was accessed.
        page: PageId,
    },
    /// Cache miss: the client now blocks on the frontchannel.
    Miss {
        /// The page being waited for.
        page: PageId,
        /// True when the threshold filter lets a pull request through.
        send_request: bool,
    },
}

/// Basic lifetime counters for the Measured Client.
#[derive(Debug, Clone, Copy, Default)]
pub struct McStats {
    /// Accesses begun.
    pub accesses: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Pull requests the threshold filter let through.
    pub requests_sent: u64,
    /// Misses completed via the frontchannel.
    pub completed: u64,
}

impl McStats {
    /// Misses the threshold filter swallowed — the client chose to wait for
    /// the broadcast instead of spending a backchannel request. Together
    /// with [`McStats::requests_sent`] this gives the filter's hit rate:
    /// every miss either sends a request or is filtered.
    pub fn requests_filtered(&self) -> u64 {
        self.misses - self.requests_sent
    }

    /// Cache hit fraction over all accesses begun (0 before the first).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum State {
    Idle,
    Waiting { page: PageId, since: Time },
}

/// The Measured Client.
pub struct MeasuredClient {
    pattern: AccessPattern,
    cache: Box<dyn ReplacementPolicy>,
    think: ThinkTime,
    threshold: ThresholdFilter,
    state: State,
    warmup: Option<WarmupTracker>,
    stats: McStats,
}

impl MeasuredClient {
    /// Assemble a client. `cache` decides the replacement policy (PIX, P,
    /// LRU, ...); `threshold` gates backchannel use.
    pub fn new(
        pattern: AccessPattern,
        cache: Box<dyn ReplacementPolicy>,
        think: ThinkTime,
        threshold: ThresholdFilter,
    ) -> Self {
        MeasuredClient {
            pattern,
            cache,
            think,
            threshold,
            state: State::Idle,
            warmup: None,
            stats: McStats::default(),
        }
    }

    /// Attach a warm-up tracker observing this client's cache.
    pub fn attach_warmup(&mut self, tracker: WarmupTracker) {
        self.warmup = Some(tracker);
    }

    /// Replace the threshold filter (used by the adaptive-IPP extension,
    /// where clients widen the threshold as the server saturates).
    pub fn set_threshold(&mut self, threshold: ThresholdFilter) {
        self.threshold = threshold;
    }

    /// The attached warm-up tracker, if any.
    pub fn warmup(&self) -> Option<&WarmupTracker> {
        self.warmup.as_ref()
    }

    /// Draw the next think time.
    pub fn draw_think<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.think.sample(rng)
    }

    /// The client's access pattern (for score/ideal-content computations).
    pub fn pattern(&self) -> &AccessPattern {
        &self.pattern
    }

    /// The cache (for hit-rate reporting and warm-up state).
    pub fn cache(&self) -> &dyn ReplacementPolicy {
        self.cache.as_ref()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &McStats {
        &self.stats
    }

    /// The page this client is currently blocked on, if any.
    pub fn waiting_on(&self) -> Option<PageId> {
        match self.state {
            State::Idle => None,
            State::Waiting { page, .. } => Some(page),
        }
    }

    /// Begin one access at time `now`. The server's schedule `cursor` is the
    /// position of the next push slot; `program` may be empty (Pure-Pull).
    ///
    /// # Panics
    /// If the client is already blocked on a page.
    pub fn begin_access<R: Rng + ?Sized>(
        &mut self,
        now: Time,
        program: &BroadcastProgram,
        cursor: usize,
        rng: &mut R,
    ) -> BeginOutcome {
        assert!(
            matches!(self.state, State::Idle),
            "begin_access while already waiting"
        );
        self.stats.accesses += 1;
        let item = self.pattern.sample(rng);
        let page = PageId(item as u32);
        if self.cache.lookup(item) {
            self.stats.hits += 1;
            return BeginOutcome::Hit { page };
        }
        self.stats.misses += 1;
        let send_request = self.threshold.should_request(program, page, cursor);
        if send_request {
            self.stats.requests_sent += 1;
        }
        self.state = State::Waiting { page, since: now };
        BeginOutcome::Miss { page, send_request }
    }

    /// [`begin_access`](Self::begin_access) against a K-channel placement:
    /// on a miss the client tunes to the channel minimizing its expected
    /// wait ([`crate::tuning::best_channel`]) and the threshold decision is
    /// made on *that* channel's schedule with the matching per-channel
    /// filter and cursor. Returns the outcome plus the tuned channel
    /// (`None` on a hit, or when no channel airs the page — the caller
    /// falls back to [`crate::tuning::fallback_channel`] for the request
    /// shard, and a pull-only miss always sends a request).
    ///
    /// Consumes exactly the same variates as
    /// [`begin_access`](Self::begin_access): one pattern draw per access,
    /// so single- and multi-channel runs stay stream-aligned.
    ///
    /// # Panics
    /// If the client is already blocked on a page, or `cursors`/`filters`
    /// are not one per channel.
    pub fn begin_access_tuned<R: Rng + ?Sized>(
        &mut self,
        now: Time,
        channels: &bpp_broadcast::MultiChannelProgram,
        cursors: &[usize],
        filters: &[ThresholdFilter],
        rng: &mut R,
    ) -> (BeginOutcome, Option<usize>) {
        assert!(
            matches!(self.state, State::Idle),
            "begin_access while already waiting"
        );
        assert_eq!(
            cursors.len(),
            channels.num_channels(),
            "one cursor per channel"
        );
        assert_eq!(
            filters.len(),
            channels.num_channels(),
            "one filter per channel"
        );
        self.stats.accesses += 1;
        let item = self.pattern.sample(rng);
        let page = PageId(item as u32);
        if self.cache.lookup(item) {
            self.stats.hits += 1;
            return (BeginOutcome::Hit { page }, None);
        }
        self.stats.misses += 1;
        let tuned = crate::tuning::best_channel(channels, cursors, page);
        let send_request = match tuned {
            Some(k) => filters[k].should_request(channels.channel(k), page, cursors[k]),
            None => true,
        };
        if send_request {
            self.stats.requests_sent += 1;
        }
        self.state = State::Waiting { page, since: now };
        (BeginOutcome::Miss { page, send_request }, tuned)
    }

    /// A page was heard on the frontchannel. If the client was blocked on
    /// it, the access completes: returns the response time (now − request
    /// time) and inserts the page into the cache.
    pub fn on_broadcast(&mut self, now: Time, page: PageId) -> Option<f64> {
        let State::Waiting {
            page: waiting,
            since,
        } = self.state
        else {
            return None;
        };
        if waiting != page {
            return None;
        }
        self.state = State::Idle;
        self.stats.completed += 1;
        self.admit(now, page);
        Some(now - since)
    }

    /// Opportunistic prefetch (\[Acha96a\]): offer a page flying by on the
    /// frontchannel to the cache even though no request is pending on it.
    /// With a value-based policy (PIX/P) the cache's own admission test
    /// decides — the page enters only if it outscores the current minimum.
    ///
    /// Do not call this for the page the client is blocked on; that
    /// delivery goes through [`on_broadcast`](Self::on_broadcast).
    pub fn prefetch(&mut self, now: Time, page: PageId) {
        debug_assert!(
            self.waiting_on() != Some(page),
            "prefetch of the awaited page; use on_broadcast"
        );
        self.admit(now, page);
    }

    /// A server-side update invalidated `page` (\[Acha96b\] extension): drop
    /// any cached copy. Returns `true` if a copy was dropped.
    pub fn invalidate(&mut self, page: PageId) -> bool {
        let removed = self.cache.remove(page.index());
        if removed {
            if let Some(w) = &mut self.warmup {
                w.on_evict(page.index());
            }
        }
        removed
    }

    fn admit(&mut self, now: Time, page: PageId) {
        if self.cache.contains(page.index()) {
            return;
        }
        let evicted = self.cache.insert(page.index());
        if let Some(w) = &mut self.warmup {
            if let Some(v) = evicted {
                w.on_evict(v);
            }
            if self.cache.contains(page.index()) {
                w.on_insert(now, page.index());
            }
        }
    }
}

impl std::fmt::Debug for MeasuredClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeasuredClient")
            .field("state", &self.state)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpp_broadcast::{assignment::identity_ranking, Assignment, DiskSpec};
    use bpp_cache::StaticScoreCache;
    use bpp_sim::rng::Xoshiro256pp;
    use bpp_workload::{NoisePermutation, Zipf};

    fn setup(cache_cap: usize, thres: f64) -> (MeasuredClient, BroadcastProgram) {
        let n = 7;
        let spec = DiskSpec::new(vec![1, 2, 4], vec![4, 2, 1]);
        let a = Assignment::from_ranking(&identity_ranking(n), &spec);
        let program = BroadcastProgram::generate(&a, n);
        let zipf = Zipf::new(n, 0.95);
        let pattern = AccessPattern::new(&zipf, NoisePermutation::identity(n));
        let freqs: Vec<usize> = (0..n)
            .map(|i| program.frequency(PageId(i as u32)))
            .collect();
        let cache = StaticScoreCache::pix(cache_cap, pattern.probs(), &freqs);
        let threshold = ThresholdFilter::from_percentage(thres, program.major_cycle());
        let mc = MeasuredClient::new(pattern, Box::new(cache), ThinkTime::Fixed(2.0), threshold);
        (mc, program)
    }

    #[test]
    fn miss_then_delivery_yields_response_time() {
        let (mut mc, program) = setup(0, 0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let out = mc.begin_access(10.0, &program, 0, &mut rng);
        let BeginOutcome::Miss { page, send_request } = out else {
            panic!("cache is empty; must miss");
        };
        assert!(send_request, "zero threshold requests everything");
        assert_eq!(mc.waiting_on(), Some(page));
        // Unrelated pages do not complete the access.
        let other = PageId(if page.0 == 0 { 1 } else { 0 });
        assert_eq!(mc.on_broadcast(12.0, other), None);
        let r = mc.on_broadcast(15.5, page).expect("delivery completes");
        assert!((r - 5.5).abs() < 1e-12);
        assert_eq!(mc.waiting_on(), None);
        assert_eq!(mc.stats().completed, 1);
    }

    #[test]
    fn cached_page_hits_and_does_not_block() {
        let (mut mc, program) = setup(7, 0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        // Fill the cache by running accesses and delivering.
        for _ in 0..50 {
            match mc.begin_access(0.0, &program, 0, &mut rng) {
                BeginOutcome::Miss { page, .. } => {
                    mc.on_broadcast(0.0, page);
                }
                BeginOutcome::Hit { .. } => {}
            }
        }
        // Cache holds all 7 pages now: every access hits.
        let out = mc.begin_access(1.0, &program, 0, &mut rng);
        assert!(matches!(out, BeginOutcome::Hit { .. }));
        assert!(mc.stats().hits > 0);
    }

    #[test]
    fn threshold_suppresses_near_pages() {
        let (mut mc, program) = setup(0, 1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        // Full threshold: nothing on the broadcast is ever requested.
        for _ in 0..20 {
            match mc.begin_access(0.0, &program, 0, &mut rng) {
                BeginOutcome::Miss { page, send_request } => {
                    assert!(!send_request);
                    mc.on_broadcast(0.0, page);
                }
                BeginOutcome::Hit { .. } => unreachable!("capacity 0"),
            }
        }
        assert_eq!(mc.stats().requests_sent, 0);
    }

    #[test]
    #[should_panic(expected = "already waiting")]
    fn double_begin_panics() {
        let (mut mc, program) = setup(0, 0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        mc.begin_access(0.0, &program, 0, &mut rng);
        mc.begin_access(1.0, &program, 0, &mut rng);
    }

    #[test]
    fn warmup_tracker_observes_insertions() {
        let (mut mc, program) = setup(2, 0.0);
        // Recompute the PIX ideal content exactly as setup() builds it.
        let freqs: Vec<usize> = (0..7)
            .map(|i| program.frequency(PageId(i as u32)))
            .collect();
        let ideal = StaticScoreCache::pix(2, mc.pattern().probs(), &freqs).ideal_content();
        mc.attach_warmup(WarmupTracker::with_fractions(7, &ideal, &[0.5, 1.0]));
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for _ in 0..200 {
            match mc.begin_access(0.0, &program, 0, &mut rng) {
                BeginOutcome::Miss { page, .. } => {
                    mc.on_broadcast(0.0, page);
                }
                BeginOutcome::Hit { .. } => {}
            }
        }
        let w = mc.warmup().unwrap();
        assert!(w.complete(), "progress {}", w.progress());
    }

    #[test]
    fn stats_balance() {
        let (mut mc, program) = setup(3, 0.0);
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        for _ in 0..100 {
            if let BeginOutcome::Miss { page, .. } = mc.begin_access(0.0, &program, 0, &mut rng) {
                mc.on_broadcast(0.0, page);
            }
        }
        let s = mc.stats();
        assert_eq!(s.accesses, 100);
        assert_eq!(s.hits + s.misses, 100);
        assert_eq!(s.completed, s.misses);
        assert_eq!(s.requests_filtered(), s.misses - s.requests_sent);
    }

    #[test]
    fn tuned_access_draws_like_the_plain_path() {
        use bpp_broadcast::MultiChannelProgram;
        // Two identical clients on identical RNG streams: one accesses the
        // single-channel program, the other a 2-channel split of the same
        // universe. Pages drawn, stream positions, and outcomes agree; the
        // tuned client additionally reports the channel airing its page.
        let (mut plain, program) = setup(0, 0.0);
        let (mut tuned, _) = setup(0, 0.0);
        let band = |lo: u32, hi: u32| {
            let pages: Vec<PageId> = (lo..hi).map(PageId).collect();
            let spec = DiskSpec::flat(pages.len());
            let a = Assignment::from_ranking(&pages, &spec);
            BroadcastProgram::generate(&a, 7)
        };
        let channels = MultiChannelProgram::from_channels(vec![band(0, 4), band(4, 7)]);
        let filters = vec![ThresholdFilter::pass_all(), ThresholdFilter::pass_all()];
        let mut r1 = Xoshiro256pp::seed_from_u64(9);
        let mut r2 = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..50 {
            let out_a = plain.begin_access(0.0, &program, 0, &mut r1);
            let (out_b, ch) = tuned.begin_access_tuned(0.0, &channels, &[0, 0], &filters, &mut r2);
            match (out_a, out_b) {
                (BeginOutcome::Miss { page: pa, .. }, BeginOutcome::Miss { page: pb, .. }) => {
                    assert_eq!(pa, pb);
                    let k = ch.expect("every page is on some channel");
                    assert!(channels.channel(k).contains(pb));
                    plain.on_broadcast(0.0, pa);
                    tuned.on_broadcast(0.0, pb);
                }
                (BeginOutcome::Hit { page: pa }, BeginOutcome::Hit { page: pb }) => {
                    assert_eq!(pa, pb)
                }
                _ => panic!("plain and tuned paths diverged"),
            }
        }
        assert_eq!(r1.next_u64(), r2.next_u64(), "streams desynchronized");
    }

    #[test]
    fn requests_filtered_counts_threshold_swallowed_misses() {
        // Full threshold (setup ratio 1.0): every miss is filtered.
        let (mut mc, program) = setup(0, 1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..20 {
            if let BeginOutcome::Miss { page, .. } = mc.begin_access(0.0, &program, 0, &mut rng) {
                mc.on_broadcast(0.0, page);
            }
        }
        let s = mc.stats();
        assert_eq!(s.requests_sent, 0);
        assert_eq!(s.requests_filtered(), s.misses);
    }
}
