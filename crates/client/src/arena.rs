//! The arena-backed client fleet — real clients at population scale.
//!
//! The Virtual Client models "everyone else" as a single open-loop arrival
//! process. That is the paper's trick for simulating an arbitrarily large
//! population cheaply, but it cannot answer per-client questions (flow-time
//! percentiles, stretch, warm-up of individuals) and it assumes the
//! open-loop limit holds. [`ClientArena`] is the other end of the trade:
//! `n` real closed-loop clients, stored as index-addressed structure-of-
//! arrays slabs so that a 10⁵–10⁶-client fleet costs a few flat `Vec`s
//! instead of a million boxed client objects.
//!
//! ## Layout
//!
//! Per-client state lives in parallel slabs indexed by a dense `u32` id:
//!
//! * **cache** — every fleet client runs the static-score policy of the
//!   Virtual Client's steady-state model: a page is cacheable iff it is in
//!   the ideal content (top `CacheSize` by P/PIX score). Membership is a
//!   bitset over *ideal-rank space* (`CacheSize` bits per client, not
//!   `DBSize`), because a page outside the ideal set is never cached by
//!   this policy. Warm clients start with every bit set; cold clients
//!   start empty and acquire ideal pages as deliveries arrive.
//! * **think-timer** — `waiting_page` (`u32::MAX` = thinking) and
//!   `waiting_since` (access start time, the flow-time origin).
//! * **retry** — a [`RetryState`] plus a generation counter per client;
//!   stale timers (their access already completed) fail the gen match.
//! * **waiter lists** — an intrusive singly-linked list per page
//!   (`waiters_head[page]` / `waiters_next[client]`), so a delivered page
//!   completes *all* clients blocked on it in one pass over exactly those
//!   clients — never a scan of the fleet.
//!
//! Fleet clients do not snoop pages they are not waiting for (the Measured
//! Client's prefetch is a per-client refinement; at fleet scale it would
//! make every slot O(n)). A delivery therefore costs O(waiters on that
//! page) and a wake costs O(1), which is what keeps a million-client run
//! inside the per-slot budget.
//!
//! ## Flow time and stretch
//!
//! Every completed miss records its *flow time* (access start → delivery).
//! Pages are unit-size in this model — one page per slot — so a request's
//! *stretch* (flow / service) equals its flow time, and the reported
//! maximum flow is exactly the fleet's max-stretch.

use crate::retry::{RetryPolicy, RetryState};
use crate::threshold::ThresholdFilter;
use bpp_broadcast::{BroadcastProgram, PageId};
use bpp_sim::rng::Rng;
use bpp_sim::{Histogram, Welford};
use bpp_workload::{AccessPattern, ThinkTime};

/// Sentinel for "no page / no client" in the slab links.
const NONE: u32 = u32::MAX;

/// Aggregate counters over the whole fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FleetStats {
    /// Accesses begun (hits + misses).
    pub accesses: u64,
    /// Accesses absorbed by a client's cache.
    pub hits: u64,
    /// Misses that passed the threshold filter and were handed to the
    /// backchannel.
    pub requests_sent: u64,
    /// Misses the threshold filter swallowed (the client waits for the
    /// push schedule instead).
    pub requests_filtered: u64,
    /// Misses completed by a delivered page.
    pub completed: u64,
    /// Retry resends issued by fleet clients.
    pub retries: u64,
    /// Fleet accesses whose retry budget ran out (fell back to the push
    /// safety net).
    pub retries_exhausted: u64,
}

impl FleetStats {
    /// Fleet-wide cache hit rate (0 when no accesses yet).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Outcome of one fleet-client wake (mirrors the Measured Client's
/// `BeginOutcome`, with the next think-wake pre-drawn on hits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WakeOutcome {
    /// Cache hit: the access completed instantly; wake the client again at
    /// `next_wake`.
    Hit {
        /// Absolute time of the client's next access.
        next_wake: f64,
    },
    /// Cache miss: the client now blocks on `page`. `send_request` is the
    /// threshold filter's verdict; the caller owns the backchannel submit.
    Miss {
        /// The missed page.
        page: PageId,
        /// Whether the miss passed the threshold filter.
        send_request: bool,
    },
}

/// An index-addressed fleet of closed-loop clients (see module docs).
#[derive(Debug, Clone)]
pub struct ClientArena {
    // --- Shared, read-only model state. ---
    pattern: AccessPattern,
    think: ThinkTime,
    threshold: ThresholdFilter,
    /// Page → rank within the ideal cache content, `NONE` when the page is
    /// not cacheable under the static-score policy.
    ideal_rank: Vec<u32>,
    /// Bitset words per client (`ideal size` bits rounded up).
    words_per_client: usize,
    // --- Per-client SoA slabs. ---
    /// `n × words_per_client` bitset words: which ideal pages each client
    /// has acquired.
    acquired: Vec<u64>,
    /// Page each client is blocked on (`NONE` = thinking).
    waiting_page: Vec<u32>,
    /// Access start time of the outstanding miss (flow-time origin).
    waiting_since: Vec<f64>,
    /// Head of the per-page intrusive waiter list.
    waiters_head: Vec<u32>,
    /// Next pointer of the per-client waiter-list node.
    waiters_next: Vec<u32>,
    /// Retry backoff progress of the outstanding request.
    retry: Vec<RetryState>,
    /// Generation counter invalidating timers of completed accesses.
    retry_gen: Vec<u32>,
    /// Channel the client is tuned to while blocked (`NONE` = thinking or
    /// single-channel mode). Written only by the K-channel wake path.
    tuned: Vec<u32>,
    // --- Fleet-wide statistics. ---
    stats: FleetStats,
    flow: Welford,
    flow_dist: Histogram,
    /// Reused batch-completion buffer: `(client, next_wake)` pairs.
    wake_buf: Vec<(u32, f64)>,
}

impl ClientArena {
    /// Build a fleet of `n` clients.
    ///
    /// * `db_size` — pages in the database (sizes the waiter-list heads);
    /// * `ideal_items` — the ideal cache content of a warmed-up client
    ///   (same list the Virtual Client filters through);
    /// * `warm_clients` — how many clients (ids `0..warm_clients`) start
    ///   with the full ideal content; the rest start cold;
    /// * `think` — per-client think-time distribution;
    /// * `threshold` — the backchannel threshold filter;
    /// * `pattern` — the shared access pattern (the population Zipf).
    pub fn new(
        n: usize,
        db_size: usize,
        ideal_items: &[usize],
        warm_clients: usize,
        think: ThinkTime,
        threshold: ThresholdFilter,
        pattern: AccessPattern,
    ) -> Self {
        assert!(n > 0, "fleet must have at least one client");
        assert!(n < NONE as usize, "fleet ids must fit in u32");
        assert!(warm_clients <= n, "warm count exceeds fleet size");
        let mut ideal_rank = vec![NONE; db_size];
        for (r, &item) in ideal_items.iter().enumerate() {
            ideal_rank[item] = r as u32;
        }
        let words_per_client = ideal_items.len().div_ceil(64).max(1);
        let mut acquired = vec![0u64; n * words_per_client];
        if !ideal_items.is_empty() {
            // Warm clients own the whole ideal set: full words, then the
            // partial tail word.
            let full = ideal_items.len() / 64;
            let tail_bits = ideal_items.len() % 64;
            for c in 0..warm_clients {
                let base = c * words_per_client;
                for w in &mut acquired[base..base + full] {
                    *w = u64::MAX;
                }
                if tail_bits > 0 {
                    acquired[base + full] = (1u64 << tail_bits) - 1;
                }
            }
        }
        ClientArena {
            pattern,
            think,
            threshold,
            ideal_rank,
            words_per_client,
            acquired,
            waiting_page: vec![NONE; n],
            waiting_since: vec![0.0; n],
            waiters_head: vec![NONE; db_size],
            waiters_next: vec![NONE; n],
            retry: vec![RetryState::default(); n],
            retry_gen: vec![0; n],
            tuned: vec![NONE; n],
            stats: FleetStats::default(),
            flow: Welford::new(),
            // Same geometry as the MC response histogram: 4-unit bins out
            // to 4× the paper's major cycle; heavier tails overflow and
            // void the affected quantiles.
            flow_dist: Histogram::new(4.0, 1608),
            wake_buf: Vec::new(),
        }
    }

    /// Number of clients in the fleet.
    pub fn len(&self) -> usize {
        self.waiting_page.len()
    }

    /// Whether the fleet is empty (never true: `new` requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.waiting_page.is_empty()
    }

    /// Draw one think time (used to stagger the initial wakes).
    pub fn draw_think<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.think.sample(rng)
    }

    fn cached(&self, client: usize, item: usize) -> bool {
        let rank = self.ideal_rank[item];
        if rank == NONE {
            return false;
        }
        let word = self.acquired[client * self.words_per_client + rank as usize / 64];
        word >> (rank % 64) & 1 == 1
    }

    fn insert(&mut self, client: usize, item: usize) {
        let rank = self.ideal_rank[item];
        if rank != NONE {
            self.acquired[client * self.words_per_client + rank as usize / 64] |=
                1u64 << (rank % 64);
        }
    }

    /// One client finishes thinking and begins an access at `now`.
    ///
    /// On a hit the access completes instantly and the next wake time is
    /// drawn; on a miss the client joins `page`'s waiter list and the
    /// threshold verdict is returned (the caller submits the request and
    /// arms the retry timer).
    pub fn wake<R: Rng + ?Sized>(
        &mut self,
        client: u32,
        now: f64,
        program: &BroadcastProgram,
        cursor: usize,
        rng: &mut R,
    ) -> WakeOutcome {
        let c = client as usize;
        debug_assert_eq!(self.waiting_page[c], NONE, "wake of a blocked client");
        self.stats.accesses += 1;
        let item = self.pattern.sample(rng);
        if self.cached(c, item) {
            self.stats.hits += 1;
            return WakeOutcome::Hit {
                next_wake: now + self.think.sample(rng),
            };
        }
        self.waiting_page[c] = item as u32;
        self.waiting_since[c] = now;
        self.waiters_next[c] = self.waiters_head[item];
        self.waiters_head[item] = client;
        let page = PageId(item as u32);
        let send_request = self.threshold.should_request(program, page, cursor);
        if send_request {
            self.stats.requests_sent += 1;
        } else {
            self.stats.requests_filtered += 1;
        }
        WakeOutcome::Miss { page, send_request }
    }

    /// [`wake`](Self::wake) against a K-channel placement: on a miss the
    /// client tunes to the channel minimizing its expected wait
    /// ([`crate::tuning::best_channel`]; the deterministic
    /// [`crate::tuning::fallback_channel`] shard for pull-only pages, so
    /// every requester of a page agrees on where its response will fly).
    /// The threshold verdict is made on the tuned channel's schedule with
    /// the matching per-channel filter and cursor; pull-only misses always
    /// request. The tuned channel is retained until the access completes
    /// (query it with [`tuned_channel`](Self::tuned_channel)) so retry
    /// resends target the same shard.
    ///
    /// Consumes exactly the same variates as [`wake`](Self::wake): one
    /// pattern draw per access, one think draw per hit.
    ///
    /// # Panics
    /// If `cursors`/`filters` are not one per channel.
    pub fn wake_tuned<R: Rng + ?Sized>(
        &mut self,
        client: u32,
        now: f64,
        channels: &bpp_broadcast::MultiChannelProgram,
        cursors: &[usize],
        filters: &[ThresholdFilter],
        rng: &mut R,
    ) -> WakeOutcome {
        assert_eq!(
            cursors.len(),
            channels.num_channels(),
            "one cursor per channel"
        );
        assert_eq!(
            filters.len(),
            channels.num_channels(),
            "one filter per channel"
        );
        let c = client as usize;
        debug_assert_eq!(self.waiting_page[c], NONE, "wake of a blocked client");
        self.stats.accesses += 1;
        let item = self.pattern.sample(rng);
        if self.cached(c, item) {
            self.stats.hits += 1;
            return WakeOutcome::Hit {
                next_wake: now + self.think.sample(rng),
            };
        }
        self.waiting_page[c] = item as u32;
        self.waiting_since[c] = now;
        self.waiters_next[c] = self.waiters_head[item];
        self.waiters_head[item] = client;
        let page = PageId(item as u32);
        let best = crate::tuning::best_channel(channels, cursors, page);
        let tuned =
            best.unwrap_or_else(|| crate::tuning::fallback_channel(page, channels.num_channels()));
        self.tuned[c] = tuned as u32;
        let send_request = match best {
            Some(k) => filters[k].should_request(channels.channel(k), page, cursors[k]),
            None => true,
        };
        if send_request {
            self.stats.requests_sent += 1;
        } else {
            self.stats.requests_filtered += 1;
        }
        WakeOutcome::Miss { page, send_request }
    }

    /// The channel `client` is tuned to while blocked (`None` while
    /// thinking, or when the fleet runs single-channel).
    pub fn tuned_channel(&self, client: u32) -> Option<usize> {
        let t = self.tuned[client as usize];
        (t != NONE).then_some(t as usize)
    }

    /// A page finished transmission at `now`: complete every client
    /// blocked on it in one pass and return `(client, next_wake)` pairs
    /// for the caller to schedule. The returned slice is a reused internal
    /// buffer, valid until the next `deliver` call.
    pub fn deliver<R: Rng + ?Sized>(
        &mut self,
        page: PageId,
        now: f64,
        rng: &mut R,
    ) -> &[(u32, f64)] {
        self.wake_buf.clear();
        let item = page.index();
        if item >= self.waiters_head.len() {
            return &self.wake_buf;
        }
        let mut c = self.waiters_head[item];
        self.waiters_head[item] = NONE;
        while c != NONE {
            let ci = c as usize;
            let next = self.waiters_next[ci];
            self.waiters_next[ci] = NONE;
            let flow = now - self.waiting_since[ci];
            self.flow.record(flow);
            self.flow_dist.record(flow);
            self.stats.completed += 1;
            self.insert(ci, item);
            self.waiting_page[ci] = NONE;
            self.tuned[ci] = NONE;
            // Invalidate any retry timer armed for this access.
            self.retry_gen[ci] = self.retry_gen[ci].wrapping_add(1);
            self.wake_buf.push((c, now + self.think.sample(rng)));
            c = next;
        }
        &self.wake_buf
    }

    /// Arm the retry state for `client`'s just-sent request; returns the
    /// generation the timer must carry.
    pub fn arm_retry(&mut self, client: u32) -> u32 {
        let c = client as usize;
        self.retry[c] = RetryState::arm();
        self.retry_gen[c]
    }

    /// Current retry generation of `client` (timers with an older value
    /// belong to a completed access).
    pub fn retry_gen(&self, client: u32) -> u32 {
        self.retry_gen[client as usize]
    }

    /// The next backoff delay for `client`, or `None` when the budget is
    /// spent (the client falls back to the push safety net).
    pub fn next_retry_delay<R: Rng>(
        &mut self,
        client: u32,
        policy: &RetryPolicy,
        rng: &mut R,
    ) -> Option<f64> {
        self.retry[client as usize].next_delay(policy, rng)
    }

    /// The page `client` is blocked on, if any.
    pub fn waiting_on(&self, client: u32) -> Option<PageId> {
        let p = self.waiting_page[client as usize];
        (p != NONE).then_some(PageId(p))
    }

    /// Count one retry resend.
    pub fn note_retry(&mut self) {
        self.stats.retries += 1;
    }

    /// Count one exhausted retry budget.
    pub fn note_retry_exhausted(&mut self) {
        self.stats.retries_exhausted += 1;
    }

    /// Fleet-wide counters.
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// Accesses currently blocked on a page.
    pub fn outstanding(&self) -> u64 {
        self.stats.accesses - self.stats.hits - self.stats.completed
    }

    /// Flow-time accumulator over completed misses (mean/max; max equals
    /// the fleet's max-stretch for unit-size pages).
    pub fn flow(&self) -> &Welford {
        &self.flow
    }

    /// Flow-time histogram (percentile source, 4-unit bins).
    pub fn flow_dist(&self) -> &Histogram {
        &self.flow_dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpp_broadcast::{assignment::identity_ranking, Assignment, DiskSpec};
    use bpp_sim::rng::Xoshiro256pp;
    use bpp_workload::Zipf;

    const DB: usize = 20;

    fn program() -> BroadcastProgram {
        let spec = DiskSpec::flat(DB);
        let a = Assignment::from_ranking(&identity_ranking(DB), &spec);
        BroadcastProgram::generate(&a, DB)
    }

    fn arena(n: usize, warm: usize) -> ClientArena {
        let z = Zipf::new(DB, 0.95);
        let pattern = AccessPattern::population(&z);
        let ideal = pattern.top_items(5);
        ClientArena::new(
            n,
            DB,
            &ideal,
            warm,
            ThinkTime::Fixed(10.0),
            ThresholdFilter::pass_all(),
            pattern,
        )
    }

    #[test]
    fn warm_clients_hit_ideal_pages_and_cold_clients_start_missing() {
        let p = program();

        // A warm client eventually hits (ideal pages are the hot ranks).
        let mut warm = arena(1, 1);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..200 {
            if let WakeOutcome::Miss { page, .. } = warm.wake(0, 0.0, &p, 0, &mut rng) {
                warm.deliver(page, 1.0, &mut rng);
            }
        }
        assert!(warm.stats().hits > 0, "warm client never hit");

        // A cold client misses everything until deliveries warm it; once an
        // ideal page is delivered, a repeat access to it hits.
        let mut cold = arena(1, 0);
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let mut acquired_ideal = false;
        for _ in 0..200 {
            match cold.wake(0, 0.0, &p, 0, &mut rng) {
                WakeOutcome::Hit { .. } => {
                    assert!(acquired_ideal, "cold client hit before any delivery");
                }
                WakeOutcome::Miss { page, .. } => {
                    if cold.ideal_rank[page.index()] != NONE {
                        acquired_ideal = true;
                    }
                    cold.deliver(page, 1.0, &mut rng);
                }
            }
        }
        assert!(acquired_ideal, "cold client never accessed an ideal page");
        assert!(cold.stats().hits > 0, "warmed-up cold client never hit");
    }

    #[test]
    fn delivery_completes_every_waiter_in_one_pass() {
        let mut a = arena(8, 0);
        let p = program();
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        // Force all 8 clients to wait on the same page by driving wakes
        // until their sampled items collide; instead, block them manually
        // through the public API: wake until each is waiting, then deliver
        // every distinct waited page and count completions.
        let mut waited = std::collections::BTreeSet::new();
        for c in 0..8u32 {
            match a.wake(c, 5.0, &p, 0, &mut rng) {
                WakeOutcome::Miss { page, .. } => {
                    waited.insert(page.index());
                }
                WakeOutcome::Hit { .. } => unreachable!("cold fleet cannot hit"),
            }
        }
        assert_eq!(a.outstanding(), 8);
        let mut wakes = 0;
        for item in waited {
            let batch = a.deliver(PageId(item as u32), 6.0, &mut rng).to_vec();
            for &(_, at) in &batch {
                assert_eq!(at, 16.0, "next wake = deliver + fixed think");
            }
            wakes += batch.len();
        }
        assert_eq!(wakes, 8);
        assert_eq!(a.outstanding(), 0);
        assert_eq!(a.stats().completed, 8);
        assert_eq!(a.flow().count(), 8);
        assert_eq!(a.flow().max(), 1.0);
    }

    #[test]
    fn cold_client_acquires_ideal_pages_through_deliveries() {
        let mut a = arena(1, 0);
        let ideal_item = a.ideal_rank.iter().position(|&r| r == 0).unwrap();
        assert!(!a.cached(0, ideal_item));
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        // Simulate the client waiting on that page, then its delivery.
        a.waiting_page[0] = ideal_item as u32;
        a.waiting_since[0] = 0.0;
        a.waiters_next[0] = NONE;
        a.waiters_head[ideal_item] = 0;
        a.deliver(PageId(ideal_item as u32), 2.0, &mut rng);
        assert!(a.cached(0, ideal_item), "delivered ideal page not cached");
    }

    #[test]
    fn non_ideal_pages_are_never_cached() {
        let mut a = arena(1, 0);
        let outside = a.ideal_rank.iter().position(|&r| r == NONE).unwrap();
        a.insert(0, outside);
        assert!(!a.cached(0, outside));
    }

    #[test]
    fn threshold_filter_gates_requests() {
        let z = Zipf::new(DB, 0.95);
        let pattern = AccessPattern::population(&z);
        let p = program();
        // Full-cycle threshold: every scheduled page is filtered.
        let mut a = ClientArena::new(
            4,
            DB,
            &[],
            0,
            ThinkTime::Fixed(1.0),
            ThresholdFilter::from_percentage(1.0, p.major_cycle()),
            pattern,
        );
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        for c in 0..4u32 {
            match a.wake(c, 0.0, &p, 0, &mut rng) {
                WakeOutcome::Miss { send_request, .. } => assert!(!send_request),
                WakeOutcome::Hit { .. } => unreachable!("empty ideal set cannot hit"),
            }
        }
        assert_eq!(a.stats().requests_filtered, 4);
        assert_eq!(a.stats().requests_sent, 0);
    }

    #[test]
    fn retry_generation_invalidates_completed_accesses() {
        let mut a = arena(1, 0);
        let p = program();
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let WakeOutcome::Miss { page, .. } = a.wake(0, 0.0, &p, 0, &mut rng) else {
            unreachable!("cold fleet cannot hit");
        };
        let gen = a.arm_retry(0);
        assert_eq!(a.retry_gen(0), gen);
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::standard()
        };
        assert!(a.next_retry_delay(0, &policy, &mut rng).is_some());
        // Delivery completes the access and bumps the generation.
        a.deliver(page, 1.0, &mut rng);
        assert_ne!(a.retry_gen(0), gen, "completion must invalidate timers");
    }

    #[test]
    fn tuned_wakes_draw_like_plain_wakes_and_record_channels() {
        use bpp_broadcast::MultiChannelProgram;
        let p = program();
        let band = |lo: u32, hi: u32| {
            let pages: Vec<PageId> = (lo..hi).map(PageId).collect();
            let spec = DiskSpec::flat(pages.len());
            let a = Assignment::from_ranking(&pages, &spec);
            BroadcastProgram::generate(&a, DB)
        };
        let channels = MultiChannelProgram::from_channels(vec![band(0, 10), band(10, 20)]);
        let filters = vec![ThresholdFilter::pass_all(), ThresholdFilter::pass_all()];
        let mut plain = arena(8, 0);
        let mut tuned = arena(8, 0);
        let mut r1 = Xoshiro256pp::seed_from_u64(21);
        let mut r2 = Xoshiro256pp::seed_from_u64(21);
        for round in 0..20 {
            for c in 0..8u32 {
                let now = round as f64;
                let oa = plain.wake(c, now, &p, 0, &mut r1);
                let ob = tuned.wake_tuned(c, now, &channels, &[0, 0], &filters, &mut r2);
                match (oa, ob) {
                    (WakeOutcome::Miss { page: pa, .. }, WakeOutcome::Miss { page: pb, .. }) => {
                        assert_eq!(pa, pb);
                        let k = tuned.tuned_channel(c).expect("blocked client is tuned");
                        assert!(channels.channel(k).contains(pb));
                        plain.deliver(pa, now + 1.0, &mut r1);
                        tuned.deliver(pb, now + 1.0, &mut r2);
                        assert_eq!(tuned.tuned_channel(c), None, "completion re-tunes");
                    }
                    (WakeOutcome::Hit { next_wake: wa }, WakeOutcome::Hit { next_wake: wb }) => {
                        assert_eq!(wa, wb)
                    }
                    _ => panic!("plain and tuned wakes diverged"),
                }
            }
        }
        assert_eq!(r1.next_u64(), r2.next_u64(), "streams desynchronized");
    }

    #[test]
    fn pull_only_misses_fall_back_to_a_per_page_shard_and_always_request() {
        use bpp_broadcast::MultiChannelProgram;
        // Channels only air pages 0..10; 10..20 are pull-only everywhere.
        let band = |lo: u32, hi: u32| {
            let pages: Vec<PageId> = (lo..hi).map(PageId).collect();
            let spec = DiskSpec::flat(pages.len());
            let a = Assignment::from_ranking(&pages, &spec);
            BroadcastProgram::generate(&a, DB)
        };
        let channels = MultiChannelProgram::from_channels(vec![band(0, 5), band(5, 10)]);
        // Full-cycle filters: on-air misses are filtered, pull-only never.
        let filters: Vec<ThresholdFilter> = (0..2)
            .map(|k| ThresholdFilter::from_percentage(1.0, channels.channel(k).major_cycle()))
            .collect();
        let mut a = arena(1, 0);
        let mut rng = Xoshiro256pp::seed_from_u64(33);
        let mut saw_pull_only = false;
        for round in 0..400 {
            let out = a.wake_tuned(0, round as f64, &channels, &[0, 0], &filters, &mut rng);
            let WakeOutcome::Miss { page, send_request } = out else {
                continue;
            };
            if page.index() >= 10 {
                saw_pull_only = true;
                assert!(send_request, "pull-only miss must use the backchannel");
                assert_eq!(
                    a.tuned_channel(0),
                    Some(page.index() % 2),
                    "fallback shard is per-page deterministic"
                );
            } else {
                assert!(!send_request, "on-air page under a full filter");
            }
            a.deliver(page, round as f64 + 0.5, &mut rng);
        }
        assert!(saw_pull_only, "the workload never drew a pull-only page");
    }

    #[test]
    fn arena_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut a = arena(16, 8);
            let p = program();
            let mut rng = Xoshiro256pp::seed_from_u64(seed);
            let mut log = Vec::new();
            for round in 0..50 {
                let now = round as f64;
                for c in 0..16u32 {
                    if a.waiting_on(c).is_some() {
                        continue;
                    }
                    if let WakeOutcome::Miss { page, .. } = a.wake(c, now, &p, 0, &mut rng) {
                        let batch = a.deliver(page, now + 1.0, &mut rng).to_vec();
                        log.extend(batch);
                    }
                }
            }
            (log, *a.stats())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }
}
