//! # bpp-json — minimal JSON for an air-gapped workspace
//!
//! The repo's serialization needs are tiny and fixed: round-trip
//! [`SystemConfig`]-style structs, emit result/report objects, and write
//! bench trajectories (`BENCH_*.json`). This crate covers exactly that with
//! a tree value type ([`Json`]), a strict recursive-descent parser, compact
//! and pretty writers, and two conversion traits ([`ToJson`] / [`FromJson`])
//! that structs implement by hand — no derive machinery, no external
//! dependencies, streams and bytes stable forever.
//!
//! Conventions follow what `serde_json` produced for the same types, so
//! existing output shapes are preserved:
//!
//! * struct → object with the field names in declaration order;
//! * unit enum variant → its name as a string (`"PurePush"`);
//! * `Option` → `null` or the value;
//! * non-finite floats → `null` (JSON has no `inf`/`nan`);
//! * pretty output indents by two spaces.
//!
//! ```
//! use bpp_json::{FromJson, Json, ToJson};
//!
//! let v = Json::parse(r#"{"db_size": 1000, "zipf_theta": 0.95}"#).unwrap();
//! let n: usize = bpp_json::field(&v, "db_size").unwrap();
//! assert_eq!(n, 1000);
//! assert_eq!(v.get("zipf_theta").and_then(Json::as_f64), Some(0.95));
//! let back = bpp_json::to_string(&vec![1u64, 2, 3]);
//! assert_eq!(back, "[1,2,3]");
//! ```
//!
//! [`SystemConfig`]: https://docs.rs/bpp-core

#![forbid(unsafe_code)]

use std::fmt::Write as _;

/// A JSON document: the usual tree of values.
///
/// Numbers keep their integer-ness: anything written without a fraction or
/// exponent parses to [`Json::Int`] (an `i128`, wide enough for the full
/// `u64` seed space), everything else to [`Json::Float`]. Object member
/// order is preserved — serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is kept as written/built.
    Obj(Vec<(String, Json)>),
}

/// Error from parsing or typed extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
}

impl JsonError {
    /// Create an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError { msg: msg.into() }
    }

    fn at(msg: &str, pos: usize) -> Self {
        JsonError {
            msg: format!("{msg} at byte {pos}"),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for JsonError {}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

impl Json {
    /// Member of an object by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers coerce).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(i) => Some(i as f64),
            Json::Float(x) => Some(x),
            _ => None,
        }
    }

    /// The value as an `i128` (floats do not coerce).
    pub fn as_int(&self) -> Option<i128> {
        match *self {
            Json::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The value as a `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_int().and_then(|i| u64::try_from(i).ok())
    }

    /// The value as a `usize`, if integral and in range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_int().and_then(|i| usize::try_from(i).ok())
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// True for `Json::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Build an object from `(key, value)` pairs (order preserved).
    pub fn object<K: Into<String>>(members: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no inf/nan; serde_json wrote null for them too.
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    // Keep float-ness on round-trip: `1` would re-parse as an integer.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

impl Json {
    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&PAD.repeat(indent + 1));
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&PAD.repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Serialize compactly (no whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Serialize with two-space indentation.
    pub fn dump_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.dump())
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(
                &format!("expected '{}'", b as char),
                self.pos,
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::at("invalid literal", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(JsonError::at("nesting too deep", self.pos));
        }
        self.skip_ws();
        let v = match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(JsonError::at("unexpected character", self.pos)),
            None => Err(JsonError::at("unexpected end of input", self.pos)),
        }?;
        self.depth -= 1;
        Ok(v)
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at("expected ',' or ']'", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(JsonError::at("expected ',' or '}'", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 up to the next quote/escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| JsonError::at("invalid utf-8", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::at("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                self.expect_byte(b'\\')?;
                                self.expect_byte(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(JsonError::at("invalid surrogate", self.pos));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(
                                c.ok_or_else(|| JsonError::at("invalid codepoint", self.pos))?,
                            );
                        }
                        _ => return Err(JsonError::at("unknown escape", self.pos - 1)),
                    }
                }
                Some(_) => return Err(JsonError::at("control character in string", self.pos)),
                None => return Err(JsonError::at("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| JsonError::at("truncated \\u escape", self.pos))?;
        let s =
            std::str::from_utf8(chunk).map_err(|_| JsonError::at("bad \\u escape", self.pos))?;
        let v =
            u32::from_str_radix(s, 16).map_err(|_| JsonError::at("bad \\u escape", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut saw_digit = false;
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    saw_digit = true;
                    self.pos += 1;
                }
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if !saw_digit {
            return Err(JsonError::at("invalid number", start));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at("invalid number", start))?;
        if integral {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::at("invalid number", start))
    }
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at("trailing characters", p.pos));
        }
        Ok(v)
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Types that can serialize themselves to a [`Json`] tree.
pub trait ToJson {
    /// Build the JSON representation.
    fn to_json(&self) -> Json;
}

/// Types that can reconstruct themselves from a [`Json`] tree.
pub trait FromJson: Sized {
    /// Parse from a JSON value.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serialize a value compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().dump()
}

/// Serialize a value with two-space indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().dump_pretty()
}

/// Parse a typed value from JSON text.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&Json::parse(text)?)
}

/// Extract a required typed member of an object (the hand-written
/// `FromJson` impls' workhorse).
pub fn field<T: FromJson>(v: &Json, key: &str) -> Result<T, JsonError> {
    let member = v
        .get(key)
        .ok_or_else(|| JsonError::new(format!("missing field `{key}`")))?;
    T::from_json(member).map_err(|e| JsonError::new(format!("field `{key}`: {e}")))
}

/// Extract an optional typed member of an object: `Ok(None)` when the key is
/// absent (or explicitly `null`), an error only when the member is present
/// but malformed. The backward-compatible way to add struct fields — old
/// documents without the key keep parsing.
pub fn opt_field<T: FromJson>(v: &Json, key: &str) -> Result<Option<T>, JsonError> {
    match v.get(key) {
        None => Ok(None),
        Some(member) => Option::<T>::from_json(member)
            .map_err(|e| JsonError::new(format!("field `{key}`: {e}"))),
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::new("expected bool"))
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::new("expected number"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| JsonError::new("expected string"))
    }
}

macro_rules! int_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(i128::from(*self))
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = v.as_int().ok_or_else(|| JsonError::new("expected integer"))?;
                <$t>::try_from(i).map_err(|_| JsonError::new("integer out of range"))
            }
        }
    )*};
}

int_json!(u8, u16, u32, u64, i8, i16, i32, i64);

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::Int(*self as i128)
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_usize().ok_or_else(|| JsonError::new("expected usize"))
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_array()
            .ok_or_else(|| JsonError::new("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            None => Json::Null,
            Some(x) => x.to_json(),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json(v).map(Some)
        }
    }
}

impl<T: ToJson> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "-7", "12.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.dump(), text, "round-trip of {text}");
        }
    }

    #[test]
    fn integers_keep_full_u64_range() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(v.dump(), "18446744073709551615");
    }

    #[test]
    fn floats_stay_floats() {
        let v = Json::Float(1.0);
        assert_eq!(v.dump(), "1.0");
        let back = Json::parse(&v.dump()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::INFINITY).dump(), "null");
        assert_eq!(Json::Float(f64::NAN).dump(), "null");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{0007}f";
        let v = Json::Str(s.to_string());
        let text = v.dump();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn nested_structures_round_trip() {
        let text = r#"{"a":[1,2.5,null,{"b":true}],"c":"x"}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.dump(), text);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 4);
    }

    #[test]
    fn pretty_output_is_reparseable_and_indented() {
        let v = Json::object([
            ("mean_response", Json::Float(278.4)),
            ("slots", Json::object([("push_pages", Json::Int(12))])),
            ("empty_list", Json::Arr(vec![])),
        ]);
        let pretty = v.dump_pretty();
        assert!(pretty.contains("  \"mean_response\": 278.4"));
        assert!(pretty.contains("    \"push_pages\": 12"));
        assert!(pretty.contains("\"empty_list\": []"));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn object_member_order_is_preserved() {
        let text = r#"{"z":1,"a":2,"m":3}"#;
        assert_eq!(Json::parse(text).unwrap().dump(), text);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"unterminated",
            "{\"a\" 1}",
            "1 2",
            "{'a':1}",
            "[1,]2",
            "nullx",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed {bad:?}");
        }
    }

    #[test]
    fn depth_limit_prevents_stack_overflow() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn typed_field_extraction() {
        let v = Json::parse(r#"{"n": 3, "xs": [1.5, 2.0], "name": null}"#).unwrap();
        let n: usize = field(&v, "n").unwrap();
        let xs: Vec<f64> = field(&v, "xs").unwrap();
        let name: Option<String> = field(&v, "name").unwrap();
        assert_eq!((n, xs, name), (3, vec![1.5, 2.0], None));
        assert!(field::<usize>(&v, "missing").is_err());
        assert!(field::<bool>(&v, "n").is_err());
    }

    #[test]
    fn vec_and_option_to_json() {
        assert_eq!(to_string(&vec![1u32, 2]), "[1,2]");
        assert_eq!(to_string(&Some(2.5f64)), "2.5");
        assert_eq!(to_string(&Option::<f64>::None), "null");
    }

    #[test]
    fn optional_field_extraction() {
        let v = Json::parse(r#"{"n": 3, "name": null}"#).unwrap();
        assert_eq!(opt_field::<usize>(&v, "n").unwrap(), Some(3));
        assert_eq!(opt_field::<usize>(&v, "missing").unwrap(), None);
        assert_eq!(opt_field::<String>(&v, "name").unwrap(), None);
        // Present but malformed is still an error, not None.
        assert!(opt_field::<bool>(&v, "n").is_err());
    }
}
