//! Deterministic observability primitives for the bpp simulator.
//!
//! Everything in this crate is keyed by **simulated** time — there are no
//! wall clocks, no global state, and no hash-order dependence, so enabling
//! observability never perturbs a simulation and two identical runs always
//! produce byte-identical reports. The crate provides four building blocks:
//!
//! * [`Metrics`] — a registry of named counters and gauges backed by
//!   `BTreeMap`, so serialization order is the sorted key order.
//! * [`Timeline`] — a time-weighted series with fixed-stride buckets that
//!   downsamples itself (merging adjacent buckets and doubling the stride)
//!   whenever the simulated horizon outgrows the bucket budget, keeping
//!   memory bounded regardless of run length.
//! * [`TraceRing`] — a bounded ring of structured trace events; the oldest
//!   entries are evicted first and the number of evictions is reported.
//! * [`EngineObs`] — the hook object the simulation engine drives: per-label
//!   dispatch counts plus a queue-depth timeline.
//!
//! [`ObsReport`] aggregates all of the above into a single `ToJson`-able
//! value, and [`ObsConfig`] is the (off-by-default) knob block embedded in
//! the simulator configuration.

#![forbid(unsafe_code)]

pub mod config;
pub mod engine_obs;
pub mod metrics;
pub mod report;
pub mod timeline;
pub mod trace;

pub use config::ObsConfig;
pub use engine_obs::EngineObs;
pub use metrics::{CounterHandle, Metrics};
pub use report::ObsReport;
pub use timeline::Timeline;
pub use trace::{TraceEntry, TraceRing};
