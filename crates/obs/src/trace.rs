//! Bounded ring buffer of structured trace events.

use std::collections::VecDeque;

use bpp_json::{Json, ToJson};

/// One trace event: a static label plus a scalar payload, stamped with the
/// simulated time at which it happened.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Simulated time of the event.
    pub t: f64,
    /// Event kind, e.g. `"saturation_on"` or `"retry_resend"`.
    pub label: &'static str,
    /// Scalar payload; meaning depends on `label`.
    pub value: f64,
}

impl ToJson for TraceEntry {
    fn to_json(&self) -> Json {
        Json::object([
            ("t", self.t.to_json()),
            ("label", self.label.to_json()),
            ("value", self.value.to_json()),
        ])
    }
}

/// A fixed-capacity ring of [`TraceEntry`] values.
///
/// When full, pushing evicts the oldest entry and bumps `dropped`, so the
/// ring always holds the *most recent* `capacity` events and the report
/// still says how much history was shed. A capacity of zero keeps nothing
/// (every push counts as dropped) — the fully-disabled degenerate case.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceRing {
    capacity: usize,
    entries: VecDeque<TraceEntry>,
    dropped: u64,
}

impl TraceRing {
    /// A ring keeping at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(1024)),
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, t: f64, label: &'static str, value: f64) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry { t, label, value });
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries evicted (or rejected at capacity zero) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }
}

impl ToJson for TraceRing {
    fn to_json(&self) -> Json {
        Json::object([
            ("capacity", self.capacity.to_json()),
            ("dropped", self.dropped.to_json()),
            (
                "entries",
                Json::Arr(self.entries.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent_entries_and_counts_evictions() {
        let mut ring = TraceRing::new(2);
        ring.push(1.0, "a", 0.0);
        ring.push(2.0, "b", 0.0);
        ring.push(3.0, "c", 0.0);
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 1);
        let labels: Vec<_> = ring.entries().map(|e| e.label).collect();
        assert_eq!(labels, vec!["b", "c"]);
    }

    #[test]
    fn zero_capacity_rejects_everything() {
        let mut ring = TraceRing::new(0);
        ring.push(1.0, "a", 0.0);
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn json_shape_lists_entries_oldest_first() {
        let mut ring = TraceRing::new(4);
        ring.push(1.5, "x", 2.0);
        let text = bpp_json::to_string(&ring);
        assert_eq!(
            text,
            r#"{"capacity":4,"dropped":0,"entries":[{"t":1.5,"label":"x","value":2.0}]}"#
        );
    }
}
