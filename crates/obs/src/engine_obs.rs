//! Engine-side observability hooks.

use crate::report::ObsReport;
use crate::timeline::Timeline;

/// Instrumentation state the event-loop engine drives on every dispatch:
/// a per-label dispatch counter plus a timeline of the scheduler's pending
/// event count (queue depth).
///
/// Labels are `&'static str` supplied by the model's `event_label`; a model
/// has a handful of them, so the counters live in a small `Vec` walked
/// linearly — on the hot path that is a few pointer compares, cheaper than
/// any map, and allocation-free once a label has been seen. Reports sort by
/// label, so output order is independent of first-dispatch order.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineObs {
    dispatch: Vec<(&'static str, u64)>,
    pending: Timeline,
}

impl EngineObs {
    /// Hooks with a pending-depth timeline of the given bucket stride.
    pub fn new(timeline_stride: f64) -> Self {
        EngineObs {
            dispatch: Vec::new(),
            pending: Timeline::new(timeline_stride),
        }
    }

    /// Record one dispatched event: its label, the simulated time, and the
    /// number of events still pending after the dispatch.
    pub fn on_dispatch(&mut self, label: &'static str, t: f64, pending: usize) {
        // Static labels are usually the *same* static string, so the
        // pointer-equality fast path short-circuits the content compare.
        match self
            .dispatch
            .iter_mut()
            .find(|e| std::ptr::eq(e.0.as_ptr(), label.as_ptr()) || e.0 == label)
        {
            Some(e) => e.1 += 1,
            None => self.dispatch.push((label, 1)),
        }
        self.pending.update(t, pending as f64);
    }

    /// Dispatch count for `label` (zero when never seen).
    pub fn dispatch_count(&self, label: &str) -> u64 {
        self.dispatch
            .iter()
            .find(|e| e.0 == label)
            .map(|e| e.1)
            .unwrap_or(0)
    }

    /// Fold this state into `report`: counters named
    /// `engine.dispatch.<label>` (in sorted label order) plus an
    /// `engine.pending` timeline sealed at `t_end`.
    pub fn report_into(&self, t_end: f64, report: &mut ObsReport) {
        let mut sorted = self.dispatch.clone();
        sorted.sort_unstable_by_key(|e| e.0);
        for (label, count) in sorted {
            report
                .metrics
                .add(&format!("engine.dispatch.{label}"), count);
        }
        report.add_timeline("engine.pending", self.pending.sealed(t_end));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_per_label_and_reports_with_prefix() {
        let mut obs = EngineObs::new(10.0);
        obs.on_dispatch("slot", 1.0, 3);
        obs.on_dispatch("slot", 2.0, 3);
        obs.on_dispatch("wake", 3.0, 2);
        assert_eq!(obs.dispatch_count("slot"), 2);
        assert_eq!(obs.dispatch_count("wake"), 1);
        assert_eq!(obs.dispatch_count("absent"), 0);

        let mut report = ObsReport::new();
        obs.report_into(5.0, &mut report);
        assert_eq!(report.metrics.counter("engine.dispatch.slot"), 2);
        assert_eq!(report.metrics.counter("engine.dispatch.wake"), 1);
        assert_eq!(report.timelines.len(), 1);
        assert_eq!(report.timelines[0].0, "engine.pending");
        // Pending depth held at 3 from t=1 to t=3, then 2 until seal at 5.
        let pts = report.timelines[0].1.points();
        assert_eq!(pts.len(), 1);
        let (_, mean, max) = pts[0];
        assert!((mean - (3.0 * 2.0 + 2.0 * 2.0) / 4.0).abs() < 1e-12);
        assert_eq!(max, 3.0);
    }
}
