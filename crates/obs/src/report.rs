//! Aggregated observability report.

use bpp_json::{Json, ToJson};

use crate::metrics::Metrics;
use crate::timeline::Timeline;
use crate::trace::TraceRing;

/// Everything the observability layer collected over one run: the metric
/// registry, a set of named (sealed) timelines, and the trace ring.
///
/// Serialize-only by design — a report is an *output* of a simulation, never
/// an input, so there is deliberately no `FromJson`. Timelines are stored as
/// an ordered `Vec` of `(name, series)` pairs; producers push them in a
/// fixed order so the JSON is stable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsReport {
    /// Counter / gauge registry.
    pub metrics: Metrics,
    /// Named timeline series, in producer order.
    pub timelines: Vec<(String, Timeline)>,
    /// Structured trace ring (most recent events).
    pub trace: TraceRing,
}

impl ObsReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a named timeline series.
    pub fn add_timeline(&mut self, name: &str, series: Timeline) {
        self.timelines.push((name.to_string(), series));
    }
}

impl ToJson for ObsReport {
    fn to_json(&self) -> Json {
        let timelines = Json::Obj(
            self.timelines
                .iter()
                .map(|(name, series)| (name.clone(), series.to_json()))
                .collect(),
        );
        Json::object([
            ("metrics", self.metrics.to_json()),
            ("timelines", timelines),
            ("trace", self.trace.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_serializes_to_stable_shape() {
        let text = bpp_json::to_string(&ObsReport::new());
        assert_eq!(
            text,
            r#"{"metrics":{"counters":{},"gauges":{}},"timelines":{},"trace":{"capacity":0,"dropped":0,"entries":[]}}"#
        );
    }

    #[test]
    fn timelines_keep_producer_order() {
        let mut report = ObsReport::new();
        report.add_timeline("zeta", Timeline::new(1.0));
        report.add_timeline("alpha", Timeline::new(1.0));
        let text = bpp_json::to_string(&report);
        let zeta = text.find("zeta").expect("zeta present"); // bpp-lint: allow(D3): test asserts key present
        let alpha = text.find("alpha").expect("alpha present"); // bpp-lint: allow(D3): test asserts key present
        assert!(zeta < alpha, "producer order preserved, not sorted");
    }
}
