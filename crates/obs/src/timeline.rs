//! Time-weighted series with bounded, self-downsampling buckets.

use bpp_json::{Json, ToJson};

/// Default bucket budget for a [`Timeline`]; past this the series merges
/// adjacent buckets and doubles its stride, so memory stays O(1) in run
/// length while resolution degrades by at most 2x per doubling.
pub const DEFAULT_MAX_BUCKETS: usize = 512;

/// One fixed-width bucket of a [`Timeline`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Bucket {
    /// Integral of the held value over the covered span.
    weighted_sum: f64,
    /// Total simulated time covered inside this bucket.
    span: f64,
    /// Maximum value held at any point inside this bucket.
    max: f64,
}

/// A step-function series sampled against simulated time.
///
/// `update(t, v)` records that the observed quantity becomes `v` at time
/// `t`; the previous value is credited for the interval since the previous
/// update, split across fixed-stride buckets. When an update lands past the
/// bucket budget the series *downsamples*: adjacent buckets merge and the
/// stride doubles, repeatedly, until the new time fits. Reports therefore
/// stay small no matter how long the simulation runs.
///
/// A value held for zero simulated time contributes nothing (neither weight
/// nor max) — the series describes what the quantity *was over time*, not
/// which instantaneous values were ever assigned.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    stride: f64,
    max_buckets: usize,
    buckets: Vec<Bucket>,
    last_time: f64,
    last_value: f64,
    primed: bool,
}

impl Timeline {
    /// A series with the given initial bucket stride (simulated seconds)
    /// and the default bucket budget.
    ///
    /// # Panics
    /// Panics unless `stride` is finite and positive — a zero or negative
    /// stride would make every bucket index meaningless.
    pub fn new(stride: f64) -> Self {
        Self::with_max_buckets(stride, DEFAULT_MAX_BUCKETS)
    }

    /// A series with an explicit bucket budget (mostly for tests).
    ///
    /// # Panics
    /// Panics unless `stride` is finite and positive and `max_buckets` is
    /// at least 2 (downsampling merges pairs, so one bucket cannot shrink).
    pub fn with_max_buckets(stride: f64, max_buckets: usize) -> Self {
        assert!(
            stride.is_finite() && stride > 0.0,
            "timeline stride must be finite and positive"
        );
        assert!(max_buckets >= 2, "timeline needs at least two buckets");
        Timeline {
            stride,
            max_buckets,
            buckets: Vec::new(),
            last_time: 0.0,
            last_value: 0.0,
            primed: false,
        }
    }

    /// Record that the observed value becomes `v` at simulated time `t`.
    ///
    /// # Panics
    /// Panics when `t` is non-finite, negative, or moves backwards — a
    /// backwards sample would credit a negative span and silently corrupt
    /// every bucket after it.
    pub fn update(&mut self, t: f64, v: f64) {
        assert!(
            t.is_finite() && t >= 0.0,
            "timeline time must be finite and non-negative"
        );
        if !self.primed {
            self.primed = true;
            self.last_time = t;
            self.last_value = v;
            return;
        }
        assert!(t >= self.last_time, "timeline time must be monotone");
        let (t0, value) = (self.last_time, self.last_value);
        self.accumulate(t0, t, value);
        self.last_time = t;
        self.last_value = v;
    }

    /// Current bucket stride (doubles on every downsampling pass).
    pub fn stride(&self) -> f64 {
        self.stride
    }

    /// A copy with the currently-held value credited up to `t_end`, ready
    /// for reporting. The original keeps accumulating unchanged.
    ///
    /// # Panics
    /// Panics when `t_end` precedes the last recorded update.
    pub fn sealed(&self, t_end: f64) -> Timeline {
        let mut out = self.clone();
        if out.primed && t_end > out.last_time {
            let v = out.last_value;
            out.update(t_end, v);
        }
        out
    }

    /// The non-empty buckets as `(bucket_start, time_weighted_mean, max)`.
    pub fn points(&self) -> Vec<(f64, f64, f64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.span > 0.0)
            .map(|(i, b)| (i as f64 * self.stride, b.weighted_sum / b.span, b.max))
            .collect()
    }

    /// Credit `value` over the interval `[t0, t1)`, splitting across
    /// buckets and downsampling first if `t1` lands past the budget.
    fn accumulate(&mut self, mut t0: f64, t1: f64, value: f64) {
        if t1 <= t0 {
            return;
        }
        while t1 >= self.stride * self.max_buckets as f64 {
            self.downsample();
        }
        while t0 < t1 {
            let idx = ((t0 / self.stride) as usize).min(self.max_buckets - 1);
            if self.buckets.len() <= idx {
                self.buckets.resize(idx + 1, Bucket::default());
            }
            let bucket_end = (idx as f64 + 1.0) * self.stride;
            let seg_end = if bucket_end < t1 { bucket_end } else { t1 };
            let b = &mut self.buckets[idx];
            b.weighted_sum += value * (seg_end - t0);
            b.span += seg_end - t0;
            b.max = b.max.max(value);
            if seg_end <= t0 {
                break;
            }
            t0 = seg_end;
        }
    }

    /// Merge adjacent bucket pairs and double the stride.
    fn downsample(&mut self) {
        let mut merged = Vec::with_capacity(self.buckets.len().div_ceil(2));
        for pair in self.buckets.chunks(2) {
            let mut b = pair[0];
            if let Some(second) = pair.get(1) {
                b.weighted_sum += second.weighted_sum;
                b.span += second.span;
                b.max = b.max.max(second.max);
            }
            merged.push(b);
        }
        self.buckets = merged;
        self.stride *= 2.0;
    }
}

impl ToJson for Timeline {
    fn to_json(&self) -> Json {
        let points: Vec<Json> = self
            .points()
            .into_iter()
            .map(|(t, mean, max)| {
                Json::object([
                    ("t", t.to_json()),
                    ("mean", mean.to_json()),
                    ("max", max.to_json()),
                ])
            })
            .collect();
        Json::object([
            ("stride", self.stride.to_json()),
            ("points", Json::Arr(points)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bucket_mean_is_time_weighted() {
        let mut tl = Timeline::new(10.0);
        tl.update(0.0, 2.0);
        tl.update(4.0, 6.0); // 2.0 held for 4s
        tl.update(8.0, 6.0); // 6.0 held for 4s
        let pts = tl.points();
        assert_eq!(pts.len(), 1);
        let (start, mean, max) = pts[0];
        assert_eq!(start, 0.0);
        assert!((mean - 4.0).abs() < 1e-12);
        assert_eq!(max, 6.0);
    }

    #[test]
    fn segments_split_across_bucket_boundaries() {
        let mut tl = Timeline::new(1.0);
        tl.update(0.5, 3.0);
        tl.update(2.5, 3.0); // spans buckets 0, 1, 2
        let pts = tl.points();
        assert_eq!(pts.len(), 3);
        for (_, mean, max) in pts {
            assert!((mean - 3.0).abs() < 1e-12);
            assert_eq!(max, 3.0);
        }
    }

    #[test]
    fn downsampling_doubles_stride_and_preserves_total_weight() {
        let mut tl = Timeline::with_max_buckets(1.0, 4);
        tl.update(0.0, 1.0);
        tl.update(16.0, 1.0); // needs 16 buckets of stride 1 -> two doublings
        assert!(tl.stride() >= 4.0);
        let total_weight: f64 = tl
            .points()
            .iter()
            .map(|(_, mean, _)| mean * tl.stride())
            .sum();
        assert!((total_weight - 16.0).abs() < 1e-9);
    }

    #[test]
    fn sealed_credits_the_open_segment_without_mutating() {
        let mut tl = Timeline::new(100.0);
        tl.update(0.0, 5.0);
        assert!(tl.points().is_empty());
        let sealed = tl.sealed(50.0);
        let pts = sealed.points();
        assert_eq!(pts.len(), 1);
        assert!((pts[0].1 - 5.0).abs() < 1e-12);
        // Original unchanged: still no closed segment.
        assert!(tl.points().is_empty());
    }

    #[test]
    fn zero_width_update_contributes_nothing() {
        let mut tl = Timeline::new(1.0);
        tl.update(0.5, 100.0);
        tl.update(0.5, 1.0); // 100.0 held for zero time
        tl.update(1.0, 1.0);
        let pts = tl.points();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].2, 1.0);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn backwards_time_panics() {
        let mut tl = Timeline::new(1.0);
        tl.update(2.0, 1.0);
        tl.update(1.0, 1.0);
    }

    #[test]
    fn json_shape_is_stride_plus_points() {
        let mut tl = Timeline::new(2.0);
        tl.update(0.0, 1.0);
        tl.update(2.0, 1.0);
        let text = bpp_json::to_string(&tl);
        assert_eq!(
            text,
            r#"{"stride":2.0,"points":[{"t":0.0,"mean":1.0,"max":1.0}]}"#
        );
    }
}
