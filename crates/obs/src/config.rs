//! Observability configuration block.

use bpp_json::{field, opt_field, FromJson, Json, JsonError, ToJson};

/// Knobs for the observability layer. Disabled by default so that every
/// committed golden stays byte-identical; when `enabled` is false no
/// instrumentation state is allocated and no `obs` section is emitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsConfig {
    /// Master switch; everything below is inert when false.
    pub enabled: bool,
    /// Initial bucket width (simulated seconds) for timeline series.
    pub timeline_stride: f64,
    /// Maximum number of structured trace events retained.
    pub trace_capacity: u64,
    /// Record the Measured Client's cumulative cache hit rate as a
    /// per-slot timeline (`client.mc.hit_rate`). Off by default; the JSON
    /// key is omitted entirely while false so older configs and goldens
    /// stay byte-identical.
    pub mc_hit_rate: bool,
    /// Record each broadcast disk's cumulative share of push slots as
    /// per-slot timelines (`broadcast.disk<k>.share`), padding included —
    /// padding is bandwidth charged to its disk. Off by default; the JSON
    /// key is omitted entirely while false so older configs and goldens
    /// stay byte-identical.
    pub disk_share: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            timeline_stride: 100.0,
            trace_capacity: 256,
            mc_hit_rate: false,
            disk_share: false,
        }
    }
}

impl ObsConfig {
    /// Check the knobs for internal consistency.
    ///
    /// `timeline_stride` must be finite and positive (it seeds timeline
    /// bucket widths); `trace_capacity` is capped at one million so a typo
    /// cannot balloon into gigabytes of retained trace.
    pub fn validate(&self) -> Result<(), String> {
        let ObsConfig {
            enabled: _,
            timeline_stride,
            trace_capacity,
            // Boolean toggles: no value of these is inconsistent.
            mc_hit_rate: _,
            disk_share: _,
        } = *self;
        if !(timeline_stride.is_finite() && timeline_stride > 0.0) {
            return Err(format!(
                "timeline_stride must be finite and positive, got {timeline_stride}"
            ));
        }
        if trace_capacity > 1_000_000 {
            return Err(format!(
                "trace_capacity must be at most 1000000, got {trace_capacity}"
            ));
        }
        Ok(())
    }
}

impl ToJson for ObsConfig {
    fn to_json(&self) -> Json {
        let mut obj = Json::object([
            ("enabled", self.enabled.to_json()),
            ("timeline_stride", self.timeline_stride.to_json()),
            ("trace_capacity", self.trace_capacity.to_json()),
        ]);
        if self.mc_hit_rate {
            if let Json::Obj(members) = &mut obj {
                members.push(("mc_hit_rate".to_string(), self.mc_hit_rate.to_json()));
            }
        }
        if self.disk_share {
            if let Json::Obj(members) = &mut obj {
                members.push(("disk_share".to_string(), self.disk_share.to_json()));
            }
        }
        obj
    }
}

impl FromJson for ObsConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ObsConfig {
            enabled: field(v, "enabled")?,
            timeline_stride: field(v, "timeline_stride")?,
            trace_capacity: field(v, "trace_capacity")?,
            mc_hit_rate: opt_field(v, "mc_hit_rate")?.unwrap_or_default(),
            disk_share: opt_field(v, "disk_share")?.unwrap_or_default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_valid() {
        let cfg = ObsConfig::default();
        assert!(!cfg.enabled);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn json_round_trips() {
        let cfg = ObsConfig {
            enabled: true,
            timeline_stride: 50.0,
            trace_capacity: 32,
            mc_hit_rate: true,
            disk_share: true,
        };
        let text = bpp_json::to_string(&cfg);
        assert!(text.contains("mc_hit_rate"));
        assert!(text.contains("disk_share"));
        let back: ObsConfig = bpp_json::from_str(&text).expect("round trip"); // bpp-lint: allow(D3): test asserts parse success
        assert_eq!(back, cfg);
    }

    #[test]
    fn disabled_mc_hit_rate_emits_no_key() {
        let cfg = ObsConfig {
            enabled: true,
            ..ObsConfig::default()
        };
        let text = bpp_json::to_string(&cfg);
        assert!(!text.contains("mc_hit_rate"));
        assert!(!text.contains("disk_share"));
        let back: ObsConfig = bpp_json::from_str(&text).expect("round trip"); // bpp-lint: allow(D3): test asserts parse success
        assert_eq!(back, cfg);
    }

    #[test]
    fn validate_rejects_bad_stride_and_huge_trace() {
        let mut cfg = ObsConfig {
            timeline_stride: 0.0,
            ..ObsConfig::default()
        };
        assert!(cfg.validate().is_err());
        cfg.timeline_stride = f64::INFINITY;
        assert!(cfg.validate().is_err());
        cfg.timeline_stride = 1.0;
        cfg.trace_capacity = 2_000_000;
        assert!(cfg.validate().is_err());
    }
}
