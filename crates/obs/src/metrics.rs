//! Named counter / gauge registry with deterministic serialization.

use std::collections::BTreeMap;

use bpp_json::{Json, ToJson};

/// Wiring-time handle for one counter: a dense index into the registry's
/// value table, obtained once from [`Metrics::counter_handle`] and then
/// bumped with [`Metrics::inc_handle`] / [`Metrics::add_handle`] at a cost
/// of one bounds-checked array add — no string hashing or tree walk on the
/// hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// A registry of monotonically increasing counters and last-value gauges.
///
/// Keys are plain dotted strings (`"server.push_slots"`). Counter values
/// live in a dense `Vec<u64>` indexed by interned [`CounterHandle`]s; a
/// `BTreeMap` maps each name to its slot, so iteration — and therefore
/// JSON output — is in sorted key order, independent of insertion order.
/// Hot paths intern a handle once at wiring time and index the value table
/// directly; the by-name [`Metrics::inc`] / [`Metrics::add`] convenience
/// entry points pay the map lookup each call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Dense counter value table, indexed by [`CounterHandle`].
    values: Vec<u64>,
    /// Name → value-table slot; the sorted iteration order for reports.
    by_name: BTreeMap<String, usize>,
    gauges: BTreeMap<String, f64>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, creating its counter at zero on first sight, and
    /// return the handle for O(1) increments. Interning the same name
    /// twice returns the same handle.
    pub fn counter_handle(&mut self, name: &str) -> CounterHandle {
        if let Some(&slot) = self.by_name.get(name) {
            return CounterHandle(slot);
        }
        let slot = self.values.len();
        self.values.push(0);
        self.by_name.insert(name.to_string(), slot);
        CounterHandle(slot)
    }

    /// Increment the counter behind `handle` by one.
    pub fn inc_handle(&mut self, handle: CounterHandle) {
        self.values[handle.0] += 1;
    }

    /// Increment the counter behind `handle` by `by`.
    pub fn add_handle(&mut self, handle: CounterHandle, by: u64) {
        self.values[handle.0] += by;
    }

    /// Increment counter `name` by one (creating it at zero first).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increment counter `name` by `by` (creating it at zero first).
    pub fn add(&mut self, name: &str, by: u64) {
        let handle = self.counter_handle(name);
        self.values[handle.0] += by;
    }

    /// Set gauge `name` to `value` (last write wins).
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of counter `name` (zero when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.by_name
            .get(name)
            .map(|&slot| self.values[slot])
            .unwrap_or(0)
    }

    /// Current value of gauge `name`, if it has been set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// True when no counter or gauge has ever been written (interning a
    /// handle counts as a write, like the old `add(name, 0)`).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty() && self.gauges.is_empty()
    }

    /// Iterate counters in sorted key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.by_name
            .iter()
            .map(|(k, &slot)| (k.as_str(), self.values[slot]))
    }

    /// Iterate gauges in sorted key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        Json::object([("counters", counters), ("gauges", gauges)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn handles_index_the_same_counter_as_the_name() {
        let mut m = Metrics::new();
        let h = m.counter_handle("hot.path");
        assert_eq!(m.counter("hot.path"), 0, "interning creates at zero");
        m.inc_handle(h);
        m.add_handle(h, 9);
        m.inc("hot.path");
        assert_eq!(m.counter("hot.path"), 11);
        let h2 = m.counter_handle("hot.path");
        assert_eq!(h, h2, "re-interning returns the same slot");
    }

    #[test]
    fn gauges_keep_the_last_value() {
        let mut m = Metrics::new();
        assert_eq!(m.gauge_value("g"), None);
        m.gauge("g", 1.5);
        m.gauge("g", -2.0);
        assert_eq!(m.gauge_value("g"), Some(-2.0));
    }

    #[test]
    fn json_is_sorted_by_key_regardless_of_insertion_order() {
        let mut m = Metrics::new();
        m.inc("zeta");
        m.inc("alpha");
        m.gauge("mid", 0.25);
        let text = bpp_json::to_string(&m);
        assert_eq!(
            text,
            r#"{"counters":{"alpha":1,"zeta":1},"gauges":{"mid":0.25}}"#
        );
    }

    #[test]
    fn iterators_walk_sorted_keys() {
        let mut m = Metrics::new();
        m.inc("b");
        m.inc("a");
        m.gauge("g", 1.0);
        let keys: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b"]);
        assert_eq!(m.gauges().next(), Some(("g", 1.0)));
    }

    #[test]
    fn is_empty_reflects_any_write() {
        let mut m = Metrics::new();
        assert!(m.is_empty());
        m.gauge("g", 0.0);
        assert!(!m.is_empty());
    }

    #[test]
    fn interning_alone_registers_the_counter() {
        let mut m = Metrics::new();
        m.counter_handle("wired.but.quiet");
        assert!(!m.is_empty());
        let keys: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, ["wired.but.quiet"]);
    }
}
