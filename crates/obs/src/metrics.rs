//! Named counter / gauge registry with deterministic serialization.

use std::collections::BTreeMap;

use bpp_json::{Json, ToJson};

/// A registry of monotonically increasing counters and last-value gauges.
///
/// Keys are plain dotted strings (`"server.push_slots"`). Storage is a
/// `BTreeMap`, so iteration — and therefore JSON output — is in sorted key
/// order, independent of insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment counter `name` by one (creating it at zero first).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Increment counter `name` by `by` (creating it at zero first).
    pub fn add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Set gauge `name` to `value` (last write wins).
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of counter `name` (zero when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`, if it has been set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// True when no counter or gauge has ever been written.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Iterate counters in sorted key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate gauges in sorted key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        Json::object([("counters", counters), ("gauges", gauges)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut m = Metrics::new();
        assert_eq!(m.counter("x"), 0);
        m.inc("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn gauges_keep_the_last_value() {
        let mut m = Metrics::new();
        assert_eq!(m.gauge_value("g"), None);
        m.gauge("g", 1.5);
        m.gauge("g", -2.0);
        assert_eq!(m.gauge_value("g"), Some(-2.0));
    }

    #[test]
    fn json_is_sorted_by_key_regardless_of_insertion_order() {
        let mut m = Metrics::new();
        m.inc("zeta");
        m.inc("alpha");
        m.gauge("mid", 0.25);
        let text = bpp_json::to_string(&m);
        assert_eq!(
            text,
            r#"{"counters":{"alpha":1,"zeta":1},"gauges":{"mid":0.25}}"#
        );
    }

    #[test]
    fn iterators_walk_sorted_keys() {
        let mut m = Metrics::new();
        m.inc("b");
        m.inc("a");
        m.gauge("g", 1.0);
        let keys: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "b"]);
        assert_eq!(m.gauges().next(), Some(("g", 1.0)));
    }

    #[test]
    fn is_empty_reflects_any_write() {
        let mut m = Metrics::new();
        assert!(m.is_empty());
        m.gauge("g", 0.0);
        assert!(!m.is_empty());
    }
}
