//! Cross-file workspace model for the semantic rules (D7, D8, D10).
//!
//! A [`Workspace`] owns every analyzed file (token stream + parsed items)
//! plus the out-of-band context the semantic rules need: the DESIGN.md
//! text (D8's documentation surface), the `results/` artifact listing and
//! the script/workflow reference texts (D10), and name-resolution indices
//! mapping function and type names to the **component** that defines them
//! (D7).
//!
//! ## Components
//!
//! A component is the unit of RNG-stream ownership: one of the workspace
//! crates (`server`, `client`, `workload`, `cache`, `broadcast`, `core`),
//! with `crates/core/src/fault.rs` split out as its own `fault` component
//! (the fault layer owns two dedicated streams). `crates/sim` is *not* a
//! component — it is the neutral home of the RNG plumbing itself, and
//! indexing its `Rng` trait methods would make every draw look like a
//! cross-component flow.
//!
//! ## Name resolution
//!
//! Resolution is by bare name, deliberately: `mux.decide(…)` resolves via
//! the set of components defining a fn `decide`. A name defined in two or
//! more components is **ambiguous and never resolved** — D7 would rather
//! miss a flow than invent one. Qualified calls (`FaultLayer::new`)
//! resolve through the type index first, which disambiguates the
//! otherwise-everywhere names like `new`.

use crate::cfg::{build_cfg, Cfg};
use crate::expr::{parse_body, ExprArena, ExprId};
use crate::parse::{parse_file, ParsedFile};
use crate::rules::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// A function body lowered for dataflow: its expression arena, the root
/// block node, and the control-flow graph over arena statements. Built
/// once per fn; the dataflow rules (D11–D13) all interpret the same
/// lowering.
pub struct Body {
    /// Arena holding every expression of the body (plus CFG synthetics).
    pub arena: ExprArena,
    /// The root `Block` node.
    pub root: ExprId,
    /// The body's control-flow graph.
    pub cfg: Cfg,
}

/// One file plus its parsed item structure.
pub struct Analysis {
    /// The lexed file.
    pub file: SourceFile,
    /// Its parsed item structure.
    pub items: ParsedFile,
    /// Lowered bodies, parallel to `items.fns` (`None` for bodyless trait
    /// method declarations).
    pub bodies: Vec<Option<Body>>,
}

impl Analysis {
    /// Lex-independent constructor: parse the items of an already-built
    /// [`SourceFile`] and lower every fn body for dataflow.
    pub fn new(file: SourceFile) -> Analysis {
        let items = parse_file(&file);
        let bodies = items
            .fns
            .iter()
            .map(|item| {
                item.body.map(|(lo, hi)| {
                    let mut arena = ExprArena::default();
                    let root = parse_body(&file, &mut arena, lo, hi);
                    let cfg = build_cfg(&mut arena, root);
                    Body { arena, root, cfg }
                })
            })
            .collect();
        Analysis {
            file,
            items,
            bodies,
        }
    }
}

/// The component that owns library code at `rel`, or `None` when the file
/// is out of scope for stream-flow analysis (tests, bins, `crates/sim`,
/// non-crate paths).
pub fn component_of(rel: &str, library: bool) -> Option<String> {
    if !library {
        return None;
    }
    if rel == "crates/core/src/fault.rs" {
        return Some("fault".to_string());
    }
    let mut parts = rel.split('/');
    if parts.next() != Some("crates") {
        return None;
    }
    let krate = parts.next()?;
    if krate == "sim" || krate == "lint" {
        return None;
    }
    Some(krate.to_string())
}

/// Everything the cross-file rules see.
pub struct Workspace<'a> {
    /// Every analyzed file, in sorted-relative-path order.
    pub files: &'a [Analysis],
    /// fn name → components defining a non-test fn of that name.
    pub fn_components: BTreeMap<String, BTreeSet<String>>,
    /// fn name → (file index, fn index) of every non-test definition.
    pub fn_defs: BTreeMap<String, Vec<(usize, usize)>>,
    /// struct/impl type name → components defining it.
    pub type_components: BTreeMap<String, BTreeSet<String>>,
    /// Raw DESIGN.md text at the linted root, when present (D8).
    pub design_md: Option<String>,
    /// `results/<name>` artifact file names at the linted root (D10).
    pub artifacts: Vec<String>,
    /// Raw text of `scripts/*` and `.github/workflows/*` at the root —
    /// non-Rust places an artifact may legitimately be referenced (D10).
    pub reference_texts: Vec<String>,
}

impl<'a> Workspace<'a> {
    /// Build the indices over `files`; the out-of-band context is passed
    /// in by the driver (`lint_root`) so this stays filesystem-free.
    pub fn build(
        files: &'a [Analysis],
        design_md: Option<String>,
        artifacts: Vec<String>,
        reference_texts: Vec<String>,
    ) -> Workspace<'a> {
        let mut ws = Workspace {
            files,
            fn_components: BTreeMap::new(),
            fn_defs: BTreeMap::new(),
            type_components: BTreeMap::new(),
            design_md,
            artifacts,
            reference_texts,
        };
        for (fi, a) in files.iter().enumerate() {
            let Some(comp) = component_of(&a.file.rel, a.file.scope.library) else {
                continue;
            };
            for (gi, item) in a.items.fns.iter().enumerate() {
                if a.file.in_test(item.line) {
                    continue;
                }
                ws.fn_components
                    .entry(item.name.clone())
                    .or_default()
                    .insert(comp.clone());
                ws.fn_defs
                    .entry(item.name.clone())
                    .or_default()
                    .push((fi, gi));
            }
            for s in &a.items.structs {
                if a.file.in_test(s.line) {
                    continue;
                }
                ws.type_components
                    .entry(s.name.clone())
                    .or_default()
                    .insert(comp.clone());
            }
            for im in &a.items.impls {
                if a.file.in_test(im.line) {
                    continue;
                }
                ws.type_components
                    .entry(im.type_name.clone())
                    .or_default()
                    .insert(comp.clone());
            }
        }
        ws
    }

    /// The unique component defining fn `name`, or `None` when the name
    /// is unknown or ambiguous across components.
    pub fn fn_component(&self, name: &str) -> Option<&str> {
        unique(self.fn_components.get(name)?)
    }

    /// The unique component defining type `name` (struct or impl target).
    pub fn type_component(&self, name: &str) -> Option<&str> {
        unique(self.type_components.get(name)?)
    }

    /// Resolve the callee of a call whose `(` sits at code index `open`
    /// in `f`, to the component that would receive the flow:
    ///
    /// * `Type::method(…)` → the type's component (falls back to the
    ///   method name when the type is unknown);
    /// * `recv.method(…)` → the method name's unique component;
    /// * `free_fn(…)` → the fn name's unique component;
    /// * macros (`name!(…)`) and anything ambiguous → `None`.
    ///
    /// Returns the callee's fn name too, so D7 can chase the flow through
    /// that fn's own body (see [`crate::rules::stream_flow`]).
    pub fn resolve_call(&self, f: &SourceFile, open: usize) -> Option<(String, String)> {
        if open == 0 {
            return None;
        }
        let callee_at = open - 1;
        if f.kind(callee_at) != Some(crate::lexer::TokenKind::Ident) {
            return None;
        }
        let callee = f.text(callee_at).to_string();
        let before = if callee_at >= 1 {
            f.text(callee_at - 1)
        } else {
            ""
        };
        if before == "!" {
            return None; // macro
        }
        if before == "::" && callee_at >= 2 {
            // `Type::method` (or a longer path — the segment directly
            // before `::` decides).
            let qual = f.text(callee_at - 2);
            if let Some(comp) = self.type_component(qual) {
                return Some((callee, comp.to_string()));
            }
            // Unknown qualifier (e.g. a module path): fall back to the
            // method name itself.
        }
        self.fn_component(&callee)
            .map(|comp| (callee.clone(), comp.to_string()))
    }
}

/// The sole element of a one-element set, else `None`.
fn unique(set: &BTreeSet<String>) -> Option<&str> {
    if set.len() == 1 {
        set.iter().next().map(String::as_str)
    } else {
        None
    }
}
