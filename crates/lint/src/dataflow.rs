//! Generic forward abstract interpretation over a [`Cfg`].
//!
//! A rule supplies a lattice: an entry state, a transfer function over
//! one statement, and a join. The driver runs the classic worklist
//! algorithm to a fixpoint and hands back the **in-state of every
//! reachable block**; the rule then makes a single deterministic
//! reporting pass, re-running its transfer over each reachable block
//! from its fixpoint in-state and emitting diagnostics as it goes.
//!
//! The worklist is a `BTreeSet` popped smallest-first, so evaluation
//! order — and therefore any diagnostics collected during transfer — is
//! a pure function of the CFG, never of hash order. A conservative
//! iteration cap bounds non-monotone transfer functions: if a lattice
//! fails to converge the driver stops joining and keeps the last states,
//! which for the may/must analyses built on it only widens the answer
//! (more "possible", less "definite") — diagnostics stay sound, and the
//! lint always terminates.

use crate::cfg::Cfg;
use crate::expr::ExprId;
use std::collections::BTreeSet;

/// A forward dataflow analysis: state type, entry state, transfer, join.
pub trait Lattice {
    /// The abstract state attached to a program point.
    type State: Clone + PartialEq;

    /// State on entry to the function.
    fn entry_state(&self) -> Self::State;

    /// Advance `state` across one statement.
    fn transfer(&mut self, state: &mut Self::State, stmt: ExprId);

    /// Merge `other` into `into` at a join point.
    fn join(&self, into: &mut Self::State, other: &Self::State);
}

/// Run `lattice` forward over `cfg`; returns the fixpoint in-state of
/// each block (`None` for blocks unreachable from entry).
pub fn forward<L: Lattice>(cfg: &Cfg, lattice: &mut L) -> Vec<Option<L::State>> {
    let n = cfg.blocks.len();
    let mut in_states: Vec<Option<L::State>> = vec![None; n];
    in_states[cfg.entry] = Some(lattice.entry_state());
    let mut work: BTreeSet<usize> = BTreeSet::new();
    work.insert(cfg.entry);
    // Monotone lattices converge long before this; the cap only guards
    // against a buggy non-monotone transfer.
    let mut budget = n.saturating_mul(64) + 64;
    while let Some(&b) = work.iter().next() {
        work.remove(&b);
        if budget == 0 {
            break;
        }
        budget -= 1;
        let Some(mut state) = in_states[b].clone() else {
            continue;
        };
        for &stmt in &cfg.blocks[b].stmts {
            lattice.transfer(&mut state, stmt);
        }
        for &succ in &cfg.blocks[b].succs {
            match &mut in_states[succ] {
                Some(existing) => {
                    let before = existing.clone();
                    lattice.join(existing, &state);
                    if *existing != before {
                        work.insert(succ);
                    }
                }
                slot @ None => {
                    *slot = Some(state.clone());
                    work.insert(succ);
                }
            }
        }
    }
    in_states
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::build_cfg;
    use crate::expr::{parse_body, ExprArena, ExprKind};
    use crate::lexer::lex;
    use crate::parse::parse_file;
    use crate::rules::SourceFile;

    /// A toy must-analysis: the set of names definitely `let`-bound on
    /// every path (intersection join).
    struct DefiniteLets<'a> {
        arena: &'a ExprArena,
    }

    impl<'a> Lattice for DefiniteLets<'a> {
        type State = std::collections::BTreeSet<String>;

        fn entry_state(&self) -> Self::State {
            Default::default()
        }

        fn transfer(&mut self, state: &mut Self::State, stmt: ExprId) {
            if let ExprKind::Let { names, .. } = &self.arena.get(stmt).kind {
                state.extend(names.iter().cloned());
            }
        }

        fn join(&self, into: &mut Self::State, other: &Self::State) {
            into.retain(|n| other.contains(n));
        }
    }

    fn run(src: &str) -> Vec<Option<std::collections::BTreeSet<String>>> {
        let f = SourceFile::new(
            "crates/core/src/x.rs".to_string(),
            lex(src).expect("test source must lex"),
        );
        let items = parse_file(&f);
        let (lo, hi) = items.fns[0].body.expect("fn must have a body");
        let mut arena = ExprArena::default();
        let root = parse_body(&f, &mut arena, lo, hi);
        let cfg = build_cfg(&mut arena, root);
        let mut lat = DefiniteLets { arena: &arena };
        forward(&cfg, &mut lat)
    }

    #[test]
    fn branch_local_lets_are_not_definite_at_join() {
        let states = run("fn f(c: bool) { let a = 1; if c { let b = 2; use_it(b); } tail(a); }");
        // Some reachable block (the join) must know `a` but not `b`.
        let has_join = states
            .iter()
            .flatten()
            .any(|s| s.contains("a") && !s.contains("b"));
        assert!(has_join, "intersection join must drop branch-local lets");
    }

    #[test]
    fn both_branch_lets_survive_join() {
        let states = run("fn f(c: bool) { if c { let x = 1; } else { let x = 2; } tail(); }");
        let join_knows_x = states.iter().flatten().any(|s| s.contains("x"));
        assert!(join_knows_x, "a name bound in both branches is definite");
    }

    #[test]
    fn loop_reaches_fixpoint() {
        // The back edge must not loop forever; the analysis terminates
        // and the exit is reachable.
        let states = run("fn f() { let mut i = 0; while go(i) { i += 1; } done(i); }");
        assert!(states.iter().filter(|s| s.is_some()).count() >= 3);
    }
}
