//! Expression-level parser for function bodies.
//!
//! The item parser ([`crate::parse`]) recovers *where* code lives; the
//! dataflow rules (D11–D13) need to know *what it does*: which names a
//! `let` binds, which fields an assignment writes, which function a call
//! reaches, which variant a `return` produces. This module parses the
//! code-token range of one function body into an arena of expression
//! nodes — a Pratt parser with the standard Rust precedence ladder
//! (assignment < range < `||` < `&&` < comparison < `|` < `^` < `&` <
//! shift < additive < multiplicative < `as` < unary < postfix).
//!
//! Like every layer of `bpp-lint`, the parser is **total**: any token
//! sequence it cannot place becomes an [`ExprKind::Opaque`] node that
//! consumes at least one token, so parsing always terminates and never
//! fails. Rules built on top treat `Opaque` as "unknown value" — the
//! conservative answer. Constructs without dataflow value (macro bodies,
//! array literals, type ascriptions) are deliberately opaque; constructs
//! with it (if/match/while/for, struct literals, casts, closures) keep
//! their structure.
//!
//! Every node records its 1-based start line and its half-open
//! **code-token index** span (`SourceFile::code` positions), so rules can
//! re-read exact source tokens — the `--fix` applier turns single-token
//! spans into byte columns via [`crate::lexer::Token::col`].

use crate::lexer::TokenKind;
use crate::parse::{matching, skip_generics};
use crate::rules::SourceFile;

/// Index of an expression node in its [`ExprArena`].
pub type ExprId = u32;

/// One match arm: the names its pattern binds (lowercase idents only —
/// constructors and paths are skipped) and its body expression. Guards
/// are consumed but not modelled.
#[derive(Debug, Clone)]
pub struct MatchArm {
    /// Names bound by the arm's pattern.
    pub bound: Vec<String>,
    /// The arm's body expression.
    pub body: ExprId,
}

/// The expression grammar the dataflow rules interpret.
#[derive(Debug, Clone)]
pub enum ExprKind {
    /// A literal: int, float, string, char, byte, bool.
    Lit,
    /// A single identifier (including `self`).
    Name(String),
    /// A `::`-separated path, segments in order (`SubmitOutcome`,
    /// `Enqueued`). Turbofish generics are consumed, not recorded.
    Path(Vec<String>),
    /// `base.field` (also `.0` tuple access and `.await`).
    Field(ExprId, String),
    /// `recv.method(args)`.
    MethodCall {
        /// The receiver expression.
        recv: ExprId,
        /// The method name.
        method: String,
        /// Argument expressions, in order.
        args: Vec<ExprId>,
    },
    /// `callee(args)` — callee is typically `Name` or `Path`.
    Call {
        /// The callee expression.
        callee: ExprId,
        /// Argument expressions, in order.
        args: Vec<ExprId>,
    },
    /// Prefix `-`/`!`/`*`/`&` or postfix `?` (op `"?"`).
    Unary {
        /// The operator token.
        op: &'static str,
        /// The operand.
        expr: ExprId,
    },
    /// An infix binary operator (never assignment).
    Binary {
        /// The operator token.
        op: String,
        /// Left operand.
        lhs: ExprId,
        /// Right operand.
        rhs: ExprId,
    },
    /// `lhs = rhs` or a compound assignment (`+=`, …); `op` includes the
    /// `=`.
    Assign {
        /// The (compound) assignment operator token.
        op: String,
        /// The place being written.
        lhs: ExprId,
        /// The value being assigned.
        rhs: ExprId,
    },
    /// `let <pat> = init else { … };` — `names` are the pattern's bound
    /// names; `init` is `None` for synthetic rebinds (`let x;` is not
    /// Rust, but the CFG uses init-less lets to model pattern bindings
    /// whose value the analysis cannot see).
    Let {
        /// Names the pattern binds.
        names: Vec<String>,
        /// The initializer, absent on synthetic rebinds.
        init: Option<ExprId>,
        /// The diverging `else { … }` block of a let-else.
        else_block: Option<ExprId>,
    },
    /// `{ stmts; tail }`.
    Block {
        /// Semicolon-terminated statements.
        stmts: Vec<ExprId>,
        /// The trailing value expression, if any.
        tail: Option<ExprId>,
    },
    /// `if cond { … } else …`; `bound` carries `if let` pattern names
    /// (scoped to the then-branch).
    If {
        /// The condition (the scrutinee for `if let`).
        cond: ExprId,
        /// Names an `if let` pattern binds in the then-branch.
        bound: Vec<String>,
        /// The then-branch block.
        then_blk: ExprId,
        /// The else-branch (block or chained `if`), if any.
        else_blk: Option<ExprId>,
    },
    /// `match scrutinee { arms }`.
    Match {
        /// The matched expression.
        scrutinee: ExprId,
        /// The arms, in order.
        arms: Vec<MatchArm>,
    },
    /// `while cond { … }`; `bound` carries `while let` pattern names.
    While {
        /// The condition (the scrutinee for `while let`).
        cond: ExprId,
        /// Names a `while let` pattern binds in the body.
        bound: Vec<String>,
        /// The loop body block.
        body: ExprId,
    },
    /// `loop { … }`.
    Loop {
        /// The loop body block.
        body: ExprId,
    },
    /// `for <pat> in iter { … }`.
    For {
        /// Names the loop pattern binds.
        bound: Vec<String>,
        /// The iterated expression.
        iter: ExprId,
        /// The loop body block.
        body: ExprId,
    },
    /// `return [value]`.
    Return(Option<ExprId>),
    /// `break [value]` (labels are consumed, not recorded).
    Break(Option<ExprId>),
    /// `continue`.
    Continue,
    /// `|args| body` / `move |args| body`; parameters are not modelled.
    Closure {
        /// The closure body expression.
        body: ExprId,
    },
    /// `expr as Type` — an *explicit* unit decision; D11 treats the
    /// result as unclassified.
    Cast {
        /// The cast operand.
        expr: ExprId,
    },
    /// `(expr)`.
    Paren(ExprId),
    /// `(a, b, …)`.
    Tuple(Vec<ExprId>),
    /// `base[index]`.
    Index {
        /// The indexed expression.
        base: ExprId,
        /// The index expression.
        index: ExprId,
    },
    /// `Path { field: value, .. }`; shorthand fields carry `None`.
    StructLit {
        /// The literal's type path.
        path: Vec<String>,
        /// `(field name, value)` pairs; shorthand fields carry `None`.
        fields: Vec<(String, Option<ExprId>)>,
    },
    /// `lo .. hi` / `lo ..= hi`, either side optional.
    Range {
        /// The lower bound, if present.
        lo: Option<ExprId>,
        /// The upper bound, if present.
        hi: Option<ExprId>,
    },
    /// Anything the grammar does not model (macro invocations, array
    /// literals, stray tokens). Always consumes at least one token.
    Opaque,
}

/// One parsed expression node.
#[derive(Debug, Clone)]
pub struct Expr {
    /// The node's grammar production.
    pub kind: ExprKind,
    /// 1-based line of the node's first token.
    pub line: u32,
    /// Half-open code-token index range the node covers.
    pub span: (usize, usize),
}

/// Arena holding every expression of one function body (plus any
/// synthetic nodes the CFG lowering adds).
#[derive(Debug, Clone, Default)]
pub struct ExprArena {
    exprs: Vec<Expr>,
}

impl ExprArena {
    /// The node behind `id`. Ids handed out by this arena are always
    /// valid; a foreign id yields a shared `Opaque` placeholder rather
    /// than a panic.
    pub fn get(&self, id: ExprId) -> &Expr {
        static OPAQUE: Expr = Expr {
            kind: ExprKind::Opaque,
            line: 0,
            span: (0, 0),
        };
        self.exprs.get(id as usize).unwrap_or(&OPAQUE)
    }

    /// Allocate a node.
    pub fn alloc(&mut self, kind: ExprKind, line: u32, span: (usize, usize)) -> ExprId {
        let id = self.exprs.len() as ExprId;
        self.exprs.push(Expr { kind, line, span });
        id
    }

    /// Number of nodes allocated.
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// Whether the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }

    /// Append the direct children of `id` to `out` (pre-order building
    /// block for rule-side walks).
    pub fn children(&self, id: ExprId, out: &mut Vec<ExprId>) {
        match &self.get(id).kind {
            ExprKind::Lit
            | ExprKind::Name(_)
            | ExprKind::Path(_)
            | ExprKind::Continue
            | ExprKind::Opaque => {}
            ExprKind::Field(base, _) => out.push(*base),
            ExprKind::MethodCall { recv, args, .. } => {
                out.push(*recv);
                out.extend(args.iter().copied());
            }
            ExprKind::Call { callee, args } => {
                out.push(*callee);
                out.extend(args.iter().copied());
            }
            ExprKind::Unary { expr, .. } | ExprKind::Cast { expr } | ExprKind::Paren(expr) => {
                out.push(*expr)
            }
            ExprKind::Binary { lhs, rhs, .. } | ExprKind::Assign { lhs, rhs, .. } => {
                out.push(*lhs);
                out.push(*rhs);
            }
            ExprKind::Let {
                init, else_block, ..
            } => {
                out.extend(init.iter().copied());
                out.extend(else_block.iter().copied());
            }
            ExprKind::Block { stmts, tail } => {
                out.extend(stmts.iter().copied());
                out.extend(tail.iter().copied());
            }
            ExprKind::If {
                cond,
                then_blk,
                else_blk,
                ..
            } => {
                out.push(*cond);
                out.push(*then_blk);
                out.extend(else_blk.iter().copied());
            }
            ExprKind::Match { scrutinee, arms } => {
                out.push(*scrutinee);
                out.extend(arms.iter().map(|a| a.body));
            }
            ExprKind::While { cond, body, .. } => {
                out.push(*cond);
                out.push(*body);
            }
            ExprKind::Loop { body } => out.push(*body),
            ExprKind::For { iter, body, .. } => {
                out.push(*iter);
                out.push(*body);
            }
            ExprKind::Return(v) | ExprKind::Break(v) => out.extend(v.iter().copied()),
            ExprKind::Closure { body } => out.push(*body),
            ExprKind::Tuple(items) => out.extend(items.iter().copied()),
            ExprKind::Index { base, index } => {
                out.push(*base);
                out.push(*index);
            }
            ExprKind::StructLit { fields, .. } => out.extend(fields.iter().filter_map(|(_, v)| *v)),
            ExprKind::Range { lo, hi } => {
                out.extend(lo.iter().copied());
                out.extend(hi.iter().copied());
            }
        }
    }

    /// Pre-order walk of the subtree rooted at `id`.
    pub fn walk(&self, id: ExprId, visit: &mut impl FnMut(ExprId)) {
        visit(id);
        let mut kids = Vec::new();
        self.children(id, &mut kids);
        for k in kids {
            self.walk(k, visit);
        }
    }
}

/// Parse the code-token range `[lo, hi)` (a function body between its
/// braces) into `arena`; returns the root `Block` node. Total — never
/// fails.
pub fn parse_body(f: &SourceFile, arena: &mut ExprArena, lo: usize, hi: usize) -> ExprId {
    let mut p = Parser {
        f,
        pos: lo,
        hi,
        arena,
        no_struct: false,
    };
    p.block_contents(lo)
}

/// Keywords that can never be a value-position identifier.
const KEYWORDS: [&str; 26] = [
    "if", "else", "match", "while", "loop", "for", "in", "return", "break", "continue", "let",
    "fn", "struct", "enum", "impl", "trait", "mod", "use", "pub", "const", "static", "type",
    "where", "move", "ref", "mut",
];

/// Tokens that start a nested item (skipped; the item parser finds nested
/// fns on its own linear walk).
const ITEM_STARTERS: [&str; 12] = [
    "fn",
    "struct",
    "enum",
    "impl",
    "trait",
    "mod",
    "use",
    "type",
    "static",
    "pub",
    "extern",
    "macro_rules",
];

/// Infix binary operators by precedence tier, loosest first. Assignment,
/// ranges and `as` have dedicated handling.
const BIN_TIERS: [&[&str]; 9] = [
    &["||"],
    &["&&"],
    &["==", "!=", "<", "<=", ">", ">="],
    &["|"],
    &["^"],
    &["&"],
    &["<<", ">>"],
    &["+", "-"],
    &["*", "/", "%"],
];

const ASSIGN_OPS: [&str; 11] = [
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

struct Parser<'a> {
    f: &'a SourceFile,
    pos: usize,
    hi: usize,
    arena: &'a mut ExprArena,
    /// Inside an `if`/`while`/`match`/`for` head: a `{` after a path is
    /// the construct's block, not a struct literal.
    no_struct: bool,
}

impl<'a> Parser<'a> {
    fn text(&self, at: usize) -> &str {
        if at < self.hi {
            self.f.text(at)
        } else {
            ""
        }
    }

    fn kind(&self, at: usize) -> Option<TokenKind> {
        if at < self.hi {
            self.f.kind(at)
        } else {
            None
        }
    }

    fn line(&self, at: usize) -> u32 {
        self.f.line(at.min(self.hi.saturating_sub(1)))
    }

    fn alloc(&mut self, kind: ExprKind, start: usize) -> ExprId {
        let line = self.line(start);
        let end = self.pos.min(self.hi).max(start);
        self.arena.alloc(kind, line, (start, end))
    }

    /// Skip a balanced bracket group whose opener sits at `self.pos`.
    fn skip_balanced(&mut self) {
        let close = matching(self.f, self.pos);
        self.pos = (close + 1).min(self.hi.max(self.pos + 1));
    }

    /// Parse the statements of a block body ending at the enclosing
    /// brace; `start` is only used for the span. Consumes up to
    /// `self.hi`.
    fn block_contents(&mut self, start: usize) -> ExprId {
        let mut stmts = Vec::new();
        let mut tail = None;
        while self.pos < self.hi {
            match self.text(self.pos) {
                ";" => {
                    self.pos += 1;
                    continue;
                }
                "#" if matches!(self.text(self.pos + 1), "[" | "!") => {
                    // `#[attr]` / `#![attr]` on a statement or item.
                    self.pos += if self.text(self.pos + 1) == "!" { 2 } else { 1 };
                    if self.text(self.pos) == "[" {
                        self.skip_balanced();
                    }
                    continue;
                }
                "let" => {
                    let stmt = self.parse_let();
                    stmts.push(stmt);
                    continue;
                }
                "const" if self.kind(self.pos + 1) == Some(TokenKind::Ident) => {
                    self.skip_item();
                    continue;
                }
                t if ITEM_STARTERS.contains(&t) => {
                    self.skip_item();
                    continue;
                }
                _ => {}
            }
            let before = self.pos;
            let e = self.parse_expr();
            if self.pos == before {
                // Totality guard: always make progress.
                self.pos += 1;
            }
            if self.pos < self.hi && self.text(self.pos) == ";" {
                self.pos += 1;
                stmts.push(e);
            } else if self.pos >= self.hi {
                tail = Some(e);
            } else {
                // Block-like expression statement (`if … {}` `match … {}`)
                // needs no semicolon.
                stmts.push(e);
            }
        }
        let line = self.line(start);
        self.arena
            .alloc(ExprKind::Block { stmts, tail }, line, (start, self.hi))
    }

    /// Skip one nested item (`fn`, `struct`, `use`, …): consume to the
    /// first top-level `{…}` (inclusive) or `;`.
    fn skip_item(&mut self) {
        while self.pos < self.hi {
            match self.text(self.pos) {
                ";" => {
                    self.pos += 1;
                    return;
                }
                "{" => {
                    self.skip_balanced();
                    return;
                }
                "(" | "[" => self.skip_balanced(),
                "<" => self.pos = skip_generics(self.f, self.pos).min(self.hi),
                _ => self.pos += 1,
            }
        }
    }

    /// `let <pat> [: Ty] [= init] [else { … }] ;`
    fn parse_let(&mut self) -> ExprId {
        let start = self.pos;
        self.pos += 1; // `let`
        let names = self.parse_pattern(&["=", ":", ";"]);
        if self.text(self.pos) == ":" {
            self.pos += 1;
            self.skip_type(&["=", ";"]);
        }
        let mut init = None;
        let mut else_block = None;
        if self.text(self.pos) == "=" {
            self.pos += 1;
            init = Some(self.parse_expr());
            if self.text(self.pos) == "else" && self.text(self.pos + 1) == "{" {
                self.pos += 2;
                let inner_hi = matching(self.f, self.pos - 1).min(self.hi);
                else_block = Some(self.sub_block(inner_hi));
            }
        }
        if self.text(self.pos) == ";" {
            self.pos += 1;
        }
        self.alloc(
            ExprKind::Let {
                names,
                init,
                else_block,
            },
            start,
        )
    }

    /// Parse a nested `{…}` whose opening brace is already consumed and
    /// whose matching close sits at `inner_hi`.
    fn sub_block(&mut self, inner_hi: usize) -> ExprId {
        let start = self.pos;
        let saved_hi = self.hi;
        let saved_ns = self.no_struct;
        self.hi = inner_hi;
        self.no_struct = false;
        let blk = self.block_contents(start.saturating_sub(1));
        self.hi = saved_hi;
        self.no_struct = saved_ns;
        self.pos = (inner_hi + 1).min(self.hi);
        blk
    }

    /// Collect the lowercase bound names of a pattern, stopping at any of
    /// `stops` at bracket depth 0. Constructors (`Some`, `SubmitOutcome`)
    /// start uppercase by workspace convention and are skipped, as are
    /// path segments and field keys in struct patterns.
    fn parse_pattern(&mut self, stops: &[&str]) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        let mut depth = 0i32;
        let mut in_guard = false;
        while self.pos < self.hi {
            let t = self.text(self.pos);
            if depth == 0 && stops.contains(&t) {
                break;
            }
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                // A match-arm guard: consumed here (up to `=>`) but its
                // expression names are uses, not bindings.
                "if" if depth == 0 => in_guard = true,
                _ => {
                    if !in_guard
                        && self.kind(self.pos) == Some(TokenKind::Ident)
                        && !KEYWORDS.contains(&t)
                        && t != "_"
                        && t.starts_with(|c: char| c.is_ascii_lowercase() || c == '_')
                        && self.text(self.pos.wrapping_sub(1)) != "::"
                        && self.text(self.pos + 1) != "::"
                        && self.text(self.pos + 1) != ":"
                        && self.text(self.pos + 1) != "("
                        && !names.iter().any(|n| n == t)
                    {
                        names.push(t.to_string());
                    }
                }
            }
            self.pos += 1;
        }
        names
    }

    /// Skip type tokens until one of `stops` at depth 0.
    fn skip_type(&mut self, stops: &[&str]) {
        let mut depth = 0i32;
        while self.pos < self.hi {
            let t = self.text(self.pos);
            if depth == 0 && stops.contains(&t) {
                return;
            }
            match t {
                "<" => {
                    self.pos = skip_generics(self.f, self.pos).min(self.hi);
                    continue;
                }
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    fn parse_expr(&mut self) -> ExprId {
        self.parse_assign()
    }

    /// Parse with struct literals temporarily forbidden (an `if`/`while`/
    /// `match`/`for` head).
    fn parse_head(&mut self) -> ExprId {
        let saved = self.no_struct;
        self.no_struct = true;
        let e = self.parse_expr();
        self.no_struct = saved;
        e
    }

    fn parse_assign(&mut self) -> ExprId {
        let start = self.pos;
        let lhs = self.parse_range();
        let t = self.text(self.pos).to_string();
        if ASSIGN_OPS.contains(&t.as_str()) {
            self.pos += 1;
            let rhs = self.parse_assign();
            return self.alloc(ExprKind::Assign { op: t, lhs, rhs }, start);
        }
        lhs
    }

    fn parse_range(&mut self) -> ExprId {
        let start = self.pos;
        if matches!(self.text(self.pos), ".." | "..=") {
            self.pos += 1;
            let hi = self.range_operand_follows().then(|| self.parse_tier(0));
            return self.alloc(ExprKind::Range { lo: None, hi }, start);
        }
        let lo = self.parse_tier(0);
        if matches!(self.text(self.pos), ".." | "..=") {
            self.pos += 1;
            let hi = self.range_operand_follows().then(|| self.parse_tier(0));
            return self.alloc(ExprKind::Range { lo: Some(lo), hi }, start);
        }
        lo
    }

    /// Whether a range bound expression can start at the cursor.
    fn range_operand_follows(&self) -> bool {
        !matches!(
            self.text(self.pos),
            "" | ")" | "]" | "}" | "," | ";" | "=" | "{"
        )
    }

    fn parse_tier(&mut self, tier: usize) -> ExprId {
        if tier >= BIN_TIERS.len() {
            return self.parse_cast();
        }
        let start = self.pos;
        let mut lhs = self.parse_tier(tier + 1);
        loop {
            let t = self.text(self.pos);
            if !BIN_TIERS[tier].contains(&t) {
                return lhs;
            }
            // `|` in expression position could open a closure only at
            // primary position, which parse_primary already handled; here
            // it is bit-or. `&` here is bit-and.
            let op = t.to_string();
            self.pos += 1;
            let rhs = self.parse_tier(tier + 1);
            lhs = self.alloc(ExprKind::Binary { op, lhs, rhs }, start);
        }
    }

    fn parse_cast(&mut self) -> ExprId {
        let start = self.pos;
        let mut e = self.parse_unary();
        while self.text(self.pos) == "as" {
            self.pos += 1;
            self.skip_cast_type();
            e = self.alloc(ExprKind::Cast { expr: e }, start);
        }
        e
    }

    /// Skip the type after `as`: `&`/`mut` prefixes then a path with
    /// optional generics, or a parenthesized/array type.
    fn skip_cast_type(&mut self) {
        while matches!(self.text(self.pos), "&" | "mut" | "*" | "const") {
            self.pos += 1;
        }
        if matches!(self.text(self.pos), "(" | "[") {
            self.skip_balanced();
            return;
        }
        while self.kind(self.pos) == Some(TokenKind::Ident) {
            self.pos += 1;
            if self.text(self.pos) == "<" {
                self.pos = skip_generics(self.f, self.pos).min(self.hi);
            }
            if self.text(self.pos) == "::" {
                self.pos += 1;
                continue;
            }
            break;
        }
    }

    fn parse_unary(&mut self) -> ExprId {
        let start = self.pos;
        let t = self.text(self.pos);
        let op: Option<&'static str> = match t {
            "-" => Some("-"),
            "!" => Some("!"),
            "*" => Some("*"),
            "&" | "&&" => Some("&"),
            _ => None,
        };
        if let Some(op) = op {
            // `&&x` is two reference-ofs; treat as one (class-transparent).
            self.pos += 1;
            if self.text(self.pos) == "mut" {
                self.pos += 1;
            }
            let inner = self.parse_unary();
            return self.alloc(ExprKind::Unary { op, expr: inner }, start);
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> ExprId {
        let start = self.pos;
        let mut e = self.parse_primary();
        loop {
            match self.text(self.pos) {
                "." => {
                    let seg = self.pos + 1;
                    if self.kind(seg) == Some(TokenKind::Ident)
                        || self.kind(seg) == Some(TokenKind::Int)
                    {
                        let name = self.text(seg).to_string();
                        self.pos = seg + 1;
                        // Turbofish: `.collect::<…>()`.
                        if self.text(self.pos) == "::" && self.text(self.pos + 1) == "<" {
                            self.pos = skip_generics(self.f, self.pos + 1).min(self.hi);
                        }
                        if self.text(self.pos) == "(" {
                            let args = self.parse_args();
                            e = self.alloc(
                                ExprKind::MethodCall {
                                    recv: e,
                                    method: name,
                                    args,
                                },
                                start,
                            );
                        } else {
                            e = self.alloc(ExprKind::Field(e, name), start);
                        }
                    } else {
                        // `.` followed by something unmodelled.
                        self.pos += 1;
                        e = self.alloc(ExprKind::Opaque, start);
                    }
                }
                "?" => {
                    self.pos += 1;
                    e = self.alloc(ExprKind::Unary { op: "?", expr: e }, start);
                }
                "(" => {
                    let args = self.parse_args();
                    e = self.alloc(ExprKind::Call { callee: e, args }, start);
                }
                "[" => {
                    let close = matching(self.f, self.pos).min(self.hi);
                    self.pos += 1;
                    let saved = self.hi;
                    let saved_ns = self.no_struct;
                    self.hi = close;
                    self.no_struct = false;
                    let index = self.parse_expr();
                    self.hi = saved;
                    self.no_struct = saved_ns;
                    self.pos = (close + 1).min(self.hi);
                    e = self.alloc(ExprKind::Index { base: e, index }, start);
                }
                _ => return e,
            }
        }
    }

    /// Parse a parenthesized argument list whose `(` sits at the cursor.
    fn parse_args(&mut self) -> Vec<ExprId> {
        let close = matching(self.f, self.pos).min(self.hi);
        self.pos += 1;
        let saved = self.hi;
        let saved_ns = self.no_struct;
        self.hi = close;
        self.no_struct = false;
        let mut args = Vec::new();
        while self.pos < self.hi {
            if self.text(self.pos) == "," {
                self.pos += 1;
                continue;
            }
            let before = self.pos;
            args.push(self.parse_expr());
            if self.pos == before {
                self.pos += 1;
            }
        }
        self.hi = saved;
        self.no_struct = saved_ns;
        self.pos = (close + 1).min(self.hi);
        args
    }

    fn parse_primary(&mut self) -> ExprId {
        let start = self.pos;
        if start >= self.hi {
            return self.alloc(ExprKind::Opaque, start);
        }
        let t = self.text(start).to_string();
        match t.as_str() {
            "if" => return self.parse_if(),
            "match" => return self.parse_match(),
            "while" => return self.parse_while(),
            "loop" => return self.parse_loop(),
            "for" => return self.parse_for(),
            "return" => {
                self.pos += 1;
                let v = self.expr_follows().then(|| self.parse_expr());
                return self.alloc(ExprKind::Return(v), start);
            }
            "break" => {
                self.pos += 1;
                if self.kind(self.pos) == Some(TokenKind::Lifetime) {
                    self.pos += 1; // `break 'label`
                }
                let v = self.expr_follows().then(|| self.parse_expr());
                return self.alloc(ExprKind::Break(v), start);
            }
            "continue" => {
                self.pos += 1;
                if self.kind(self.pos) == Some(TokenKind::Lifetime) {
                    self.pos += 1;
                }
                return self.alloc(ExprKind::Continue, start);
            }
            "move" | "|" | "||" => return self.parse_closure(),
            "unsafe" if self.text(start + 1) == "{" => {
                self.pos += 2;
                let inner_hi = matching(self.f, start + 1).min(self.hi);
                return self.sub_block(inner_hi);
            }
            "{" => {
                let inner_hi = matching(self.f, start).min(self.hi);
                self.pos += 1;
                return self.sub_block(inner_hi);
            }
            "(" => {
                let close = matching(self.f, start).min(self.hi);
                self.pos += 1;
                let saved = self.hi;
                let saved_ns = self.no_struct;
                self.hi = close;
                self.no_struct = false;
                let mut items = Vec::new();
                while self.pos < self.hi {
                    if self.text(self.pos) == "," {
                        self.pos += 1;
                        continue;
                    }
                    let before = self.pos;
                    items.push(self.parse_expr());
                    if self.pos == before {
                        self.pos += 1;
                    }
                }
                self.hi = saved;
                self.no_struct = saved_ns;
                self.pos = (close + 1).min(self.hi);
                return match items.len() {
                    1 => self.alloc(ExprKind::Paren(items[0]), start),
                    _ => self.alloc(ExprKind::Tuple(items), start),
                };
            }
            "[" => {
                // Array literal: structure-free, but consumed whole.
                self.skip_balanced();
                return self.alloc(ExprKind::Opaque, start);
            }
            ".." | "..=" => {
                self.pos += 1;
                let hi = self.range_operand_follows().then(|| self.parse_tier(0));
                return self.alloc(ExprKind::Range { lo: None, hi }, start);
            }
            _ => {}
        }
        match self.kind(start) {
            Some(
                TokenKind::Int
                | TokenKind::Float
                | TokenKind::Str
                | TokenKind::RawStr
                | TokenKind::ByteStr
                | TokenKind::RawByteStr
                | TokenKind::Char
                | TokenKind::ByteChar,
            ) => {
                self.pos += 1;
                self.alloc(ExprKind::Lit, start)
            }
            Some(TokenKind::Ident) if t == "true" || t == "false" => {
                self.pos += 1;
                self.alloc(ExprKind::Lit, start)
            }
            Some(TokenKind::Ident) if !KEYWORDS.contains(&t.as_str()) => self.parse_path_like(),
            _ => {
                self.pos += 1;
                self.alloc(ExprKind::Opaque, start)
            }
        }
    }

    /// Whether an expression can start at the cursor (for optional
    /// `return`/`break` values).
    fn expr_follows(&self) -> bool {
        !matches!(self.text(self.pos), "" | ";" | "}" | ")" | "]" | ",")
    }

    /// An identifier: possibly a macro call, a path, a call, or a struct
    /// literal head.
    fn parse_path_like(&mut self) -> ExprId {
        let start = self.pos;
        let mut segs = vec![self.text(self.pos).to_string()];
        self.pos += 1;
        // Macro invocation: consume whole, opaque.
        if self.text(self.pos) == "!" && matches!(self.text(self.pos + 1), "(" | "[" | "{") {
            self.pos += 1;
            self.skip_balanced();
            return self.alloc(ExprKind::Opaque, start);
        }
        while self.text(self.pos) == "::" {
            if self.text(self.pos + 1) == "<" {
                // Turbofish `Vec::<u8>` — consume, stay on the path.
                self.pos = skip_generics(self.f, self.pos + 1).min(self.hi);
                continue;
            }
            if self.kind(self.pos + 1) == Some(TokenKind::Ident) {
                segs.push(self.text(self.pos + 1).to_string());
                self.pos += 2;
            } else {
                break;
            }
        }
        // Struct literal?
        if self.text(self.pos) == "{" && !self.no_struct {
            return self.parse_struct_lit(start, segs);
        }
        if segs.len() == 1 {
            let name = segs.pop().unwrap_or_default();
            self.alloc(ExprKind::Name(name), start)
        } else {
            self.alloc(ExprKind::Path(segs), start)
        }
    }

    /// `Path { field: value, field, ..base }` with the `{` at the cursor.
    fn parse_struct_lit(&mut self, start: usize, path: Vec<String>) -> ExprId {
        let close = matching(self.f, self.pos).min(self.hi);
        self.pos += 1;
        let saved = self.hi;
        let saved_ns = self.no_struct;
        self.hi = close;
        self.no_struct = false;
        let mut fields = Vec::new();
        while self.pos < self.hi {
            match self.text(self.pos) {
                "," => {
                    self.pos += 1;
                    continue;
                }
                ".." => {
                    // Functional update `..base`: consume the base expr.
                    self.pos += 1;
                    if self.expr_follows() {
                        self.parse_expr();
                    }
                    continue;
                }
                _ => {}
            }
            if self.kind(self.pos) == Some(TokenKind::Ident) {
                let fname = self.text(self.pos).to_string();
                if self.text(self.pos + 1) == ":" {
                    self.pos += 2;
                    let v = self.parse_expr();
                    fields.push((fname, Some(v)));
                    continue;
                }
                // Shorthand `field,`.
                self.pos += 1;
                fields.push((fname, None));
                continue;
            }
            self.pos += 1; // unmodelled token inside the literal
        }
        self.hi = saved;
        self.no_struct = saved_ns;
        self.pos = (close + 1).min(self.hi);
        self.alloc(ExprKind::StructLit { path, fields }, start)
    }

    fn parse_if(&mut self) -> ExprId {
        let start = self.pos;
        self.pos += 1; // `if`
        let mut bound = Vec::new();
        if self.text(self.pos) == "let" {
            self.pos += 1;
            bound = self.parse_pattern(&["="]);
            if self.text(self.pos) == "=" {
                self.pos += 1;
            }
        }
        let cond = self.parse_head();
        let then_blk = if self.text(self.pos) == "{" {
            let inner_hi = matching(self.f, self.pos).min(self.hi);
            self.pos += 1;
            self.sub_block(inner_hi)
        } else {
            self.alloc(ExprKind::Opaque, self.pos)
        };
        let mut else_blk = None;
        if self.text(self.pos) == "else" {
            self.pos += 1;
            if self.text(self.pos) == "if" {
                else_blk = Some(self.parse_if());
            } else if self.text(self.pos) == "{" {
                let inner_hi = matching(self.f, self.pos).min(self.hi);
                self.pos += 1;
                else_blk = Some(self.sub_block(inner_hi));
            }
        }
        self.alloc(
            ExprKind::If {
                cond,
                bound,
                then_blk,
                else_blk,
            },
            start,
        )
    }

    fn parse_match(&mut self) -> ExprId {
        let start = self.pos;
        self.pos += 1; // `match`
        let scrutinee = self.parse_head();
        let mut arms = Vec::new();
        if self.text(self.pos) == "{" {
            let close = matching(self.f, self.pos).min(self.hi);
            self.pos += 1;
            let saved = self.hi;
            self.hi = close;
            while self.pos < self.hi {
                if self.text(self.pos) == "," {
                    self.pos += 1;
                    continue;
                }
                if self.text(self.pos) == "#" && self.text(self.pos + 1) == "[" {
                    self.pos += 1;
                    self.skip_balanced();
                    continue;
                }
                // Pattern (guard included) up to `=>`.
                let bound = self.parse_pattern(&["=>"]);
                if self.text(self.pos) != "=>" {
                    break; // malformed arm; bail out of the match body
                }
                self.pos += 1;
                let before = self.pos;
                let body = self.parse_expr();
                if self.pos == before {
                    self.pos += 1;
                }
                arms.push(MatchArm { bound, body });
            }
            self.hi = saved;
            self.pos = (close + 1).min(self.hi);
        }
        self.alloc(ExprKind::Match { scrutinee, arms }, start)
    }

    fn parse_while(&mut self) -> ExprId {
        let start = self.pos;
        self.pos += 1; // `while`
        let mut bound = Vec::new();
        if self.text(self.pos) == "let" {
            self.pos += 1;
            bound = self.parse_pattern(&["="]);
            if self.text(self.pos) == "=" {
                self.pos += 1;
            }
        }
        let cond = self.parse_head();
        let body = self.parse_braced_body();
        self.alloc(ExprKind::While { cond, bound, body }, start)
    }

    fn parse_loop(&mut self) -> ExprId {
        let start = self.pos;
        self.pos += 1; // `loop`
        let body = self.parse_braced_body();
        self.alloc(ExprKind::Loop { body }, start)
    }

    fn parse_for(&mut self) -> ExprId {
        let start = self.pos;
        self.pos += 1; // `for`
        let bound = self.parse_pattern(&["in"]);
        if self.text(self.pos) == "in" {
            self.pos += 1;
        }
        let iter = self.parse_head();
        let body = self.parse_braced_body();
        self.alloc(ExprKind::For { bound, iter, body }, start)
    }

    fn parse_braced_body(&mut self) -> ExprId {
        if self.text(self.pos) == "{" {
            let inner_hi = matching(self.f, self.pos).min(self.hi);
            self.pos += 1;
            self.sub_block(inner_hi)
        } else {
            let at = self.pos;
            self.alloc(ExprKind::Opaque, at)
        }
    }

    /// `move |params| body`, `|params| body`, `|| body`.
    fn parse_closure(&mut self) -> ExprId {
        let start = self.pos;
        if self.text(self.pos) == "move" {
            self.pos += 1;
        }
        if self.text(self.pos) == "||" {
            self.pos += 1;
        } else if self.text(self.pos) == "|" {
            self.pos += 1;
            // Parameters (patterns + optional types) to the closing `|`.
            let mut depth = 0i32;
            while self.pos < self.hi {
                match self.text(self.pos) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "<" => {
                        self.pos = skip_generics(self.f, self.pos).min(self.hi);
                        continue;
                    }
                    "|" if depth == 0 => {
                        self.pos += 1;
                        break;
                    }
                    _ => {}
                }
                self.pos += 1;
            }
        } else {
            // `move` without `|` — not a closure after all.
            self.pos += 1;
            return self.alloc(ExprKind::Opaque, start);
        }
        if self.text(self.pos) == "->" {
            self.pos += 1;
            self.skip_type(&["{"]);
        }
        let before = self.pos;
        let body = self.parse_expr();
        if self.pos == before {
            self.pos += 1;
        }
        self.alloc(ExprKind::Closure { body }, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse_file;

    /// Parse the body of the first fn in `src`; returns the root block.
    fn body_of(src: &str) -> (SourceFile, ExprArena, ExprId) {
        let f = SourceFile::new(
            "crates/core/src/x.rs".to_string(),
            lex(src).expect("test source must lex"),
        );
        let items = parse_file(&f);
        let (lo, hi) = items.fns[0].body.expect("fn must have a body");
        let mut arena = ExprArena::default();
        let root = parse_body(&f, &mut arena, lo, hi);
        (f, arena, root)
    }

    fn stmts(arena: &ExprArena, root: ExprId) -> (Vec<ExprId>, Option<ExprId>) {
        match &arena.get(root).kind {
            ExprKind::Block { stmts, tail } => (stmts.clone(), *tail),
            other => panic!("root is not a block: {other:?}"),
        }
    }

    #[test]
    fn let_binding_and_tail() {
        let (_, arena, root) = body_of("fn f() -> f64 { let w = wait_bu; w + retry_count }");
        let (ss, tail) = stmts(&arena, root);
        assert_eq!(ss.len(), 1);
        let ExprKind::Let { names, init, .. } = &arena.get(ss[0]).kind else {
            panic!("expected let");
        };
        assert_eq!(names, &["w"]);
        let ExprKind::Name(n) = &arena.get(init.expect("init")).kind else {
            panic!("init should be a name");
        };
        assert_eq!(n, "wait_bu");
        let ExprKind::Binary { op, .. } = &arena.get(tail.expect("tail")).kind else {
            panic!("tail should be binary");
        };
        assert_eq!(op, "+");
    }

    #[test]
    fn method_calls_fields_and_compound_assign() {
        let (_, arena, root) = body_of("fn f(&mut self) { self.stats.enqueued += 1; }");
        let (ss, _) = stmts(&arena, root);
        let ExprKind::Assign { op, lhs, .. } = &arena.get(ss[0]).kind else {
            panic!("expected assign");
        };
        assert_eq!(op, "+=");
        let ExprKind::Field(base, name) = &arena.get(*lhs).kind else {
            panic!("lhs should be a field");
        };
        assert_eq!(name, "enqueued");
        let ExprKind::Field(root_base, stats) = &arena.get(*base).kind else {
            panic!("base should be a field");
        };
        assert_eq!(stats, "stats");
        assert!(matches!(&arena.get(*root_base).kind, ExprKind::Name(n) if n == "self"));
    }

    #[test]
    fn if_else_and_variant_return() {
        let (_, arena, root) = body_of(
            "fn f(&mut self) -> SubmitOutcome {\n\
             \x20   if self.full() { return SubmitOutcome::DroppedFull; }\n\
             \x20   SubmitOutcome::Enqueued\n\
             }",
        );
        let (ss, tail) = stmts(&arena, root);
        let ExprKind::If { cond, then_blk, .. } = &arena.get(ss[0]).kind else {
            panic!("expected if");
        };
        assert!(matches!(
            &arena.get(*cond).kind,
            ExprKind::MethodCall { method, .. } if method == "full"
        ));
        let (tss, _) = stmts(&arena, *then_blk);
        let ExprKind::Return(Some(v)) = &arena.get(tss[0]).kind else {
            panic!("expected return");
        };
        let ExprKind::Path(segs) = &arena.get(*v).kind else {
            panic!("expected path");
        };
        assert_eq!(segs, &["SubmitOutcome", "DroppedFull"]);
        let ExprKind::Path(tsegs) = &arena.get(tail.expect("tail")).kind else {
            panic!("tail should be a path");
        };
        assert_eq!(tsegs[1], "Enqueued");
    }

    #[test]
    fn match_arms_bind_names_and_guards_are_consumed() {
        let (_, arena, root) = body_of(
            "fn f(x: Option<u64>) -> u64 {\n\
             \x20   match x { Some(v) if v > 0 => v, _ => 0 }\n\
             }",
        );
        let (_, tail) = stmts(&arena, root);
        let ExprKind::Match { arms, .. } = &arena.get(tail.expect("tail")).kind else {
            panic!("expected match");
        };
        assert_eq!(arms.len(), 2);
        assert_eq!(arms[0].bound, vec!["v".to_string()]);
        assert!(matches!(&arena.get(arms[0].body).kind, ExprKind::Name(n) if n == "v"));
        assert!(matches!(&arena.get(arms[1].body).kind, ExprKind::Lit));
    }

    #[test]
    fn parenthesized_and_negated_operands_keep_structure() {
        let (_, arena, root) =
            body_of("fn f() -> bool { a_bu < (b_count) && a_bu - -c_count > 0.0 }");
        let (_, tail) = stmts(&arena, root);
        let ExprKind::Binary { op, lhs, rhs } = &arena.get(tail.expect("tail")).kind else {
            panic!("expected &&");
        };
        assert_eq!(op, "&&");
        let ExprKind::Binary {
            op: lt, rhs: paren, ..
        } = &arena.get(*lhs).kind
        else {
            panic!("expected <");
        };
        assert_eq!(lt, "<");
        assert!(matches!(&arena.get(*paren).kind, ExprKind::Paren(_)));
        let ExprKind::Binary { lhs: sub, .. } = &arena.get(*rhs).kind else {
            panic!("expected >");
        };
        let ExprKind::Binary {
            op: minus,
            rhs: neg,
            ..
        } = &arena.get(*sub).kind
        else {
            panic!("expected -");
        };
        assert_eq!(minus, "-");
        assert!(matches!(
            &arena.get(*neg).kind,
            ExprKind::Unary { op: "-", .. }
        ));
    }

    #[test]
    fn struct_literal_vs_block_disambiguation() {
        let (_, arena, root) = body_of(
            "fn f() -> R {\n\
             \x20   if cfg.on { do_it(); }\n\
             \x20   R { total_bu: wait, hits_count: n }\n\
             }",
        );
        let (ss, tail) = stmts(&arena, root);
        assert!(matches!(&arena.get(ss[0]).kind, ExprKind::If { .. }));
        let ExprKind::StructLit { path, fields } = &arena.get(tail.expect("tail")).kind else {
            panic!("tail should be a struct literal");
        };
        assert_eq!(path, &["R"]);
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].0, "total_bu");
        assert!(fields[0].1.is_some());
    }

    #[test]
    fn casts_closures_macros_and_loops() {
        let (_, arena, root) = body_of(
            "fn f(xs: &[f64]) -> f64 {\n\
             \x20   let mut total = 0.0;\n\
             \x20   for x in xs.iter() { total += x; }\n\
             \x20   while total > 1.0 { total /= 2.0; }\n\
             \x20   let c = xs.iter().map(|v| v + 1.0).count() as f64;\n\
             \x20   assert!(c >= 0.0);\n\
             \x20   total + c\n\
             }",
        );
        let (ss, tail) = stmts(&arena, root);
        assert!(tail.is_some());
        assert!(matches!(
            &arena.get(ss[1]).kind,
            ExprKind::For { bound, .. } if bound == &["x"]
        ));
        assert!(matches!(&arena.get(ss[2]).kind, ExprKind::While { .. }));
        let ExprKind::Let { init, .. } = &arena.get(ss[3]).kind else {
            panic!("expected let c");
        };
        assert!(matches!(
            &arena.get(init.expect("init")).kind,
            ExprKind::Cast { .. }
        ));
        // The assert! macro is one opaque statement.
        assert!(matches!(&arena.get(ss[4]).kind, ExprKind::Opaque));
    }

    #[test]
    fn if_let_binds_to_then_branch() {
        let (_, arena, root) = body_of(
            "fn f(&mut self) {\n\
             \x20   if let Some(at) = &mut self.enqueue_at { at.clear(); }\n\
             \x20   done();\n\
             }",
        );
        let (ss, _) = stmts(&arena, root);
        let ExprKind::If { cond, bound, .. } = &arena.get(ss[0]).kind else {
            panic!("expected if-let");
        };
        assert_eq!(bound, &["at"]);
        // Scrutinee: &mut self.enqueue_at → Unary(&, Field(self, enqueue_at)).
        let ExprKind::Unary { op: "&", expr } = &arena.get(*cond).kind else {
            panic!("expected reference scrutinee");
        };
        assert!(matches!(
            &arena.get(*expr).kind,
            ExprKind::Field(_, name) if name == "enqueue_at"
        ));
    }

    #[test]
    fn totality_on_malformed_input() {
        // Garbage bodies must still produce a block without hanging.
        for src in [
            "fn f() { :: }",
            "fn f() { let = ; }",
            "fn f() { a.. }",
            "fn f() { .. }",
            "fn f() { # }",
            "fn f() { x.await?; }",
            "fn f() { match x { } }",
            "fn f() { (a, b,) }",
        ] {
            let (_, arena, root) = body_of(src);
            assert!(matches!(&arena.get(root).kind, ExprKind::Block { .. }));
        }
    }

    #[test]
    fn nested_items_are_skipped_not_parsed() {
        let (_, arena, root) = body_of(
            "fn outer() {\n\
             \x20   const K: u32 = 7;\n\
             \x20   fn inner(x: u64) -> u64 { x }\n\
             \x20   inner(K as u64);\n\
             }",
        );
        let (ss, _) = stmts(&arena, root);
        // Only the call statement survives; const and fn are item-skipped.
        assert_eq!(ss.len(), 1);
        assert!(matches!(&arena.get(ss[0]).kind, ExprKind::Call { .. }));
    }
}
