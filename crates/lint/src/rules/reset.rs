//! Rule D13: cold-restart reset coverage.
//!
//! A crash wipes the server's volatile state; the restart path must
//! rebuild *all* of it. Every type that participates in crash recovery
//! exposes a reset method (`crash_drain`, `crash_reset`, `restart_cold`,
//! `cold_restart`) — and history shows the failure mode: a new mutable
//! field is added, mutated by the hot path, and silently survives a
//! restart because nobody extended the reset method.
//!
//! D13 closes that hole statically. For every impl block that defines a
//! reset method, each struct field that any *other* method mutates
//! (direct assignment through `self`, or a mutating container call like
//! `self.order.push_back(..)`) must be **written** on the reset path:
//! assigned, cleared via a mutating call, reached through an `if let`
//! alias of a `self` field (`if let Some(at) = &mut self.enqueue_at {
//! at.clear() }`), reset by a same-impl helper the reset method calls
//! (one level of transitivity), or wholesale via `*self = ..`.
//!
//! Config fields a restart deliberately preserves (capacities, policies)
//! surface as diagnostics too — that is intentional: the justification
//! lives next to the field as a `bpp-lint: allow(D13): <why>` line, so
//! the decision "survives restart" is reviewed, not accidental.
//!
//! Scope: library code of the `core` and `server` crates.

use super::{diag, Diagnostic, SourceFile};
use crate::expr::{ExprArena, ExprId, ExprKind};
use crate::graph::Workspace;
use crate::parse::{FnItem, StructItem};
use std::collections::{BTreeMap, BTreeSet};

/// Method names that implement the cold-restart path.
const RESET_METHODS: [&str; 4] = ["crash_drain", "crash_reset", "restart_cold", "cold_restart"];

/// Container methods that mutate their receiver.
const MUTATING_CALLS: [&str; 16] = [
    "clear",
    "insert",
    "remove",
    "push",
    "push_back",
    "push_front",
    "pop",
    "pop_front",
    "pop_back",
    "drain",
    "truncate",
    "extend",
    "take",
    "replace",
    "retain",
    "reset",
];

fn in_scope(f: &SourceFile) -> bool {
    f.scope.library
        && f.scope
            .crate_name
            .as_deref()
            .is_some_and(|c| c == "core" || c == "server")
}

/// The top-level `self` field a place expression roots in: `self.stats.x`
/// → `stats`; `self.order[i]` → `order`; `(*self.cache).y` → `cache`.
/// `alias` maps local names bound from `self` fields back to the field.
fn self_field_of(
    arena: &ExprArena,
    id: ExprId,
    alias: &BTreeMap<String, String>,
) -> Option<String> {
    match &arena.get(id).kind {
        ExprKind::Field(base, name) => match &arena.get(*base).kind {
            ExprKind::Name(n) if n == "self" => Some(name.clone()),
            _ => self_field_of(arena, *base, alias),
        },
        ExprKind::Index { base, .. }
        | ExprKind::Unary { expr: base, .. }
        | ExprKind::Paren(base) => self_field_of(arena, *base, alias),
        ExprKind::Name(n) => alias.get(n).cloned(),
        _ => None,
    }
}

/// Whether the expression is exactly `self` (possibly deref'd /
/// parenthesized), i.e. the target of a whole-struct `*self = ..` write.
fn is_self(arena: &ExprArena, id: ExprId) -> bool {
    match &arena.get(id).kind {
        ExprKind::Name(n) => n == "self",
        ExprKind::Unary { expr, .. } | ExprKind::Paren(expr) => is_self(arena, *expr),
        _ => false,
    }
}

/// What one method body does to `self`: the fields it writes, whether it
/// rewrites `*self` wholesale, and the same-impl methods it calls on
/// `self` (for one level of reset transitivity).
#[derive(Debug, Default)]
struct MethodEffects {
    writes: BTreeSet<String>,
    whole_self: bool,
    self_calls: BTreeSet<String>,
}

/// Collect aliases introduced by `if let` / `while let` / `let` patterns
/// whose scrutinee roots in a `self` field: the bound name stands for
/// that field inside the body.
fn collect_aliases(arena: &ExprArena, root: ExprId) -> BTreeMap<String, String> {
    let mut alias = BTreeMap::new();
    let empty = BTreeMap::new();
    arena.walk(root, &mut |id| match &arena.get(id).kind {
        ExprKind::If { cond, bound, .. } | ExprKind::While { cond, bound, .. } => {
            if let ([b], Some(f)) = (&bound[..], self_field_of(arena, *cond, &empty)) {
                alias.insert(b.clone(), f);
            }
        }
        ExprKind::Let {
            names,
            init: Some(init),
            ..
        } => {
            if let ([n], Some(f)) = (&names[..], self_field_of(arena, *init, &empty)) {
                alias.insert(n.clone(), f);
            }
        }
        _ => {}
    });
    alias
}

fn method_effects(arena: &ExprArena, root: ExprId) -> MethodEffects {
    let alias = collect_aliases(arena, root);
    let mut fx = MethodEffects::default();
    arena.walk(root, &mut |id| match &arena.get(id).kind {
        ExprKind::Assign { lhs, .. } => {
            if is_self(arena, *lhs) {
                fx.whole_self = true;
            } else if let Some(f) = self_field_of(arena, *lhs, &alias) {
                fx.writes.insert(f);
            }
        }
        ExprKind::MethodCall { recv, method, .. } => {
            if MUTATING_CALLS.contains(&method.as_str()) {
                if let Some(f) = self_field_of(arena, *recv, &alias) {
                    fx.writes.insert(f);
                }
            }
            if is_self(arena, *recv) {
                fx.self_calls.insert(method.clone());
            }
        }
        _ => {}
    });
    fx
}

/// D13 driver.
pub fn d13_reset_coverage(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for a in ws.files {
        if !in_scope(&a.file) {
            continue;
        }
        for im in &a.items.impls {
            if im.trait_name.is_some() {
                continue; // trait impls don't own the type's reset story
            }
            // Methods of this impl block, by body containment.
            let methods: Vec<(usize, &FnItem)> = a
                .items
                .fns
                .iter()
                .enumerate()
                .filter(|(_, item)| {
                    item.body
                        .is_some_and(|(lo, _)| im.body.0 <= lo && lo < im.body.1)
                })
                .collect();
            let has_reset = methods
                .iter()
                .any(|(_, m)| RESET_METHODS.contains(&m.name.as_str()));
            if !has_reset {
                continue;
            }
            let Some(strukt) = a
                .items
                .structs
                .iter()
                .find(|s: &&StructItem| s.name == im.type_name)
            else {
                continue; // fields live in another file — out of reach
            };
            let mut effects: BTreeMap<&str, MethodEffects> = BTreeMap::new();
            for (gi, item) in &methods {
                if let Some(body) = &a.bodies[*gi] {
                    effects.insert(item.name.as_str(), method_effects(&body.arena, body.root));
                }
            }
            // Everything the reset path writes: the reset methods' own
            // writes plus (one level) the writes of same-impl methods
            // they call on self. `*self = ..` covers every field.
            let mut reset_writes: BTreeSet<String> = BTreeSet::new();
            let mut reset_whole = false;
            for r in RESET_METHODS {
                let Some(fx) = effects.get(r) else { continue };
                reset_writes.extend(fx.writes.iter().cloned());
                reset_whole |= fx.whole_self;
                for callee in &fx.self_calls {
                    if let Some(cfx) = effects.get(callee.as_str()) {
                        reset_writes.extend(cfx.writes.iter().cloned());
                        reset_whole |= cfx.whole_self;
                    }
                }
            }
            if reset_whole {
                continue;
            }
            // Fields mutated anywhere outside the reset path.
            let mut mutated_by: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
            for (name, fx) in &effects {
                if RESET_METHODS.contains(name) {
                    continue;
                }
                for f in &fx.writes {
                    mutated_by.entry(f.as_str()).or_default().push(name);
                }
            }
            for field in &strukt.fields {
                let Some(mutators) = mutated_by.get(field.name.as_str()) else {
                    continue;
                };
                if reset_writes.contains(&field.name) {
                    continue;
                }
                out.push(diag(
                    &a.file,
                    field.line,
                    "D13",
                    format!(
                        "field `{}` of `{}` is mutated by `{}` but never written on the \
                         cold-restart path ({}) — state would leak across a crash; reset it \
                         or justify with allow(D13)",
                        field.name,
                        im.type_name,
                        mutators.join("`, `"),
                        RESET_METHODS
                            .iter()
                            .filter(|r| effects.contains_key(**r))
                            .copied()
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                ));
            }
        }
    }
}
