//! Rule D8: config-surface coverage.
//!
//! A config field that silently stops being validated (or serialized, or
//! documented) is how experiment sweeps drift: the knob still exists, the
//! JSON still round-trips the rest, and nobody notices the hole until a
//! published figure disagrees with the paper. The paper's sweeps
//! (`ThinkTimeRatio`, `Noise`, the Figs. 3–8 grids) are driven entirely
//! through these structs, so every named field must reach every surface.
//!
//! For each non-test struct with named fields that has **both** an
//! `impl ToJson` and an `impl FromJson` in its defining file (the
//! workspace convention for config/report types), the rule requires each
//! field name to appear:
//!
//! * in the `ToJson` impl body,
//! * in the `FromJson` impl body,
//! * in some `fn validate` body in the same file — when the file defines
//!   one (fields without a checkable constraint are acknowledged there
//!   with a `field: _` destructuring, which is exactly the point: removing
//!   a field's check must be a visible, deliberate act),
//! * backticked in DESIGN.md's config table — for the named config
//!   structs ([`DESIGN_STRUCTS`]) and only when the linted root carries a
//!   `DESIGN.md`.
//!
//! "Appear" means an identifier token equal to the field name, or a
//! string literal containing it with non-identifier characters on both
//! sides (so `"fault.broadcast_loss"` counts for `broadcast_loss`, while
//! `"broadcast_loss_x"` does not). One diagnostic per field lists every
//! missing surface at the field's declaration line.

use super::{diag, Diagnostic};
use crate::graph::{Analysis, Workspace};
use crate::lexer::TokenKind;

/// Structs whose fields must also appear in DESIGN.md's config table.
pub const DESIGN_STRUCTS: [&str; 6] = [
    "SystemConfig",
    "FaultConfig",
    "ClientPopulation",
    "CrashConfig",
    "AdmissionConfig",
    "ObsConfig",
];

/// Entry point: run the surface check over every file.
pub fn d8_config_surface(ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
    for a in ws.files.iter() {
        check_file(ws, a, out);
    }
}

fn check_file(ws: &Workspace<'_>, a: &Analysis, out: &mut Vec<Diagnostic>) {
    let f = &a.file;
    // validate() bodies anywhere in this file (SystemConfig::validate
    // legitimately validates FaultConfig's fields, so the union is the
    // surface, not any single fn).
    let validate_bodies: Vec<(usize, usize)> = a
        .items
        .fns
        .iter()
        .filter(|item| item.name == "validate" && !f.in_test(item.line))
        .filter_map(|item| item.body)
        .collect();
    for s in &a.items.structs {
        if s.fields.is_empty() || f.in_test(s.line) {
            continue;
        }
        let impl_body = |trait_name: &str| {
            a.items
                .impls
                .iter()
                .find(|im| {
                    im.type_name == s.name
                        && im.trait_name.as_deref() == Some(trait_name)
                        && !f.in_test(im.line)
                })
                .map(|im| im.body)
        };
        let (Some(to_body), Some(from_body)) = (impl_body("ToJson"), impl_body("FromJson")) else {
            continue; // not a serialized config/report type
        };
        let is_design = DESIGN_STRUCTS.contains(&s.name.as_str());
        for field in &s.fields {
            let mut missing: Vec<&str> = Vec::new();
            if !appears(a, to_body, &field.name) {
                missing.push("ToJson");
            }
            if !appears(a, from_body, &field.name) {
                missing.push("FromJson");
            }
            if !validate_bodies.is_empty()
                && !validate_bodies.iter().any(|&b| appears(a, b, &field.name))
            {
                missing.push("validate()");
            }
            if is_design {
                if let Some(design) = &ws.design_md {
                    if !design.contains(&format!("`{}`", field.name)) {
                        missing.push("DESIGN.md config table");
                    }
                }
            }
            if !missing.is_empty() {
                out.push(diag(
                    f,
                    field.line,
                    "D8",
                    format!(
                        "config field `{}` of `{}` missing from surface(s): {}",
                        field.name,
                        s.name,
                        missing.join(", ")
                    ),
                ));
            }
        }
    }
}

/// Whether `name` appears in the code-token range `[b.0, b.1)` as an
/// identifier or inside a string literal with word boundaries.
fn appears(a: &Analysis, b: (usize, usize), name: &str) -> bool {
    let f = &a.file;
    for k in b.0..b.1 {
        match f.kind(k) {
            Some(TokenKind::Ident) if f.text(k) == name => return true,
            Some(TokenKind::Str) | Some(TokenKind::RawStr) if contains_word(f.text(k), name) => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Whether `hay` contains `needle` bounded by non-identifier characters.
fn contains_word(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(at) = hay[from..].find(needle) {
        let start = from + at;
        let end = start + needle.len();
        let left_ok = start == 0
            || !hay.as_bytes()[start - 1].is_ascii_alphanumeric()
                && hay.as_bytes()[start - 1] != b'_';
        let right_ok = end == hay.len()
            || !hay.as_bytes()[end].is_ascii_alphanumeric() && hay.as_bytes()[end] != b'_';
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}
