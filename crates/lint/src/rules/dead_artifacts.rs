//! Rule D10: dead-artifact detection.
//!
//! Two kinds of rot accumulate in a long-lived experiment repo:
//!
//! 1. **Dead grids** — a `const` sweep grid in
//!    `crates/core/src/experiments.rs` that no `crates/bench/src/bin/*`
//!    entry point can reach anymore (the figure it fed was rewired), so
//!    its values silently stop meaning anything;
//! 2. **Orphan goldens** — a `results/*.csv` / `results/*.json` file that
//!    no experiment, test, or CI script references, which will never be
//!    regenerated and never fail a comparison.
//!
//! Grid reachability is a fixpoint over identifier mentions: the seed set
//! is every identifier appearing in a bench binary; any `fn` or `const`
//! in `experiments.rs` whose name is reachable contributes the
//! identifiers of its body/value, until closure. This over-approximates
//! (a mention in dead code counts) — deliberately, since D10 is a
//! delete-me detector, not a proof system.
//!
//! An artifact is referenced when its file name — or its stem, or the
//! stem with a trailing `_drops` variant suffix removed — appears in any
//! string literal of any scanned `.rs` file, or anywhere in the raw text
//! of `scripts/*` / `.github/workflows/*`.

use super::{diag, Diagnostic};
use crate::graph::Workspace;
use crate::lexer::TokenKind;
use std::collections::BTreeSet;

const EXPERIMENTS: &str = "crates/core/src/experiments.rs";
const BENCH_BIN_PREFIX: &str = "crates/bench/src/bin/";

/// Entry point: both D10 checks.
pub fn d10_dead_artifacts(ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
    dead_grids(ws, out);
    orphan_goldens(ws, out);
}

fn dead_grids(ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
    let Some(exp) = ws.files.iter().find(|a| a.file.rel == EXPERIMENTS) else {
        return;
    };
    // Seed: every identifier mentioned in any bench entry point.
    let mut reachable: BTreeSet<String> = BTreeSet::new();
    for a in ws.files.iter() {
        if !a.file.rel.starts_with(BENCH_BIN_PREFIX) {
            continue;
        }
        for k in 0..a.file.code.len() {
            if a.file.kind(k) == Some(TokenKind::Ident) {
                reachable.insert(a.file.text(k).to_string());
            }
        }
    }
    // Closure over experiments.rs items.
    loop {
        let mut changed = false;
        for item in &exp.items.fns {
            let Some(body) = item.body else { continue };
            if exp.file.in_test(item.line) || !reachable.contains(&item.name) {
                continue;
            }
            changed |= absorb_idents(exp, body, &mut reachable);
        }
        for c in &exp.items.consts {
            if exp.file.in_test(c.line) || !reachable.contains(&c.name) {
                continue;
            }
            changed |= absorb_idents(exp, c.value, &mut reachable);
        }
        if !changed {
            break;
        }
    }
    for c in &exp.items.consts {
        if exp.file.in_test(c.line) || reachable.contains(&c.name) {
            continue;
        }
        out.push(diag(
            &exp.file,
            c.line,
            "D10",
            format!(
                "experiment grid `{}` is unreachable from every {BENCH_BIN_PREFIX}* entry point \
                 — delete it or wire it to a figure",
                c.name
            ),
        ));
    }
}

/// Insert every identifier in `[range.0, range.1)` into `set`; reports
/// whether anything new appeared.
fn absorb_idents(
    a: &crate::graph::Analysis,
    range: (usize, usize),
    set: &mut BTreeSet<String>,
) -> bool {
    let mut changed = false;
    for k in range.0..range.1 {
        if a.file.kind(k) == Some(TokenKind::Ident) && !set.contains(a.file.text(k)) {
            set.insert(a.file.text(k).to_string());
            changed = true;
        }
    }
    changed
}

fn orphan_goldens(ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
    for name in &ws.artifacts {
        let stem = name.rsplit_once('.').map_or(name.as_str(), |(s, _)| s);
        let base = stem.strip_suffix("_drops").unwrap_or(stem);
        let referenced = ws.files.iter().any(|a| {
            (0..a.file.code.len()).any(|k| {
                matches!(
                    a.file.kind(k),
                    Some(TokenKind::Str) | Some(TokenKind::RawStr)
                ) && {
                    let s = a.file.text(k);
                    s.contains(stem) || s.contains(base)
                }
            })
        }) || ws
            .reference_texts
            .iter()
            .any(|t| t.contains(name.as_str()) || t.contains(stem));
        if !referenced {
            out.push(Diagnostic {
                file: format!("results/{name}"),
                line: 1,
                rule: "D10",
                message: format!(
                    "results artifact `{name}` is referenced by no experiment, test, or script \
                     — delete it or add the comparison back"
                ),
                suggestion: None,
            });
        }
    }
}
