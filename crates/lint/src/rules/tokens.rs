//! Single-file token rules D1–D6.
//!
//! These run over one [`SourceFile`] at a time and match flat token
//! patterns; see the module docs in [`crate::rules`] for the engine and
//! suppression model. D4 and D6 attach machine-applicable
//! [`Suggestion`]s where the rewrite is unambiguous.

use super::{arg_text, call_args, diag, is_streams_path, Diagnostic, SourceFile, Suggestion};
use crate::lexer::TokenKind;
use std::collections::{BTreeMap, BTreeSet};

/// Map-iteration adaptors rule D2 flags on `HashMap`/`HashSet` bindings.
const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// D1 (call sites): outside `crates/sim`, the stream argument of
/// `stream_rng(seed, s)` and `SeedSeq::named(s)` must be a `streams::*`
/// constant — never a magic literal or free variable.
pub fn d1_stream_discipline(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.scope.crate_name.as_deref() == Some("sim") {
        return; // the discipline's own home defines and tests raw streams
    }
    for k in 0..f.code.len() {
        let (arg, line) = if f.text(k) == "stream_rng" && f.text(k + 1) == "(" {
            let (args, _) = call_args(f, k + 1);
            (args.get(1).copied(), f.line(k))
        } else if f.text(k) == "." && f.text(k + 1) == "named" && f.text(k + 2) == "(" {
            let (args, _) = call_args(f, k + 2);
            (args.first().copied(), f.line(k + 1))
        } else {
            continue;
        };
        let Some((a, b)) = arg else { continue };
        if !is_streams_path(f, a, b) {
            out.push(diag(
                f,
                line,
                "D1",
                format!(
                    "RNG stream argument `{}` must be a `streams::*` registry constant",
                    arg_text(f, a, b)
                ),
            ));
        }
    }
}

/// D1 (registry): `crates/core/src/simulation.rs` holds the single source
/// of truth — a `streams` module whose `const` ids are unique and each
/// carry a doc comment naming the owner.
pub fn d1_registry(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.rel != "crates/core/src/simulation.rs" {
        return;
    }
    // Locate `mod streams {` in the full stream (docs matter here).
    let mut open = None;
    for i in 0..f.tokens.len().saturating_sub(2) {
        if f.tokens[i].text == "mod"
            && f.tokens[i + 1].text == "streams"
            && f.tokens[i + 2].text == "{"
        {
            open = Some(i + 2);
            break;
        }
    }
    let Some(open) = open else {
        out.push(diag(
            f,
            1,
            "D1",
            "RNG stream registry `mod streams` not found in crates/core/src/simulation.rs"
                .to_string(),
        ));
        return;
    };
    let mut depth = 1i32;
    let mut i = open + 1;
    let mut seen: BTreeMap<u64, String> = BTreeMap::new();
    while i < f.tokens.len() && depth > 0 {
        match f.tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => depth -= 1,
            "const" if depth == 1 => {
                let name = f
                    .tokens
                    .get(i + 1)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                let line = f.tokens[i].line;
                // Preceding non-attribute token must be a doc comment.
                let documented = f.tokens[..i]
                    .iter()
                    .rev()
                    .find(|t| !matches!(t.text.as_str(), "pub"))
                    .is_some_and(|t| t.kind == TokenKind::LineComment && t.text.starts_with("///"));
                if !documented {
                    out.push(diag(
                        f,
                        line,
                        "D1",
                        format!("stream registry entry `{name}` lacks a /// doc comment naming its owner"),
                    ));
                }
                // Value: `const NAME: u64 = <int>;`
                let val = f.tokens[i..]
                    .iter()
                    .take(8)
                    .find(|t| t.kind == TokenKind::Int)
                    .and_then(|t| t.text.replace('_', "").parse::<u64>().ok());
                if let Some(v) = val {
                    if let Some(prev) = seen.insert(v, name.clone()) {
                        out.push(diag(
                            f,
                            line,
                            "D1",
                            format!("stream id {v} assigned to both `{prev}` and `{name}`"),
                        ));
                    }
                } else {
                    out.push(diag(
                        f,
                        line,
                        "D1",
                        format!("stream registry entry `{name}` must be a literal u64 id"),
                    ));
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// D2: wall clocks (`Instant`, `SystemTime`), thread `spawn`, and
/// iteration over `HashMap`/`HashSet` bindings are banned in library code
/// of sim-affecting crates. Map bindings are tracked by name within the
/// file (`x: HashMap<…>` or `let x = HashMap::new()`), a deliberately
/// simple file-local heuristic.
pub fn d2_nondeterminism(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.scope.sim_affecting() || !f.scope.library {
        return;
    }
    // Pass 1: names bound to HashMap/HashSet.
    let mut maps: BTreeSet<String> = BTreeSet::new();
    for k in 0..f.code.len() {
        let is_map = |t: &str| t == "HashMap" || t == "HashSet";
        // `name: [path::]HashMap<…>`
        if f.text(k) == ":" && f.kind(k.wrapping_sub(1)) == Some(TokenKind::Ident) && k >= 1 {
            let mut j = k + 1;
            while f.kind(j) == Some(TokenKind::Ident) && f.text(j + 1) == "::" {
                j += 2;
            }
            if f.kind(j) == Some(TokenKind::Ident) && is_map(f.text(j)) {
                maps.insert(f.text(k - 1).to_string());
            }
        }
        // `let [mut] name = [path::]HashMap::new()`
        if f.text(k) == "let" {
            let name_at = if f.text(k + 1) == "mut" { k + 2 } else { k + 1 };
            if f.kind(name_at) == Some(TokenKind::Ident) && f.text(name_at + 1) == "=" {
                let mut j = name_at + 2;
                let mut saw_map = false;
                while f.kind(j) == Some(TokenKind::Ident) && f.text(j + 1) == "::" {
                    saw_map |= is_map(f.text(j));
                    j += 2;
                }
                if saw_map {
                    maps.insert(f.text(name_at).to_string());
                }
            }
        }
    }
    // Pass 2: violations.
    for k in 0..f.code.len() {
        let t = f.text(k);
        let line = f.line(k);
        if f.kind(k) != Some(TokenKind::Ident) {
            continue;
        }
        match t {
            "Instant" | "SystemTime" => out.push(diag(
                f,
                line,
                "D2",
                format!(
                    "`{t}` (wall clock) is forbidden in sim-affecting crates — simulated time only"
                ),
            )),
            "spawn" => out.push(diag(
                f,
                line,
                "D2",
                "thread spawn in a sim-affecting crate — simulation must stay single-threaded \
                 (deterministic fan-out wrappers may be allow-listed)"
                    .to_string(),
            )),
            _ => {
                if maps.contains(t) && f.text(k + 1) == "." && ITER_METHODS.contains(&f.text(k + 2))
                {
                    out.push(diag(
                        f,
                        line,
                        "D2",
                        format!(
                            "iteration over hash-based `{t}` is nondeterministic — use BTreeMap/BTreeSet or sort first",
                        ),
                    ));
                }
                if t == "for" {
                    // `for pat in expr {` — flag a map name inside expr.
                    let mut j = k + 1;
                    let mut in_at = None;
                    while j < f.code.len() && f.text(j) != "{" && f.text(j) != ";" {
                        if f.text(j) == "in" {
                            in_at = Some(j);
                        } else if in_at.is_some()
                            && f.kind(j) == Some(TokenKind::Ident)
                            && maps.contains(f.text(j))
                            && f.text(j + 1) != "."
                        {
                            out.push(diag(
                                f,
                                f.line(j),
                                "D2",
                                format!(
                                    "`for … in` over hash-based `{}` is nondeterministic — use BTreeMap/BTreeSet or sort first",
                                    f.text(j)
                                ),
                            ));
                        }
                        j += 1;
                    }
                }
            }
        }
    }
}

/// D3: `unwrap()`, `expect(…)` and `panic!(…)` are banned in non-test
/// library code. Invariant-backed sites keep `expect` with a message and an
/// `allow(D3)` justification; everything else returns `Result`.
pub fn d3_panic_hygiene(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.scope.library {
        return;
    }
    for k in 0..f.code.len() {
        let line = f.line(k);
        if f.in_test(line) {
            continue;
        }
        if f.text(k) == "." && f.text(k + 2) == "(" {
            let m = f.text(k + 1);
            if m == "unwrap" || m == "expect" {
                out.push(diag(
                    f,
                    f.line(k + 1),
                    "D3",
                    format!(
                        "`.{m}(…)` in library code — return a Result, or justify with an allow(D3) comment"
                    ),
                ));
            }
        }
        if f.text(k) == "panic" && f.text(k + 1) == "!" && f.text(k + 2) == "(" {
            out.push(diag(
                f,
                line,
                "D3",
                "`panic!` in library code — return a Result, or justify with an allow(D3) comment"
                    .to_string(),
            ));
        }
    }
}

/// D4: `==`/`!=` with a float operand in non-test library code. The
/// heuristic flags comparisons where an adjacent operand token is a float
/// literal or an `f32::`/`f64::` associated constant; route these through
/// `bpp_sim::approx` instead.
///
/// When both operands are single tokens the rewrite is unambiguous and
/// the diagnostic carries a `replace` suggestion:
/// `x == 1.0` → `approx_eq(x, 1.0)`, `x != 1.0` → `!approx_eq(x, 1.0)`.
pub fn d4_float_eq(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.scope.library {
        return;
    }
    for k in 0..f.code.len() {
        let t = f.text(k);
        if t != "==" && t != "!=" {
            continue;
        }
        let line = f.line(k);
        if f.in_test(line) {
            continue;
        }
        let next_float = f.kind(k + 1) == Some(TokenKind::Float)
            || ((f.text(k + 1) == "f64" || f.text(k + 1) == "f32") && f.text(k + 2) == "::");
        let prev_float = k >= 1 && f.kind(k - 1) == Some(TokenKind::Float)
            || (k >= 3
                && (f.text(k - 3) == "f64" || f.text(k - 3) == "f32")
                && f.text(k - 2) == "::");
        if next_float || prev_float {
            let mut d = diag(
                f,
                line,
                "D4",
                format!(
                    "float `{t}` comparison — use bpp_sim::approx (exactly/exactly_zero/approx_eq) instead"
                ),
            );
            d.suggestion = d4_suggestion(f, k, t);
            out.push(d);
        }
    }
}

/// The `approx_eq` rewrite for a float comparison at code index `k`, when
/// both operands are single tokens (ident or literal) so the span is
/// unambiguous. Multi-token operands (field accesses, calls) get no
/// suggestion — the rewrite boundary cannot be recovered from tokens.
fn d4_suggestion(f: &SourceFile, k: usize, op: &str) -> Option<Suggestion> {
    let single = |j: usize| {
        matches!(
            f.kind(j),
            Some(TokenKind::Ident) | Some(TokenKind::Float) | Some(TokenKind::Int)
        )
        .then(|| f.text(j).to_string())
    };
    // The operand tokens must also be expression boundaries: the token
    // before the lhs / after the rhs must not extend the expression.
    let extends = |t: &str| matches!(t, "." | "::" | ")" | "]" | "-");
    let lhs = single(k.checked_sub(1)?)?;
    let rhs = single(k + 1)?;
    if k >= 2 && extends(f.text(k - 2)) || extends(f.text(k + 2)) || f.text(k + 2) == "(" {
        return None;
    }
    // The byte span `lhs OP rhs` is machine-replaceable only when all
    // three tokens share the diagnostic's line.
    let span = (f.line(k - 1) == f.line(k) && f.line(k + 1) == f.line(k))
        .then(|| {
            let a = f.t(k - 1)?.col;
            let b = f.t(k + 1)?;
            Some((a, b.col + b.text.len() as u32))
        })
        .flatten();
    let call = format!("approx_eq({lhs}, {rhs})");
    Some(Suggestion {
        line: f.line(k),
        kind: "replace",
        text: if op == "!=" { format!("!{call}") } else { call },
        span,
    })
}

/// D5: within one file, an `impl ToJson for T` and an `impl FromJson for T`
/// must use the same set of serialized keys, catching one-sided renames.
///
/// Key positions, not all string literals, are compared (error messages
/// and enum variant names must not count): on the `to_json` side a key is
/// a string preceded by `(` and followed by `,` or `.` (the
/// `("key", value)` / `("key".to_string(), value)` tuple conventions); on
/// the `from_json` side it is a string between `,` and `)` (the
/// `field(v, "key")` / `opt_field(v, "key")` accessor convention).
pub fn d5_json_key_drift(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    // (type name) -> (to_json keys, from_json keys, line of second impl)
    let mut to_keys: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut from_keys: BTreeMap<String, (BTreeSet<String>, u32)> = BTreeMap::new();
    for k in 0..f.code.len() {
        let trait_name = f.text(k);
        if trait_name != "ToJson" && trait_name != "FromJson" {
            continue;
        }
        // Walk back over a path prefix (`bpp_json::`) to find `impl`.
        let mut b = k;
        while b >= 2 && f.text(b - 1) == "::" {
            b -= 2;
        }
        if b == 0 || f.text(b - 1) != "impl" {
            continue;
        }
        if f.text(k + 1) != "for" {
            continue;
        }
        // Type name: last ident before the opening `{`.
        let mut j = k + 2;
        let mut ty = String::new();
        while j < f.code.len() && f.text(j) != "{" {
            if f.kind(j) == Some(TokenKind::Ident) {
                ty = f.text(j).to_string();
            }
            j += 1;
        }
        if ty.is_empty() || j >= f.code.len() {
            continue;
        }
        let impl_line = f.line(k);
        // Collect string literals inside the impl block.
        let mut depth = 1i32;
        let mut keys = BTreeSet::new();
        let mut m = j + 1;
        while m < f.code.len() && depth > 0 {
            match f.text(m) {
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {
                    if matches!(f.kind(m), Some(TokenKind::Str)) {
                        let key_position = if trait_name == "ToJson" {
                            m >= 1
                                && f.text(m - 1) == "("
                                && (f.text(m + 1) == "," || f.text(m + 1) == ".")
                        } else {
                            m >= 1 && f.text(m - 1) == "," && f.text(m + 1) == ")"
                        };
                        if key_position {
                            let raw = f.text(m);
                            keys.insert(raw.trim_matches('"').to_string());
                        }
                    }
                }
            }
            m += 1;
        }
        if trait_name == "ToJson" {
            to_keys.entry(ty).or_default().extend(keys);
        } else {
            let e = from_keys
                .entry(ty)
                .or_insert_with(|| (BTreeSet::new(), impl_line));
            e.0.extend(keys);
        }
    }
    for (ty, (fk, line)) in &from_keys {
        let Some(tk) = to_keys.get(ty) else { continue };
        let only_to: Vec<&String> = tk.difference(fk).collect();
        let only_from: Vec<&String> = fk.difference(tk).collect();
        if !only_to.is_empty() || !only_from.is_empty() {
            out.push(diag(
                f,
                *line,
                "D5",
                format!(
                    "JSON key drift for `{ty}`: to_json-only {only_to:?}, from_json-only {only_from:?}"
                ),
            ));
        }
    }
}

/// D6: each crate's `lib.rs` must carry `#![forbid(unsafe_code)]` so the
/// guarantee survives even outside workspace-lint builds. The diagnostic
/// carries an `insert` suggestion for line 1 — the attribute text is
/// always the same, so the fix is machine-applicable.
pub fn d6_forbid_unsafe(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.scope.lib_rs {
        return;
    }
    let found = (0..f.code.len()).any(|k| {
        f.text(k) == "#"
            && f.text(k + 1) == "!"
            && f.text(k + 2) == "["
            && f.text(k + 3) == "forbid"
            && f.text(k + 4) == "("
            && f.text(k + 5) == "unsafe_code"
    });
    if !found {
        let mut d = diag(
            f,
            1,
            "D6",
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
        d.suggestion = Some(Suggestion {
            line: 1,
            kind: "insert",
            text: "#![forbid(unsafe_code)]".to_string(),
            span: None,
        });
        out.push(d);
    }
}
