//! Rule D7: stream-flow — one RNG stream, one component.
//!
//! The determinism architecture gives every consumer of randomness its
//! own counter-based stream (`stream_rng(seed, streams::X)`), so that
//! adding or removing draws in one component can never shift the variates
//! seen by another. That guarantee has two ways to rot:
//!
//! 1. **Shared handles** — a handle born for one component is threaded
//!    into a second one (`mux.decide(&mut rng); mc.draw_think(&mut rng)`),
//!    re-coupling their draw sequences;
//! 2. **Duplicate construction** — the same registry stream is
//!    constructed at two sites, so two actors consume one logical stream.
//!
//! The rule builds an interprocedural flow per handle: a handle *birth*
//! is `let [mut] NAME = stream_rng(…, streams::X)` or a struct-literal
//! member `NAME: stream_rng(…, streams::X)`; a *use* is the handle
//! appearing as a call argument. Calls resolve by name through the
//! [`Workspace`] indices (ambiguous names never resolve — the rule would
//! rather miss a flow than invent one), and resolution recurses one level
//! further through the callee's own `Rng`-typed parameters, so a handle
//! laundered through a helper is still tracked. A handle whose flow set —
//! home component excluded — spans ≥ 2 components is flagged at its
//! birth line.
//!
//! Scope: non-test library code of component crates (see
//! [`crate::graph::component_of`]); `crates/sim` and test regions are
//! exempt. A handle passed to an *unresolvable* named call is left alone;
//! a construction passed directly as an argument (no binding) reaches
//! exactly one callee and cannot violate the flow rule (duplicate-site
//! detection still sees it).

use super::{call_args, diag, streams_const, Diagnostic, SourceFile};
use crate::graph::{component_of, Workspace};
use crate::lexer::TokenKind;
use std::collections::{BTreeMap, BTreeSet};

/// Entry point: both D7 checks over the whole workspace.
pub fn d7_stream_flow(ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
    duplicate_sites(ws, out);
    handle_flows(ws, out);
}

/// D7a: every `streams::X` registry constant may be constructed into an
/// RNG at most once across all component library code.
fn duplicate_sites(ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
    // stream const -> construction sites (file order = sorted rel paths).
    let mut sites: BTreeMap<String, Vec<(usize, u32)>> = BTreeMap::new();
    for (fi, a) in ws.files.iter().enumerate() {
        let f = &a.file;
        if component_of(&f.rel, f.scope.library).is_none() {
            continue;
        }
        for k in 0..f.code.len() {
            let (open, line) = if f.text(k) == "stream_rng" && f.text(k + 1) == "(" {
                (k + 1, f.line(k))
            } else if f.text(k) == "." && f.text(k + 1) == "named" && f.text(k + 2) == "(" {
                (k + 2, f.line(k + 1))
            } else {
                continue;
            };
            if f.in_test(line) {
                continue;
            }
            let (args, _) = call_args(f, open);
            let stream = args.iter().find_map(|&(a1, b1)| streams_const(f, a1, b1));
            if let Some(s) = stream {
                sites.entry(s).or_default().push((fi, line));
            }
        }
    }
    for (stream, locs) in &sites {
        if locs.len() < 2 {
            continue;
        }
        let (fi0, l0) = locs[0];
        let first = format!("{}:{}", ws.files[fi0].file.rel, l0);
        for &(fi, line) in &locs[1..] {
            out.push(diag(
                &ws.files[fi].file,
                line,
                "D7",
                format!(
                    "RNG stream `streams::{stream}` constructed at {} sites (first at {first}) \
                     — one stream, one construction site",
                    locs.len()
                ),
            ));
        }
    }
}

/// One handle birth inside a file.
struct Birth {
    /// Bound name (`rng_mux`) — a local or a struct-literal field.
    name: String,
    /// `streams::X` constant name.
    stream: String,
    line: u32,
    /// Code index of the name token.
    at: usize,
    /// Struct-literal member (uses match `.name`) vs local (bare `name`).
    field: bool,
}

/// D7b: flag a handle whose uses reach two or more components besides its
/// home.
fn handle_flows(ws: &Workspace<'_>, out: &mut Vec<Diagnostic>) {
    let mut forward_cache: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for a in ws.files.iter() {
        let f = &a.file;
        let Some(home) = component_of(&f.rel, f.scope.library) else {
            continue;
        };
        for birth in births(f) {
            // Locals are confined to their enclosing fn body; struct
            // members are visible to every method in the file.
            let range = if birth.field {
                (0, f.code.len())
            } else {
                a.items
                    .fns
                    .iter()
                    .filter_map(|item| item.body)
                    .find(|&(b0, b1)| b0 <= birth.at && birth.at < b1)
                    .unwrap_or((0, f.code.len()))
            };
            let mut flow: BTreeSet<String> = BTreeSet::new();
            for u in usage_sites(f, &birth, range) {
                if let Some((callee, comp)) = enclosing_call(ws, f, u) {
                    flow.insert(comp);
                    flow.extend(forward_flow(ws, &callee, &mut forward_cache));
                }
            }
            flow.remove(&home);
            if flow.len() >= 2 {
                let comps: Vec<&str> = flow.iter().map(String::as_str).collect();
                out.push(diag(
                    f,
                    birth.line,
                    "D7",
                    format!(
                        "stream handle `{}` (streams::{}) flows into {} components: {} — \
                         one stream, one component",
                        birth.name,
                        birth.stream,
                        flow.len(),
                        comps.join(", ")
                    ),
                ));
            }
        }
    }
}

/// Handle births in non-test code of `f`.
fn births(f: &SourceFile) -> Vec<Birth> {
    let mut out = Vec::new();
    for k in 0..f.code.len() {
        if f.text(k) != "stream_rng" || f.text(k + 1) != "(" {
            continue;
        }
        let line = f.line(k);
        if f.in_test(line) {
            continue;
        }
        let (args, _) = call_args(f, k + 1);
        let Some(stream) = args.iter().find_map(|&(a, b)| streams_const(f, a, b)) else {
            continue;
        };
        // `let [mut] NAME = stream_rng(…)`
        if k >= 2 && f.text(k - 1) == "=" && f.kind(k - 2) == Some(TokenKind::Ident) {
            let name_at = k - 2;
            let intro = if f.text(name_at.wrapping_sub(1)) == "mut" {
                name_at.wrapping_sub(2)
            } else {
                name_at.wrapping_sub(1)
            };
            if f.text(intro) == "let" {
                out.push(Birth {
                    name: f.text(name_at).to_string(),
                    stream,
                    line,
                    at: name_at,
                    field: false,
                });
                continue;
            }
        }
        // Struct-literal member `NAME: stream_rng(…)`
        if k >= 2 && f.text(k - 1) == ":" && f.kind(k - 2) == Some(TokenKind::Ident) {
            out.push(Birth {
                name: f.text(k - 2).to_string(),
                stream,
                line,
                at: k - 2,
                field: true,
            });
        }
    }
    out
}

/// Code indices where the handle is mentioned as a value (excluding its
/// own birth), within `[range.0, range.1)`.
fn usage_sites(f: &SourceFile, birth: &Birth, range: (usize, usize)) -> Vec<usize> {
    let mut out = Vec::new();
    for u in range.0..range.1 {
        if u == birth.at
            || f.kind(u) != Some(TokenKind::Ident)
            || f.text(u) != birth.name
            || f.in_test(f.line(u))
        {
            continue;
        }
        let prev = if u >= 1 { f.text(u - 1) } else { "" };
        let matches_shape = if birth.field {
            prev == "." // `self.name`, `world.name`
        } else {
            prev != "." && prev != "::"
        };
        if matches_shape {
            out.push(u);
        }
    }
    out
}

/// The innermost *named* call enclosing code index `u`, resolved to
/// (callee fn name, component). Grouping parens and macro invocations are
/// transparent (the search continues outward); a named call that fails to
/// resolve stops the search — the flow is unknown, not absent.
fn enclosing_call(ws: &Workspace<'_>, f: &SourceFile, u: usize) -> Option<(String, String)> {
    let mut depth = 0i32;
    let mut j = u;
    while j > 0 {
        j -= 1;
        match f.text(j) {
            ")" | "]" | "}" => depth += 1,
            "(" => {
                if depth > 0 {
                    depth -= 1;
                    continue;
                }
                // An unmatched `(` — the enclosing paren. Named call?
                let is_named = j >= 1
                    && f.kind(j - 1) == Some(TokenKind::Ident)
                    && (j < 2 || f.text(j - 2) != "!");
                if is_named {
                    return ws.resolve_call(f, j);
                }
                // Grouping / tuple / macro: transparent, keep walking.
            }
            "[" | "{" if depth > 0 => depth -= 1,
            "[" | "{" => {
                // Unmatched `[`/`{` — indexing or a block/struct literal;
                // treat as transparent like grouping parens.
            }
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Components that fn `name` forwards its own `Rng`-typed parameters
/// into, transitively. Memoized; cycles terminate via the in-progress
/// marker (an empty set is inserted before recursion).
fn forward_flow(
    ws: &Workspace<'_>,
    name: &str,
    cache: &mut BTreeMap<String, BTreeSet<String>>,
) -> BTreeSet<String> {
    if let Some(hit) = cache.get(name) {
        return hit.clone();
    }
    cache.insert(name.to_string(), BTreeSet::new());
    let mut flow = BTreeSet::new();
    if let Some(defs) = ws.fn_defs.get(name) {
        for &(fi, gi) in defs {
            let a = &ws.files[fi];
            let item = &a.items.fns[gi];
            let Some(body) = item.body else { continue };
            let rng_params = rng_param_names(item);
            for p in rng_params {
                let pseudo = Birth {
                    name: p,
                    stream: String::new(),
                    line: item.line,
                    at: usize::MAX, // params have no code-index birth
                    field: false,
                };
                for u in usage_sites(&a.file, &pseudo, body) {
                    if let Some((callee, comp)) = enclosing_call(ws, &a.file, u) {
                        flow.insert(comp);
                        if callee != name {
                            flow.extend(forward_flow(ws, &callee, cache));
                        }
                    }
                }
            }
        }
    }
    cache.insert(name.to_string(), flow.clone());
    flow
}

/// Names of parameters whose type is RNG-like: the type tokens mention
/// `Rng`/`Xoshiro256pp` directly, or name a generic parameter bounded by
/// `Rng` (`fn f<R: Rng + ?Sized>(…, rng: &mut R)`).
fn rng_param_names(item: &crate::parse::FnItem) -> Vec<String> {
    let generic_rng = rng_bounded_generics(&item.generics);
    item.params
        .iter()
        .filter_map(|p| {
            let name = p.name.clone()?;
            if name == "self" {
                return None;
            }
            let words: Vec<&str> = p.ty.split(' ').collect();
            let is_rng = words
                .iter()
                .any(|w| *w == "Rng" || *w == "Xoshiro256pp" || generic_rng.iter().any(|g| g == w));
            is_rng.then_some(name)
        })
        .collect()
}

/// Generic parameter names bounded by `Rng` in a space-joined generics
/// token string (`"R : Rng + ? Sized"` → `["R"]`).
fn rng_bounded_generics(generics: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current: Option<&str> = None;
    let mut prev = "";
    for w in generics.split(' ') {
        match w {
            ":" => current = Some(prev),
            "," => current = None,
            "Rng" => {
                if let Some(c) = current {
                    out.push(c.to_string());
                }
            }
            _ => {}
        }
        prev = w;
    }
    out
}
