//! Rule D9: time-unit discipline.
//!
//! The simulator measures every duration in **broadcast units** (the time
//! to push one page); the workspace naming convention marks such values
//! with a `_bu` suffix, while `_count` marks cardinalities and `_ratio`
//! marks dimensionless quotients. Adding a wait time to a request count,
//! or comparing a duration against a ratio, is a unit error the type
//! system cannot see (everything is `f64`/`u64`) — but the names can.
//!
//! The rule classifies identifier tokens by suffix and flags the additive
//! and comparison operators (`+ - += -= < <= > >= == !=`) applied between
//! two *differently classified* identifiers. Multiplication and division
//! are exempt: `count * ratio` and `total_bu / count` legitimately change
//! units. Unsuffixed names are unclassified and never participate, so the
//! rule only fires where both operands opted into the convention —
//! near-zero false positives by construction.

use super::{diag, Diagnostic, SourceFile};
use crate::lexer::TokenKind;

/// Crates the discipline applies to (the sim-affecting pipeline the issue
/// names: simulation kernel, experiment core, and both endpoints).
const UNIT_CRATES: [&str; 4] = ["sim", "core", "server", "client"];

/// Operators that require both operands to carry the same unit.
const SAME_UNIT_OPS: [&str; 10] = ["+", "-", "+=", "-=", "<", "<=", ">", ">=", "==", "!="];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnitClass {
    BroadcastUnits,
    Count,
    Ratio,
}

impl UnitClass {
    fn of(name: &str) -> Option<UnitClass> {
        if name.ends_with("_bu") {
            Some(UnitClass::BroadcastUnits)
        } else if name.ends_with("_count") {
            Some(UnitClass::Count)
        } else if name.ends_with("_ratio") {
            Some(UnitClass::Ratio)
        } else {
            None
        }
    }

    fn label(self) -> &'static str {
        match self {
            UnitClass::BroadcastUnits => "broadcast-units (*_bu)",
            UnitClass::Count => "count (*_count)",
            UnitClass::Ratio => "ratio (*_ratio)",
        }
    }
}

/// D9: flag `a OP b` where `a` and `b` are suffix-classified identifiers
/// of different unit classes and `OP` is additive or comparative. Library
/// code of [`UNIT_CRATES`] only; test regions are exempt.
pub fn d9_unit_discipline(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.scope.library
        || !f
            .scope
            .crate_name
            .as_deref()
            .is_some_and(|c| UNIT_CRATES.contains(&c))
    {
        return;
    }
    for k in 1..f.code.len() {
        let op = f.text(k);
        if !SAME_UNIT_OPS.contains(&op) {
            continue;
        }
        let line = f.line(k);
        if f.in_test(line) {
            continue;
        }
        // Both operands must be *plain* classified identifiers: a leading
        // `.`/`::` means the token is a path/field segment whose base this
        // rule does not resolve; a trailing `.`/`(` on the rhs means the
        // ident is a receiver or call, not the operand value. `self.x` is
        // still classified via the `x` token (its preceding `.` is walked
        // over below).
        let lhs = operand_class(f, k - 1, true);
        let rhs = operand_class(f, k + 1, false);
        if let (Some((ln, lc)), Some((rn, rc))) = (lhs, rhs) {
            if lc != rc {
                out.push(diag(
                    f,
                    line,
                    "D9",
                    format!(
                        "mixed-unit `{op}`: `{ln}` is {} but `{rn}` is {} — convert explicitly \
                         before combining",
                        lc.label(),
                        rc.label()
                    ),
                ));
            }
        }
    }
}

/// Classify the operand adjacent to an operator. `at` is the code index
/// directly before (lhs) or after (rhs) the operator; returns the
/// identifier's name and class when it is a classified plain ident or a
/// `self.x` / `recv.x` field access ending in a classified name.
fn operand_class(f: &SourceFile, at: usize, lhs: bool) -> Option<(String, UnitClass)> {
    if f.kind(at) != Some(TokenKind::Ident) {
        return None;
    }
    if !lhs {
        // rhs: the operand extends rightwards past the ident. A field
        // access (`recv.field`) classifies by its final segment; a call
        // or path (`name(…)`, `name::…`) is opaque and never classified.
        if f.text(at + 1) == "." && f.kind(at + 2) == Some(TokenKind::Ident) {
            return operand_class(f, at + 2, false);
        }
        if matches!(f.text(at + 1), "(" | "::") {
            return None;
        }
    }
    // (For the lhs, `at` sits directly left of the operator, so nothing
    // can extend the expression rightwards; `self.name` classifies by
    // `name` because the receiver tokens sit further left.)
    if at >= 1 && f.text(at - 1) == "::" {
        return None; // path segment — constants are not unit-classified
    }
    let name = f.text(at);
    let class = UnitClass::of(name)?;
    Some((name.to_string(), class))
}
