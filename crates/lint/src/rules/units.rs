//! Rule D9: time-unit discipline.
//!
//! The simulator measures every duration in **broadcast units** (the time
//! to push one page); the workspace naming convention marks such values
//! with a `_bu` suffix, while `_count` marks cardinalities and `_ratio`
//! marks dimensionless quotients. Adding a wait time to a request count,
//! or comparing a duration against a ratio, is a unit error the type
//! system cannot see (everything is `f64`/`u64`) — but the names can.
//!
//! The rule classifies identifier tokens by suffix and flags the additive
//! and comparison operators (`+ - += -= < <= > >= == !=`) applied between
//! two *differently classified* identifiers. Multiplication and division
//! are exempt: `count * ratio` and `total_bu / count` legitimately change
//! units. Unsuffixed names are unclassified and never participate, so the
//! rule only fires where both operands opted into the convention —
//! near-zero false positives by construction.

use super::{diag, Diagnostic, SourceFile};
use crate::lexer::TokenKind;

/// Crates the discipline applies to (the sim-affecting pipeline the issue
/// names: simulation kernel, experiment core, and both endpoints).
pub(crate) const UNIT_CRATES: [&str; 4] = ["sim", "core", "server", "client"];

/// Operators that require both operands to carry the same unit.
pub(crate) const SAME_UNIT_OPS: [&str; 10] =
    ["+", "-", "+=", "-=", "<", "<=", ">", ">=", "==", "!="];

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum UnitClass {
    BroadcastUnits,
    Count,
    Ratio,
}

impl UnitClass {
    pub(crate) fn of(name: &str) -> Option<UnitClass> {
        if name.ends_with("_bu") {
            Some(UnitClass::BroadcastUnits)
        } else if name.ends_with("_count") {
            Some(UnitClass::Count)
        } else if name.ends_with("_ratio") {
            Some(UnitClass::Ratio)
        } else {
            None
        }
    }

    pub(crate) fn label(self) -> &'static str {
        match self {
            UnitClass::BroadcastUnits => "broadcast-units (*_bu)",
            UnitClass::Count => "count (*_count)",
            UnitClass::Ratio => "ratio (*_ratio)",
        }
    }
}

/// D9: flag `a OP b` where `a` and `b` are suffix-classified identifiers
/// of different unit classes and `OP` is additive or comparative. Library
/// code of [`UNIT_CRATES`] only; test regions are exempt.
pub fn d9_unit_discipline(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.scope.library
        || !f
            .scope
            .crate_name
            .as_deref()
            .is_some_and(|c| UNIT_CRATES.contains(&c))
    {
        return;
    }
    for k in 1..f.code.len() {
        let op = f.text(k);
        if !SAME_UNIT_OPS.contains(&op) {
            continue;
        }
        let line = f.line(k);
        if f.in_test(line) {
            continue;
        }
        // Both operands must be *plain* classified identifiers: a leading
        // `.`/`::` means the token is a path/field segment whose base this
        // rule does not resolve; a trailing `.`/`(` on the rhs means the
        // ident is a receiver or call, not the operand value. `self.x` is
        // still classified via the `x` token (its preceding `.` is walked
        // over below).
        let lhs = operand_class(f, k - 1, true);
        let rhs = operand_class(f, k + 1, false);
        if let (Some((ln, lc)), Some((rn, rc))) = (lhs, rhs) {
            if lc != rc {
                out.push(diag(
                    f,
                    line,
                    "D9",
                    format!(
                        "mixed-unit `{op}`: `{ln}` is {} but `{rn}` is {} — convert explicitly \
                         before combining",
                        lc.label(),
                        rc.label()
                    ),
                ));
            }
        }
    }
}

/// Classify the operand adjacent to an operator. `at` is the code index
/// directly before (lhs) or after (rhs) the operator; returns the
/// identifier's name and class when it is a classified plain ident, a
/// `self.x` / `recv.x` field access ending in a classified name, or
/// either of those wrapped in unit-preserving grouping: parentheses and
/// unary negation (`(b_count)`, `- -c_count`, `(-a_bu)`).
fn operand_class(f: &SourceFile, at: usize, lhs: bool) -> Option<(String, UnitClass)> {
    let at = if lhs {
        if f.text(at) == ")" {
            grouped_operand_back(f, at)?
        } else {
            // `at` sits directly left of the operator, so nothing can
            // extend the expression rightwards; `self.name` classifies by
            // `name` because the receiver tokens sit further left.
            at
        }
    } else {
        // rhs: the operand extends rightwards past the ident and may be
        // prefixed by grouping parens or unary minus.
        match f.text(at) {
            "(" | "-" => grouped_operand_fwd(f, at)?,
            _ => {
                if f.kind(at) != Some(TokenKind::Ident) {
                    return None;
                }
                // A field access (`recv.field`) classifies by its final
                // segment; a call or path (`name(…)`, `name::…`) is
                // opaque and never classified.
                if f.text(at + 1) == "." && f.kind(at + 2) == Some(TokenKind::Ident) {
                    return operand_class(f, at + 2, false);
                }
                if matches!(f.text(at + 1), "(" | "::") {
                    return None;
                }
                at
            }
        }
    };
    if f.kind(at) != Some(TokenKind::Ident) {
        return None;
    }
    if at >= 1 && f.text(at - 1) == "::" {
        return None; // path segment — constants are not unit-classified
    }
    let name = f.text(at);
    let class = UnitClass::of(name)?;
    Some((name.to_string(), class))
}

/// Resolve an rhs operand that starts with grouping parens or unary
/// minus: `-x`, `(x)`, `(-recv.x)`, `((x))`. Returns the index of the
/// operand's final ident segment. Strict by design: the group must hold
/// exactly one (possibly negated, possibly dotted) identifier — any
/// other content is a compound expression whose units this token-level
/// rule does not resolve.
fn grouped_operand_fwd(f: &SourceFile, mut k: usize) -> Option<usize> {
    let mut opens = 0usize;
    loop {
        match f.text(k) {
            "(" => opens += 1,
            "-" => {}
            _ => break,
        }
        k += 1;
    }
    if f.kind(k) != Some(TokenKind::Ident) {
        return None;
    }
    while f.text(k + 1) == "." && f.kind(k + 2) == Some(TokenKind::Ident) {
        k += 2;
    }
    if matches!(f.text(k + 1), "(" | "::") {
        return None; // call or path, not a value operand
    }
    for i in 0..opens {
        if f.text(k + 1 + i) != ")" {
            return None; // compound expression inside the group
        }
    }
    Some(k)
}

/// Resolve an lhs operand ending in `)`: `(x)`, `(-x)`, `((self.x))`.
/// Returns the index of the final ident segment. Rejects call/index
/// suffix parens (`foo(x)`, `xs[i](x)`): those close an argument list,
/// not a grouped operand.
fn grouped_operand_back(f: &SourceFile, at: usize) -> Option<usize> {
    let mut closes = 0usize;
    let mut k = at;
    while f.text(k) == ")" {
        closes += 1;
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    if f.kind(k) != Some(TokenKind::Ident) {
        return None;
    }
    let ident = k;
    while k >= 2 && f.text(k - 1) == "." && f.kind(k - 2) == Some(TokenKind::Ident) {
        k -= 2;
    }
    while k >= 1 && f.text(k - 1) == "-" {
        k -= 1;
    }
    for i in 1..=closes {
        if k < i || f.text(k - i) != "(" {
            return None; // compound expression inside the group
        }
    }
    let open = k - closes;
    if open >= 1
        && (f.kind(open - 1) == Some(TokenKind::Ident) || matches!(f.text(open - 1), ")" | "]"))
    {
        return None; // argument list of a call, not grouping
    }
    Some(ident)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn d9(src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::new(
            "crates/core/src/x.rs".to_string(),
            lex(src).expect("test source must lex"),
        );
        let mut out = Vec::new();
        d9_unit_discipline(&f, &mut out);
        out
    }

    #[test]
    fn parenthesized_rhs_operand_is_classified() {
        let out = d9("pub fn f(a_bu: f64, b_count: f64) -> bool { a_bu < (b_count) }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("b_count"));
    }

    #[test]
    fn double_negated_rhs_operand_is_classified() {
        let out = d9("pub fn f(a_bu: f64, c_count: f64) -> f64 { a_bu - -c_count }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("c_count"));
    }

    #[test]
    fn negated_parenthesized_lhs_operand_is_classified() {
        let out = d9("pub fn f(a_bu: f64, b_count: f64) -> bool { (-a_bu) < b_count }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("a_bu"));
    }

    #[test]
    fn grouped_field_access_is_classified() {
        let out = d9("pub struct S { pub wait_bu: f64 }\n\
             impl S { pub fn f(&self, n_count: f64) -> bool { (self.wait_bu) < n_count } }");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("wait_bu"));
    }

    #[test]
    fn call_argument_parens_are_not_grouping() {
        // `norm(a_count)` is a call whose return units are unknown.
        let out = d9("pub fn f(a_count: f64, b_bu: f64) -> bool { norm(a_count) < b_bu }");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn compound_groups_stay_unclassified() {
        // A parenthesized quotient has already changed units.
        let out =
            d9("pub fn f(total_bu: f64, n_count: f64, w_bu: f64) -> bool { (total_bu / n_count) < w_bu }");
        assert!(out.is_empty(), "{out:?}");
    }
}
