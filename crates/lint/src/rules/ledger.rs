//! Rule D12: ledger-bucket coverage.
//!
//! The chaos harness's `ConservationLedger` enforces at *runtime* that
//! every request sent is accounted for by exactly one terminal bucket:
//!
//! ```text
//! sent == lost_in_transit + browned_out + orphaned + admission_rejected
//!       + dropped_full + evicted + served + in_flight_at_end
//! ```
//!
//! D12 is the static complement: on every control-flow path that
//! *terminates* a request — returning `DroppedFull`, `Refused`,
//! `RetryAfter`, or dropping it silently — **some** bucket counter must
//! have been incremented, and no path may definitely increment two
//! distinct terminal buckets (a double-counted request). The analysis is
//! a forward dataflow over each function's CFG with state
//! `(definite, possible)`: the sets of counters incremented on *every*
//! path (∩-join) and on *some* path (∪-join) reaching the point.
//! Increments reached through calls are folded in via per-function
//! summaries (the increment for a transit-lost request happens inside
//! `transit_lost()`, not at its call site), iterated to a fixpoint over
//! the scoped files.
//!
//! Requirements are deliberately asymmetric to avoid false positives
//! from cross-function correlation:
//!
//! * terminal outcomes check the **possible** set (the `rejected`
//!   increment for a `RetryAfter` return happens inside `admit()` under
//!   a condition this intraprocedural view cannot correlate);
//! * the double-count check uses the **definite** set (a counter
//!   accumulated in a loop joins back to "possible", never "definite").
//!
//! Scope: the request-path files (`simulation.rs`, `queue.rs`,
//! `admission.rs`, `fault.rs`, `chaos.rs`) of the `core` and `server`
//! crates — `chaos.rs` orchestrates the audited fault campaigns, so its
//! outcome handling is held to the same conservation discipline.

use super::{diag, Diagnostic, SourceFile};
use crate::dataflow::{forward, Lattice};
use crate::expr::{ExprArena, ExprId, ExprKind};
use crate::graph::{Body, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// Counters that terminate a request's accounting (one per request, ever).
const TERMINAL: [&str; 8] = [
    "requests_lost",
    "requests_browned_out",
    "orphaned_drained",
    "refused_down",
    "rejected",
    "dropped_full",
    "evicted_requests",
    "served_requests",
];

/// Counters that keep a request alive inside the server (it will reach a
/// terminal bucket later, or be counted in flight at the end).
const CONTINUATION: [&str; 3] = ["enqueued", "coalesced", "admitted"];

/// The outcome enums whose variants D12 interprets at `return` sites.
const OUTCOME_ENUMS: [&str; 2] = ["SubmitOutcome", "SendOutcome"];

/// What a returned outcome variant demands of the path reaching it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Need {
    /// A terminal bucket must be possible (DroppedFull, Refused,
    /// RetryAfter).
    Terminal,
    /// Any bucket at all must be possible (Silent — the request was
    /// either dropped by a fault layer or handed onward).
    Any,
    /// A continuation counter must be possible (Enqueued, Coalesced).
    Continuation,
}

fn need_of(variant: &str) -> Option<Need> {
    match variant {
        "DroppedFull" | "Refused" | "RetryAfter" => Some(Need::Terminal),
        "Silent" => Some(Need::Any),
        "Enqueued" | "Coalesced" => Some(Need::Continuation),
        _ => None,
    }
}

/// Basenames of the request-path files the rule audits.
const SCOPED_FILES: [&str; 5] = [
    "simulation.rs",
    "queue.rs",
    "admission.rs",
    "fault.rs",
    "chaos.rs",
];

fn in_scope(f: &SourceFile) -> bool {
    f.scope.library
        && f.scope
            .crate_name
            .as_deref()
            .is_some_and(|c| c == "core" || c == "server")
        && f.rel
            .rsplit('/')
            .next()
            .is_some_and(|base| SCOPED_FILES.contains(&base))
}

/// `(definite, possible)` counter sets.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Incs {
    definite: BTreeSet<String>,
    possible: BTreeSet<String>,
}

/// Per-function increment summaries (callee name → what a call to it
/// definitely/possibly increments).
type Summaries = BTreeMap<String, Incs>;

struct LedgerLattice<'a> {
    arena: &'a ExprArena,
    summaries: &'a Summaries,
}

impl LedgerLattice<'_> {
    /// Fold every counter increment and summarized call in `stmt`'s
    /// subtree into `state`. Conditional structure *within* one statement
    /// (expression-position `if`, closures) is approximated as
    /// unconditional — the CFG already splits all statement-level
    /// branching into separate blocks.
    fn apply(&self, state: &mut Incs, stmt: ExprId) {
        self.arena
            .walk(stmt, &mut |id| match &self.arena.get(id).kind {
                ExprKind::Assign { op, lhs, .. } if op == "+=" => {
                    if let ExprKind::Field(_, name) = &self.arena.get(*lhs).kind {
                        if TERMINAL.contains(&name.as_str())
                            || CONTINUATION.contains(&name.as_str())
                        {
                            state.definite.insert(name.clone());
                            state.possible.insert(name.clone());
                        }
                    }
                }
                ExprKind::MethodCall { method, .. } => {
                    if let Some(s) = self.summaries.get(method) {
                        state.definite.extend(s.definite.iter().cloned());
                        state.possible.extend(s.possible.iter().cloned());
                    }
                }
                ExprKind::Call { callee, .. } => {
                    let name = match &self.arena.get(*callee).kind {
                        ExprKind::Name(n) => Some(n.as_str()),
                        ExprKind::Path(segs) => segs.last().map(String::as_str),
                        _ => None,
                    };
                    if let Some(s) = name.and_then(|n| self.summaries.get(n)) {
                        state.definite.extend(s.definite.iter().cloned());
                        state.possible.extend(s.possible.iter().cloned());
                    }
                }
                _ => {}
            });
    }
}

impl Lattice for LedgerLattice<'_> {
    type State = Incs;

    fn entry_state(&self) -> Incs {
        Incs::default()
    }

    fn transfer(&mut self, state: &mut Incs, stmt: ExprId) {
        self.apply(state, stmt);
    }

    fn join(&self, into: &mut Incs, other: &Incs) {
        into.definite.retain(|c| other.definite.contains(c));
        into.possible.extend(other.possible.iter().cloned());
    }
}

/// The outcome variant a return-value expression produces, if any:
/// `SubmitOutcome::DroppedFull` (a `Path`) or
/// `SendOutcome::RetryAfter(delay)` (a `Call` on such a path).
fn returned_variant(arena: &ExprArena, value: ExprId) -> Option<String> {
    let mut found = None;
    arena.walk(value, &mut |id| {
        if found.is_some() {
            return;
        }
        if let ExprKind::Path(segs) = &arena.get(id).kind {
            if segs.len() >= 2 && OUTCOME_ENUMS.contains(&segs[segs.len() - 2].as_str()) {
                found = Some(segs[segs.len() - 1].clone());
            }
        }
    });
    found
}

/// Analyze one body: returns the exit-state (for summaries) and, when
/// `out` is given, reports violations at each `return` site.
fn analyze_fn(
    f: &SourceFile,
    body: &Body,
    summaries: &Summaries,
    out: Option<&mut Vec<Diagnostic>>,
) -> Incs {
    let mut lat = LedgerLattice {
        arena: &body.arena,
        summaries,
    };
    let in_states = forward(&body.cfg, &mut lat);
    if let Some(out) = out {
        for (bi, state) in in_states.iter().enumerate() {
            let Some(state) = state else { continue };
            let mut incs = state.clone();
            for &stmt in &body.cfg.blocks[bi].stmts {
                lat.apply(&mut incs, stmt);
                let ExprKind::Return(Some(value)) = &body.arena.get(stmt).kind else {
                    continue;
                };
                let e = body.arena.get(stmt);
                // Double-count check: two distinct terminal buckets
                // *definitely* incremented on one path.
                let terms: Vec<&String> = incs
                    .definite
                    .iter()
                    .filter(|c| TERMINAL.contains(&c.as_str()))
                    .collect();
                if terms.len() >= 2 {
                    out.push(diag(
                        f,
                        e.line,
                        "D12",
                        format!(
                            "path reaching this return increments {} terminal ledger buckets \
                             ({}) — a request must terminate in exactly one",
                            terms.len(),
                            terms
                                .iter()
                                .map(|s| s.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    ));
                }
                let Some(variant) = returned_variant(&body.arena, *value) else {
                    continue;
                };
                let Some(need) = need_of(&variant) else {
                    continue;
                };
                let possible_terminal =
                    incs.possible.iter().any(|c| TERMINAL.contains(&c.as_str()));
                let possible_continuation = incs
                    .possible
                    .iter()
                    .any(|c| CONTINUATION.contains(&c.as_str()));
                let (ok, wanted) = match need {
                    Need::Terminal => (possible_terminal, "a terminal ledger bucket"),
                    Need::Any => (
                        possible_terminal || possible_continuation,
                        "any ledger bucket",
                    ),
                    Need::Continuation => (possible_continuation, "a continuation counter"),
                };
                if !ok {
                    out.push(diag(
                        f,
                        e.line,
                        "D12",
                        format!(
                            "path returns `{variant}` without incrementing {wanted} — the \
                             conservation ledger will not balance (terminal: {}; continuation: \
                             {})",
                            TERMINAL.join(", "),
                            CONTINUATION.join(", ")
                        ),
                    ));
                }
            }
        }
    }
    in_states[body.cfg.exit].clone().unwrap_or_default()
}

/// D12 driver: iterate call summaries to a fixpoint over the scoped
/// files, then report per-return violations.
pub fn d12_ledger_coverage(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let mut summaries = Summaries::new();
    for _pass in 0..3 {
        let mut next = Summaries::new();
        for a in ws.files {
            if !in_scope(&a.file) {
                continue;
            }
            for (gi, item) in a.items.fns.iter().enumerate() {
                if a.file.in_test(item.line) {
                    continue;
                }
                // Only unambiguous names are summarized: a call resolves
                // by bare name, so a name with several definitions would
                // attribute increments speculatively.
                if ws.fn_defs.get(&item.name).is_none_or(|d| d.len() != 1) {
                    continue;
                }
                let Some(body) = &a.bodies[gi] else { continue };
                let exit = analyze_fn(&a.file, body, &summaries, None);
                if !exit.possible.is_empty() {
                    next.insert(item.name.clone(), exit);
                }
            }
        }
        if next == summaries {
            break;
        }
        summaries = next;
    }
    for a in ws.files {
        if !in_scope(&a.file) {
            continue;
        }
        for (gi, item) in a.items.fns.iter().enumerate() {
            if a.file.in_test(item.line) {
                continue;
            }
            let Some(body) = &a.bodies[gi] else { continue };
            analyze_fn(&a.file, body, &summaries, Some(out));
        }
    }
}
