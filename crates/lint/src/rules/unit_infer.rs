//! Rule D11: expression-level unit inference.
//!
//! D9 classified *tokens*: an identifier is broadcast-units because its
//! name ends in `_bu`. That misses every violation hidden behind one
//! level of dataflow — `let w = wait_bu; w + retry_count` mixes a
//! duration with a count, but no single token pair betrays it. D11 runs
//! a forward abstract interpretation over each function's CFG
//! ([`crate::cfg`], [`crate::dataflow`]) with unit classes as the
//! abstract values:
//!
//! * **Bindings** — `let w = wait_bu` gives `w` the class of its
//!   initializer; a *suffixed* binding keeps its declared class and a
//!   differently-classed initializer is itself a diagnostic.
//! * **Propagation** — `+`/`-` preserve the known side's class;
//!   parentheses, unary `-`/`&`/`*`/`?`, and the value-preserving std
//!   methods (`min`, `max`, `clamp`, `abs`, `floor`, `ceil`, `round`)
//!   are transparent; `*`, `/`, `%`, and `as` casts yield *unclassified*
//!   (units legitimately change — a cast is the canonical explicit
//!   conversion, which is what makes the `--fix` rewrite idempotent).
//! * **Calls** — argument classes are checked against the callee's
//!   parameter-name suffixes, and return classes flow out of workspace
//!   functions via per-fn summaries (two fixpoint passes over the call
//!   graph; only unambiguous names are summarized).
//! * **Struct literals** — a suffixed field name checks its initializer.
//!
//! The join is agreement: two paths that disagree about a name leave it
//! unclassified, so every report is justified by *all* paths reaching
//! it — no speculative diagnostics. Where a mixed-unit operand is a
//! single identifier token the diagnostic carries a machine-applicable
//! `(name as _)` cast suggestion with an exact byte span.

use super::units::{UnitClass, SAME_UNIT_OPS, UNIT_CRATES};
use super::{diag, Diagnostic, SourceFile, Suggestion};
use crate::dataflow::{forward, Lattice};
use crate::expr::{Expr, ExprArena, ExprId, ExprKind};
use crate::graph::{Body, Workspace};
use std::collections::BTreeMap;

/// Std methods that return a value of their receiver's unit class.
const TRANSPARENT_METHODS: [&str; 7] = ["min", "max", "clamp", "abs", "floor", "ceil", "round"];

/// Abstract state: name → unit class override. Absent names fall back to
/// their suffix class; a `None` entry means "bound to an unclassified
/// value" (shadowing the suffix). Entries equal to the suffix default are
/// normalized away so `PartialEq` is semantic equality.
type Env = BTreeMap<String, Option<UnitClass>>;

/// Suffix classification, case-insensitive so `MAX_WAIT_BU` constants
/// classify like `wait_bu` locals.
fn suffix_class(name: &str) -> Option<UnitClass> {
    UnitClass::of(&name.to_ascii_lowercase())
}

/// Effective class of `name` under `env`.
fn lookup(env: &Env, name: &str) -> Option<UnitClass> {
    env.get(name).copied().unwrap_or_else(|| suffix_class(name))
}

/// Record `name → class`, normalizing suffix-default entries away.
fn bind(env: &mut Env, name: &str, class: Option<UnitClass>) {
    if class == suffix_class(name) {
        env.remove(name);
    } else {
        env.insert(name.to_string(), class);
    }
}

/// Agreement join: paths that disagree leave the name unclassified.
fn join_env(into: &mut Env, other: &Env) {
    let keys: Vec<String> = into.keys().chain(other.keys()).cloned().collect();
    for k in keys {
        let a = into.get(&k).copied().unwrap_or_else(|| suffix_class(&k));
        let b = other.get(&k).copied().unwrap_or_else(|| suffix_class(&k));
        let merged = if a == b { a } else { None };
        bind(into, &k, merged);
    }
}

/// Everything `eval` needs besides the mutable state.
struct Cx<'a> {
    f: &'a SourceFile,
    arena: &'a ExprArena,
    ws: &'a Workspace<'a>,
    summaries: &'a BTreeMap<String, UnitClass>,
    /// The enclosing fn's suffix-declared return class, if any.
    fn_ret: Option<UnitClass>,
}

/// The pluggable-lattice face of the analysis: quiet transfer for the
/// fixpoint; the reporting pass re-runs `eval` from the fixpoint
/// in-states.
struct UnitLattice<'a, 'b> {
    cx: &'b Cx<'a>,
}

impl Lattice for UnitLattice<'_, '_> {
    type State = Env;

    fn entry_state(&self) -> Env {
        Env::new()
    }

    fn transfer(&mut self, state: &mut Env, stmt: ExprId) {
        let mut scratch = Vec::new();
        eval(self.cx, state, stmt, false, &mut scratch);
    }

    fn join(&self, into: &mut Env, other: &Env) {
        join_env(into, other);
    }
}

/// A short source snippet for diagnostics, reconstructed from the node's
/// code-token span.
fn snippet(f: &SourceFile, e: &Expr) -> String {
    let (a, b) = e.span;
    let shown = b.min(a + 8);
    let mut s = String::new();
    for k in a..shown {
        if !s.is_empty()
            && !matches!(f.text(k), "." | "," | ")" | "(" | "::" | "?")
            && !matches!(
                f.text(k.wrapping_sub(1)),
                "." | "(" | "::" | "&" | "-" | "!"
            )
        {
            s.push(' ');
        }
        s.push_str(f.text(k));
    }
    if b > shown {
        s.push('…');
    }
    s
}

/// The `(name as _)` rewrite for an operand that is a single identifier
/// token on the diagnostic's own line.
fn cast_suggestion(f: &SourceFile, e: &Expr, line: u32) -> Option<Suggestion> {
    let ExprKind::Name(name) = &e.kind else {
        return None;
    };
    if e.span.1 != e.span.0 + 1 {
        return None;
    }
    let tok = f.t(e.span.0)?;
    if tok.line != line {
        return None;
    }
    Some(Suggestion {
        line,
        kind: "replace",
        text: format!("({name} as _)"),
        span: Some((tok.col, tok.col + tok.text.len() as u32)),
    })
}

/// Evaluate `id` under `env`, returning its unit class; when `report` is
/// set, emit diagnostics for every mixed-unit combination seen. Also the
/// transfer function: `Let`/`Assign` update `env`.
fn eval(
    cx: &Cx,
    env: &mut Env,
    id: ExprId,
    report: bool,
    out: &mut Vec<Diagnostic>,
) -> Option<UnitClass> {
    let e = cx.arena.get(id);
    match &e.kind {
        ExprKind::Lit | ExprKind::Continue | ExprKind::Opaque => None,
        ExprKind::Name(n) => lookup(env, n),
        ExprKind::Path(segs) => segs.last().and_then(|s| suffix_class(s)),
        ExprKind::Field(base, name) => {
            eval(cx, env, *base, report, out);
            suffix_class(name)
        }
        ExprKind::Paren(inner) => eval(cx, env, *inner, report, out),
        ExprKind::Unary { op, expr } => {
            let c = eval(cx, env, *expr, report, out);
            if *op == "!" {
                None
            } else {
                c
            }
        }
        ExprKind::Cast { expr } => {
            // An explicit cast is an explicit unit decision.
            eval(cx, env, *expr, report, out);
            None
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let lc = eval(cx, env, *lhs, report, out);
            let rc = eval(cx, env, *rhs, report, out);
            let same_unit = SAME_UNIT_OPS.contains(&op.as_str());
            if report && same_unit {
                if let (Some(a), Some(b)) = (lc, rc) {
                    if a != b {
                        let (le, re) = (cx.arena.get(*lhs), cx.arena.get(*rhs));
                        let mut d = diag(
                            cx.f,
                            e.line,
                            "D11",
                            format!(
                                "mixed-unit `{op}`: `{}` is {} but `{}` is {} — convert \
                                 explicitly before combining",
                                snippet(cx.f, le),
                                a.label(),
                                snippet(cx.f, re),
                                b.label()
                            ),
                        );
                        d.suggestion = cast_suggestion(cx.f, re, e.line)
                            .or_else(|| cast_suggestion(cx.f, le, e.line));
                        out.push(d);
                    }
                }
            }
            match op.as_str() {
                "+" | "-" => match (lc, rc) {
                    (Some(a), Some(b)) if a == b => Some(a),
                    (Some(a), None) => Some(a),
                    (None, Some(b)) => Some(b),
                    _ => None,
                },
                _ => None, // comparisons are bool; * / % change units
            }
        }
        ExprKind::Assign { op, lhs, rhs } => {
            let rc = eval(cx, env, *rhs, report, out);
            let target = cx.arena.get(*lhs);
            match (&target.kind, op.as_str()) {
                (ExprKind::Name(n), "=") => {
                    check_and_bind(cx, env, n, rc, e.line, report, out);
                }
                (ExprKind::Name(n), "+=" | "-=") => {
                    let lc = lookup(env, n);
                    if report {
                        if let (Some(a), Some(b)) = (lc, rc) {
                            if a != b {
                                let re = cx.arena.get(*rhs);
                                let mut d = diag(
                                    cx.f,
                                    e.line,
                                    "D11",
                                    format!(
                                        "mixed-unit `{op}`: `{n}` is {} but `{}` is {} — \
                                         convert explicitly before accumulating",
                                        a.label(),
                                        snippet(cx.f, re),
                                        b.label()
                                    ),
                                );
                                d.suggestion = cast_suggestion(cx.f, re, e.line);
                                out.push(d);
                            }
                        }
                    }
                }
                (ExprKind::Field(_, fname), "=" | "+=" | "-=") if report => {
                    if let (Some(fc), Some(b)) = (suffix_class(fname), rc) {
                        if fc != b {
                            let re = cx.arena.get(*rhs);
                            let mut d = diag(
                                cx.f,
                                e.line,
                                "D11",
                                format!(
                                    "assigns {} value `{}` to field `{fname}` ({}) — \
                                     convert explicitly",
                                    b.label(),
                                    snippet(cx.f, re),
                                    fc.label()
                                ),
                            );
                            d.suggestion = cast_suggestion(cx.f, re, e.line);
                            out.push(d);
                        }
                    }
                }
                _ => {}
            }
            None
        }
        ExprKind::Let {
            names,
            init,
            else_block,
        } => {
            let ic = init.map(|i| eval(cx, env, i, report, out));
            match (&names[..], ic) {
                ([name], Some(ic)) => check_and_bind(cx, env, name, ic, e.line, report, out),
                _ => {
                    // Pattern bindings (or synthetic init-less rebinds):
                    // the bound values are unobserved — reset to suffix.
                    for n in names {
                        env.remove(n);
                    }
                }
            }
            if let Some(eb) = else_block {
                let mut diverged = env.clone();
                eval(cx, &mut diverged, *eb, report, out);
            }
            None
        }
        ExprKind::Block { stmts, tail } => {
            for s in stmts {
                eval(cx, env, *s, report, out);
            }
            tail.and_then(|t| eval(cx, env, t, report, out))
        }
        ExprKind::If {
            cond,
            bound,
            then_blk,
            else_blk,
        } => {
            eval(cx, env, *cond, report, out);
            let mut then_env = env.clone();
            for b in bound {
                then_env.remove(b);
            }
            let tc = eval(cx, &mut then_env, *then_blk, report, out);
            if let Some(eb) = else_blk {
                let mut else_env = env.clone();
                let ec = eval(cx, &mut else_env, *eb, report, out);
                *env = then_env;
                join_env(env, &else_env);
                if tc == ec {
                    tc
                } else {
                    None
                }
            } else {
                join_env(env, &then_env);
                None
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            eval(cx, env, *scrutinee, report, out);
            let orig = env.clone();
            let mut acc: Option<Env> = None;
            let mut classes: Vec<Option<UnitClass>> = Vec::new();
            for arm in arms {
                let mut arm_env = orig.clone();
                for b in &arm.bound {
                    arm_env.remove(b);
                }
                classes.push(eval(cx, &mut arm_env, arm.body, report, out));
                match &mut acc {
                    Some(a) => join_env(a, &arm_env),
                    None => acc = Some(arm_env),
                }
            }
            *env = acc.unwrap_or(orig);
            match &classes[..] {
                [first, rest @ ..] if rest.iter().all(|c| c == first) => *first,
                _ => None,
            }
        }
        ExprKind::While { cond, bound, body } => {
            eval(cx, env, *cond, report, out);
            let mut body_env = env.clone();
            for b in bound {
                body_env.remove(b);
            }
            eval(cx, &mut body_env, *body, report, out);
            join_env(env, &body_env);
            None
        }
        ExprKind::Loop { body } => {
            let mut body_env = env.clone();
            eval(cx, &mut body_env, *body, report, out);
            join_env(env, &body_env);
            None
        }
        ExprKind::For { bound, iter, body } => {
            eval(cx, env, *iter, report, out);
            let mut body_env = env.clone();
            for b in bound {
                body_env.remove(b);
            }
            eval(cx, &mut body_env, *body, report, out);
            join_env(env, &body_env);
            None
        }
        ExprKind::Return(v) => {
            // Returns the *value's* class so `analyze_fn` can collect
            // return classes from the same evaluation (never re-run it).
            let rc = v.and_then(|v| eval(cx, env, v, report, out));
            if report {
                if let (Some(want), Some(got)) = (cx.fn_ret, rc) {
                    if want != got {
                        let ve = cx.arena.get(v.unwrap_or(id));
                        out.push(diag(
                            cx.f,
                            e.line,
                            "D11",
                            format!(
                                "returns {} value `{}` from a fn whose name declares {} — \
                                 convert explicitly or rename the fn",
                                got.label(),
                                snippet(cx.f, ve),
                                want.label()
                            ),
                        ));
                    }
                }
            }
            rc
        }
        ExprKind::Break(v) => {
            if let Some(v) = v {
                eval(cx, env, *v, report, out);
            }
            None
        }
        ExprKind::Closure { body } => {
            let mut inner = env.clone();
            eval(cx, &mut inner, *body, report, out);
            None
        }
        ExprKind::MethodCall { recv, method, args } => {
            let rc = eval(cx, env, *recv, report, out);
            let arg_classes: Vec<Option<UnitClass>> = args
                .iter()
                .map(|a| eval(cx, env, *a, report, out))
                .collect();
            if TRANSPARENT_METHODS.contains(&method.as_str()) {
                if report && matches!(method.as_str(), "min" | "max" | "clamp") {
                    for (i, ac) in arg_classes.iter().enumerate() {
                        if let (Some(a), Some(b)) = (rc, *ac) {
                            if a != b {
                                let ae = cx.arena.get(args[i]);
                                let mut d = diag(
                                    cx.f,
                                    e.line,
                                    "D11",
                                    format!(
                                        "mixed-unit `{method}`: receiver is {} but argument \
                                         `{}` is {} — convert explicitly",
                                        a.label(),
                                        snippet(cx.f, ae),
                                        b.label()
                                    ),
                                );
                                d.suggestion = cast_suggestion(cx.f, ae, e.line);
                                out.push(d);
                            }
                        }
                    }
                }
                rc.or_else(|| arg_classes.iter().copied().flatten().next())
            } else {
                None
            }
        }
        ExprKind::Call { callee, args } => {
            let arg_classes: Vec<Option<UnitClass>> = args
                .iter()
                .map(|a| eval(cx, env, *a, report, out))
                .collect();
            let name = match &cx.arena.get(*callee).kind {
                ExprKind::Name(n) => Some(n.clone()),
                ExprKind::Path(segs) => segs.last().cloned(),
                _ => {
                    eval(cx, env, *callee, report, out);
                    None
                }
            };
            let name = name?;
            if report {
                check_call_args(cx, &name, args, &arg_classes, out);
            }
            cx.summaries
                .get(&name)
                .copied()
                .map(Some)
                .unwrap_or_else(|| suffix_class(&name))
        }
        ExprKind::StructLit { path, fields } => {
            for (fname, val) in fields {
                let Some(v) = val else { continue };
                let vc = eval(cx, env, *v, report, out);
                if report {
                    if let (Some(fc), Some(c)) = (suffix_class(fname), vc) {
                        if fc != c {
                            let ve = cx.arena.get(*v);
                            let mut d = diag(
                                cx.f,
                                e.line,
                                "D11",
                                format!(
                                    "field `{fname}` ({}) of `{}` initialized with {} value \
                                     `{}` — convert explicitly",
                                    fc.label(),
                                    path.join("::"),
                                    c.label(),
                                    snippet(cx.f, ve)
                                ),
                            );
                            d.suggestion = cast_suggestion(cx.f, ve, e.line);
                            out.push(d);
                        }
                    }
                }
            }
            None
        }
        ExprKind::Tuple(items) => {
            for i in items {
                eval(cx, env, *i, report, out);
            }
            None
        }
        ExprKind::Index { base, index } => {
            let bc = eval(cx, env, *base, report, out);
            eval(cx, env, *index, report, out);
            bc // an element of `waits_bu` is itself broadcast-units
        }
        ExprKind::Range { lo, hi } => {
            for side in [lo, hi].into_iter().flatten() {
                eval(cx, env, *side, report, out);
            }
            None
        }
    }
}

/// Bind `name` to `class`: a suffixed name keeps its declared class (a
/// known different initializer class is a diagnostic); an unsuffixed name
/// takes the initializer's class.
fn check_and_bind(
    cx: &Cx,
    env: &mut Env,
    name: &str,
    class: Option<UnitClass>,
    line: u32,
    report: bool,
    out: &mut Vec<Diagnostic>,
) {
    match suffix_class(name) {
        Some(declared) => {
            if report {
                if let Some(c) = class {
                    if c != declared {
                        out.push(diag(
                            cx.f,
                            line,
                            "D11",
                            format!(
                                "binding `{name}` declares {} by suffix but is assigned a {} \
                                 value — convert explicitly or rename",
                                declared.label(),
                                c.label()
                            ),
                        ));
                    }
                }
            }
            env.remove(name); // the suffix stays authoritative
        }
        None => bind(env, name, class),
    }
}

/// Check call arguments against the unique workspace definition's
/// parameter-name suffixes.
fn check_call_args(
    cx: &Cx,
    name: &str,
    args: &[ExprId],
    arg_classes: &[Option<UnitClass>],
    out: &mut Vec<Diagnostic>,
) {
    let Some(defs) = cx.ws.fn_defs.get(name) else {
        return;
    };
    let [(fi, gi)] = defs[..] else {
        return; // ambiguous names are never resolved
    };
    let item = &cx.ws.files[fi].items.fns[gi];
    let params: Vec<_> = item
        .params
        .iter()
        .filter(|p| p.name.as_deref() != Some("self"))
        .collect();
    for (i, (arg, ac)) in args.iter().zip(arg_classes).enumerate() {
        let Some(param) = params.get(i) else { break };
        let (Some(pn), Some(a)) = (param.name.as_deref(), *ac) else {
            continue;
        };
        let Some(pc) = suffix_class(pn) else { continue };
        if pc != a {
            let ae = cx.arena.get(*arg);
            let line = ae.line;
            let mut d = diag(
                cx.f,
                line,
                "D11",
                format!(
                    "passes {} value `{}` to parameter `{pn}` ({}) of `{name}` — convert \
                     explicitly",
                    a.label(),
                    snippet(cx.f, ae),
                    pc.label()
                ),
            );
            d.suggestion = cast_suggestion(cx.f, ae, line);
            out.push(d);
        }
    }
}

/// Run the analysis over one body; returns the classes of every `return`
/// value observed (reporting along the way when `report` is set).
fn analyze_fn(
    cx: &Cx,
    body: &Body,
    report: bool,
    out: &mut Vec<Diagnostic>,
) -> Vec<Option<UnitClass>> {
    let mut lat = UnitLattice { cx };
    let in_states = forward(&body.cfg, &mut lat);
    let mut rets = Vec::new();
    for (bi, state) in in_states.iter().enumerate() {
        let Some(state) = state else { continue };
        let mut env = state.clone();
        for &stmt in &body.cfg.blocks[bi].stmts {
            let is_ret = matches!(&cx.arena.get(stmt).kind, ExprKind::Return(_));
            let c = eval(cx, &mut env, stmt, report, out);
            if is_ret {
                rets.push(c);
            }
        }
    }
    rets
}

/// Whether D11 analyzes this file: library code of the unit-disciplined
/// crates.
fn in_scope(f: &SourceFile) -> bool {
    f.scope.library
        && f.scope
            .crate_name
            .as_deref()
            .is_some_and(|c| UNIT_CRATES.contains(&c))
}

/// D11 driver: two summary fixpoint passes over the workspace call graph,
/// then one reporting pass per function.
pub fn d11_unit_inference(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let mut summaries: BTreeMap<String, UnitClass> = BTreeMap::new();
    for _pass in 0..2 {
        let mut next = summaries.clone();
        let mut scratch = Vec::new();
        for a in ws.files {
            if !in_scope(&a.file) {
                continue;
            }
            for (gi, item) in a.items.fns.iter().enumerate() {
                if a.file.in_test(item.line) {
                    continue;
                }
                if let Some(sc) = suffix_class(&item.name) {
                    next.insert(item.name.clone(), sc);
                    continue;
                }
                if ws.fn_defs.get(&item.name).is_none_or(|d| d.len() != 1) {
                    continue;
                }
                let Some(body) = &a.bodies[gi] else { continue };
                let cx = Cx {
                    f: &a.file,
                    arena: &body.arena,
                    ws,
                    summaries: &summaries,
                    fn_ret: None,
                };
                let rets = analyze_fn(&cx, body, false, &mut scratch);
                let joined = match &rets[..] {
                    [Some(first), rest @ ..] if rest.iter().all(|c| *c == Some(*first)) => {
                        Some(*first)
                    }
                    _ => None,
                };
                match joined {
                    Some(c) => {
                        next.insert(item.name.clone(), c);
                    }
                    None => {
                        next.remove(&item.name);
                    }
                }
            }
        }
        summaries = next;
    }
    for a in ws.files {
        if !in_scope(&a.file) {
            continue;
        }
        for (gi, item) in a.items.fns.iter().enumerate() {
            if a.file.in_test(item.line) {
                continue;
            }
            let Some(body) = &a.bodies[gi] else { continue };
            let cx = Cx {
                f: &a.file,
                arena: &body.arena,
                ws,
                summaries: &summaries,
                fn_ret: suffix_class(&item.name),
            };
            analyze_fn(&cx, body, true, out);
        }
    }
}
