//! The `bpp-lint` rule engine: scopes, suppressions, and rules D0–D10.
//!
//! Rules come in two layers. The **token rules** (D1–D6, [`tokens`]; D9,
//! [`units`]) run over the token stream of one file at a time (see
//! [`crate::lexer`]) and need no cross-file state. The **semantic rules**
//! (D7 [`stream_flow`], D8 [`config_surface`], D10 [`dead_artifacts`])
//! run over a [`crate::graph::Workspace`] built from the item structure
//! ([`crate::parse`]) of every file, so they can follow an RNG handle
//! across a function boundary or notice a struct field missing from a
//! serialization surface. Either way the report order is a pure function
//! of the sorted file list — no hashing, no filesystem order.
//!
//! Each rule documents its scope and its heuristic precisely — a lexical
//! checker cannot do type inference, so where a rule approximates (D2's
//! map-name tracking, D7's name-based call resolution) the approximation
//! is stated and conservative.
//!
//! ## Suppression grammar
//!
//! Diagnostics are suppressed by plain `//` line comments (doc comments
//! are never scanned, so documentation may quote directives freely):
//!
//! ```text
//! // bpp-lint: allow(D3): holds because <one-line justification>
//! // bpp-lint: allow(D1, D2)
//! // bpp-lint: allow-file(D1): whole-file justification
//! ```
//!
//! `allow` covers the comment's own line and the line directly below it
//! (so both trailing and preceding placements work); `allow-file` covers
//! the whole file. A root-level `lint_allow.txt` may hold file-wide
//! entries (`D3 crates/foo/src/bar.rs # why`) for trees where editing the
//! source is not wanted; an entry naming a file that is not scanned is
//! itself a `D0` diagnostic so the list cannot rot. Rule names must be
//! drawn from the registry below — a typo'd or unknown name is reported
//! (rule `D0`), so a suppression can never rot silently. `D0` cannot be
//! suppressed.

pub mod config_surface;
pub mod dead_artifacts;
pub mod ledger;
pub mod reset;
pub mod stream_flow;
pub mod tokens;
pub mod unit_infer;
pub mod units;

use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// A machine-applicable fix attached to a diagnostic where the rewrite is
/// unambiguous. Never applied automatically — emitted in the `--json`
/// report for tooling to offer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Suggestion {
    /// 1-based line the suggestion applies to.
    pub line: u32,
    /// `"replace"` (swap the flagged expression on that line for `text`)
    /// or `"insert"` (add `text` as a new line above `line`).
    pub kind: &'static str,
    /// The replacement / inserted source text.
    pub text: String,
    /// For `"replace"`: the half-open 1-based **byte column** range on
    /// `line` that `text` replaces. `None` leaves the rewrite boundary to
    /// the reader; the `--fix` applier only acts on spanned replacements.
    pub span: Option<(u32, u32)>,
}

/// One finding: file, 1-based line, rule id, human-readable message, and
/// optionally a machine-applicable [`Suggestion`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path relative to the linted root, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule id (`"D1"` … `"D10"`, or `"D0"` for lint-integrity findings).
    pub rule: &'static str,
    /// What went wrong and how to fix it.
    pub message: String,
    /// An unambiguous rewrite, when one exists (D4, D6).
    pub suggestion: Option<Suggestion>,
}

/// The rule registry: id and one-line summary, in report order.
pub const RULES: [(&str, &str); 14] = [
    ("D0", "lint integrity: lexer failures and malformed/unknown/stale suppressions"),
    ("D1", "stream-discipline: stream_rng/.named must use streams::* constants; registry unique+documented"),
    ("D2", "nondeterminism ban: Instant/SystemTime/thread spawn/HashMap-HashSet iteration in sim-affecting crates"),
    ("D3", "panic hygiene: no unwrap()/expect()/panic!() in non-test library code"),
    ("D4", "float-eq: no ==/!= against float literals; route through bpp_sim::approx"),
    ("D5", "JSON-key drift: to_json/from_json impls in a file must use matching key sets"),
    ("D6", "every crate lib.rs must carry #![forbid(unsafe_code)]"),
    ("D7", "stream-flow: one RNG stream, one component — no shared handles, no duplicate construction sites"),
    ("D8", "config-surface: every config field must reach ToJson, FromJson, validate(), and DESIGN.md"),
    ("D9", "alias of D11 — the token-level unit check D11's dataflow analysis supersedes"),
    ("D10", "dead artifacts: unreachable experiment grids and unreferenced results/ goldens"),
    ("D11", "unit inference: *_bu/*_count/*_ratio classes propagated through bindings, params, and returns"),
    ("D12", "ledger coverage: every request-terminating path must increment exactly one ConservationLedger bucket"),
    ("D13", "reset coverage: every mutable volatile field must be written on the cold-restart path"),
];

/// Suppression aliases: `allow(<old>)` also silences diagnostics of the
/// rule that superseded it, so existing annotations keep working across a
/// rule upgrade.
pub const RULE_ALIASES: [(&str, &str); 1] = [("D9", "D11")];

/// Crates whose code feeds simulation results; rule D2's blast radius.
pub(crate) const SIM_AFFECTING: [&str; 8] = [
    "sim",
    "broadcast",
    "cache",
    "client",
    "server",
    "workload",
    "core",
    "obs",
];

/// Where a file sits in the workspace, derived from its relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scope {
    /// `crates/<name>/…` → `Some(name)`.
    pub crate_name: Option<String>,
    /// Under `crates/*/src/` but not `src/bin/` — "library code".
    pub library: bool,
    /// Exactly `crates/<name>/src/lib.rs`.
    pub lib_rs: bool,
}

impl Scope {
    /// Classify a root-relative path (forward slashes).
    pub fn of(rel: &str) -> Scope {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_name = (parts.len() >= 2 && parts[0] == "crates").then(|| parts[1].to_string());
        let library =
            parts.len() >= 4 && parts[0] == "crates" && parts[2] == "src" && parts[3] != "bin";
        let lib_rs = library && parts.len() == 4 && parts[3] == "lib.rs";
        Scope {
            crate_name,
            library,
            lib_rs,
        }
    }

    pub(crate) fn sim_affecting(&self) -> bool {
        self.crate_name
            .as_deref()
            .is_some_and(|c| SIM_AFFECTING.contains(&c))
    }
}

/// A lexed file ready for rule evaluation.
pub struct SourceFile {
    /// Root-relative path, forward slashes.
    pub rel: String,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens ("code tokens").
    pub code: Vec<usize>,
    /// Path-derived scope.
    pub scope: Scope,
    /// Inclusive line ranges covered by `#[test]`/`#[cfg(test)]` items.
    pub test_lines: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Build a file from its relative path and token stream.
    pub fn new(rel: String, tokens: Vec<Token>) -> SourceFile {
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let scope = Scope::of(&rel);
        let mut f = SourceFile {
            rel,
            tokens,
            code,
            scope,
            test_lines: Vec::new(),
        };
        f.test_lines = f.find_test_regions();
        f
    }

    /// Code token at code-index `k`.
    pub fn t(&self, k: usize) -> Option<&Token> {
        self.code.get(k).map(|&i| &self.tokens[i])
    }

    /// Text of code token `k`, or `""` past the end.
    pub fn text(&self, k: usize) -> &str {
        self.t(k).map_or("", |t| t.text.as_str())
    }

    /// Kind of code token `k`, or `None` past the end.
    pub fn kind(&self, k: usize) -> Option<TokenKind> {
        self.t(k).map(|t| t.kind)
    }

    /// Line of code token `k`, or `0` past the end.
    pub fn line(&self, k: usize) -> u32 {
        self.t(k).map_or(0, |t| t.line)
    }

    /// Whether `line` falls inside a `#[test]`/`#[cfg(test)]` region.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_lines
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Line ranges of items annotated with an attribute that mentions
    /// `test` (`#[test]`, `#[cfg(test)]`). The region runs from the
    /// attribute to the closing brace of the annotated item (or its `;`).
    fn find_test_regions(&self) -> Vec<(u32, u32)> {
        let mut regions = Vec::new();
        let n = self.code.len();
        let mut k = 0;
        while k < n {
            // Outer attribute `#[…]` (inner `#![…]` never marks a test item).
            if self.text(k) == "#" && self.text(k + 1) == "[" {
                let start_line = self.line(k);
                let mut j = k + 2;
                let mut depth = 1i32;
                let mut mentions_test = false;
                while j < n && depth > 0 {
                    match self.text(j) {
                        "[" => depth += 1,
                        "]" => depth -= 1,
                        "test" if self.kind(j) == Some(TokenKind::Ident) => mentions_test = true,
                        _ => {}
                    }
                    j += 1;
                }
                if mentions_test {
                    // Skip any further attributes on the same item.
                    while self.text(j) == "#" && self.text(j + 1) == "[" {
                        let mut d = 1i32;
                        j += 2;
                        while j < n && d > 0 {
                            match self.text(j) {
                                "[" => d += 1,
                                "]" => d -= 1,
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                    // The item body: first `{` balanced to its close, or a
                    // leading-`;` item (e.g. an annotated `use`).
                    let mut end_line = start_line;
                    while j < n {
                        match self.text(j) {
                            ";" => {
                                end_line = self.line(j);
                                break;
                            }
                            "{" => {
                                let mut d = 1i32;
                                j += 1;
                                while j < n && d > 0 {
                                    match self.text(j) {
                                        "{" => d += 1,
                                        "}" => d -= 1,
                                        _ => {}
                                    }
                                    if d == 0 {
                                        end_line = self.line(j);
                                    }
                                    j += 1;
                                }
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                    regions.push((start_line, end_line.max(start_line)));
                    k = j;
                    continue;
                }
                k = j;
                continue;
            }
            k += 1;
        }
        regions
    }
}

/// Parsed suppression directives for one file.
pub struct Suppressions {
    file_rules: BTreeSet<String>,
    line_rules: BTreeMap<u32, BTreeSet<String>>,
    /// D0 findings produced while parsing (unknown rule names, bad syntax).
    pub problems: Vec<(u32, String)>,
}

impl Suppressions {
    /// Scan a file's comment tokens for `bpp-lint:` directives.
    pub fn parse(file: &SourceFile) -> Suppressions {
        let mut s = Suppressions {
            file_rules: BTreeSet::new(),
            line_rules: BTreeMap::new(),
            problems: Vec::new(),
        };
        for tok in &file.tokens {
            // Only plain `//` comments carry directives: doc comments
            // (`///`, `//!`) may quote the grammar without engaging it.
            if tok.kind != TokenKind::LineComment
                || tok.text.starts_with("///")
                || tok.text.starts_with("//!")
            {
                continue;
            }
            let Some(at) = tok.text.find("bpp-lint:") else {
                continue;
            };
            let rest = tok.text[at + "bpp-lint:".len()..].trim_start();
            let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
                (true, r)
            } else if let Some(r) = rest.strip_prefix("allow") {
                (false, r)
            } else {
                s.problems.push((
                    tok.line,
                    "malformed bpp-lint directive: expected `allow(...)` or `allow-file(...)`"
                        .to_string(),
                ));
                continue;
            };
            let rest = rest.trim_start();
            let Some(inner) = rest
                .strip_prefix('(')
                .and_then(|r| r.split_once(')'))
                .map(|(inner, _)| inner)
            else {
                s.problems.push((
                    tok.line,
                    "malformed bpp-lint directive: missing rule list `(D1, ...)`".to_string(),
                ));
                continue;
            };
            for name in inner.split(',').map(str::trim).filter(|n| !n.is_empty()) {
                if !known_rule(name) {
                    s.problems.push((
                        tok.line,
                        format!("unknown rule `{name}` in bpp-lint suppression"),
                    ));
                    continue;
                }
                if file_wide {
                    s.file_rules.insert(name.to_string());
                } else {
                    s.line_rules
                        .entry(tok.line)
                        .or_default()
                        .insert(name.to_string());
                }
            }
        }
        s
    }

    /// Whether a diagnostic of `rule` at `line` is suppressed. A
    /// suppression naming an aliased rule ([`RULE_ALIASES`]) covers its
    /// successor too.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        let hits = |name: &str| {
            self.file_rules.contains(name)
                // A directive covers its own line and the line directly
                // below.
                || [line, line.saturating_sub(1)]
                    .iter()
                    .any(|l| self.line_rules.get(l).is_some_and(|r| r.contains(name)))
        };
        hits(rule)
            || RULE_ALIASES
                .iter()
                .any(|(old, new)| *new == rule && hits(old))
    }

    /// Add a file-wide suppression (used by the root `lint_allow.txt`).
    pub fn add_file_rule(&mut self, rule: &str) {
        self.file_rules.insert(rule.to_string());
    }
}

/// Whether `name` is a suppressible registry rule (`D0` is not).
pub fn known_rule(name: &str) -> bool {
    RULES.iter().any(|(id, _)| *id == name && *id != "D0")
}

/// The single-file token rules, as a (rule id, pass) table so the driver
/// can attribute per-rule timing. A rule may contribute several passes
/// (D1); the id labels the timing bucket. D9 is absent by design: its
/// token-level check is superseded by D11's dataflow analysis
/// ([`units::d9_unit_discipline`] stays available as a differential
/// oracle).
#[allow(clippy::type_complexity)]
pub const TOKEN_RULES: [(&str, fn(&SourceFile, &mut Vec<Diagnostic>)); 7] = [
    ("D1", tokens::d1_stream_discipline),
    ("D1", tokens::d1_registry),
    ("D2", tokens::d2_nondeterminism),
    ("D3", tokens::d3_panic_hygiene),
    ("D4", tokens::d4_float_eq),
    ("D5", tokens::d5_json_key_drift),
    ("D6", tokens::d6_forbid_unsafe),
];

/// Run every single-file rule over one file; returns raw
/// (unsuppressed-unfiltered) diagnostics. The caller applies
/// [`Suppressions`] and sorting. Cross-file rules (D7, D8, D10–D13) run
/// separately over the whole workspace — see [`crate::graph`].
pub fn check_file(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (_, pass) in TOKEN_RULES {
        pass(f, &mut out);
    }
    out
}

pub(crate) fn diag(f: &SourceFile, line: u32, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: f.rel.clone(),
        line,
        rule,
        message,
        suggestion: None,
    }
}

/// Split the argument list of a call whose `(` sits at code-index `open`.
/// Returns `(code-index ranges of each top-level argument, index past `)`)`.
pub(crate) fn call_args(f: &SourceFile, open: usize) -> (Vec<(usize, usize)>, usize) {
    let mut args = Vec::new();
    let mut depth = 1i32;
    let mut k = open + 1;
    let mut arg_start = k;
    while let Some(tok) = f.t(k) {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    if k > arg_start {
                        args.push((arg_start, k));
                    }
                    return (args, k + 1);
                }
            }
            "," if depth == 1 => {
                args.push((arg_start, k));
                arg_start = k + 1;
            }
            _ => {}
        }
        k += 1;
    }
    (args, k)
}

/// Whether the code tokens in `[a, b)` form a path through a `streams`
/// module (`streams::X`, `simulation::streams::X`, …).
pub(crate) fn is_streams_path(f: &SourceFile, a: usize, b: usize) -> bool {
    (a..b.saturating_sub(2)).any(|k| {
        f.text(k) == "streams" && f.text(k + 1) == "::" && f.kind(k + 2) == Some(TokenKind::Ident)
    })
}

/// The `streams::X` constant name inside `[a, b)`, if any.
pub(crate) fn streams_const(f: &SourceFile, a: usize, b: usize) -> Option<String> {
    (a..b.saturating_sub(2)).find_map(|k| {
        (f.text(k) == "streams" && f.text(k + 1) == "::" && f.kind(k + 2) == Some(TokenKind::Ident))
            .then(|| f.text(k + 2).to_string())
    })
}

pub(crate) fn arg_text(f: &SourceFile, a: usize, b: usize) -> String {
    let mut s = String::new();
    for k in a..b {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(f.text(k));
    }
    s
}
