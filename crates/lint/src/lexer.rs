//! A small, exact Rust lexer for static analysis.
//!
//! `bpp-lint` rules operate on token streams, not source text, so string
//! literals, comments and lifetimes can never masquerade as code (a
//! `"stream_rng"` inside a message must not trip the stream-discipline
//! rule). The lexer therefore has to get the genuinely tricky corners of
//! the Rust lexical grammar right:
//!
//! * nested block comments (`/* /* */ */` is one comment);
//! * raw strings with arbitrary hash fences (`r##"…"##`), raw byte strings
//!   (`br#"…"#`), and raw identifiers (`r#fn`);
//! * the char-literal / lifetime ambiguity (`'a'` is a char, `<'a>` holds a
//!   lifetime, `b'\''` is an escaped byte char);
//! * float literals versus ranges (`1.0e-3` is one float; `1..2` is int,
//!   range operator, int; `1.max(2)` is int, dot, ident);
//! * multi-character operators (`::`, `==`, `..=`, `<<=`, …) emitted as
//!   single tokens so rules can match on them directly.
//!
//! The lexer keeps comments in the stream — the rule engine reads
//! suppression directives out of them — and records the 1-based start line
//! of every token for diagnostics. Only ASCII identifiers are recognised
//! (the workspace contains no others); any byte the grammar cannot place
//! yields a [`LexError`] rather than a silently skipped character.

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword, including raw identifiers (`r#fn`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A character literal, escapes included (`'a'`, `'\''`, `'\u{1F600}'`).
    Char,
    /// A byte literal (`b'x'`, `b'\''`).
    ByteChar,
    /// An ordinary string literal with escapes (`"…"`).
    Str,
    /// A raw string literal (`r"…"`, `r##"…"##`).
    RawStr,
    /// A byte-string literal (`b"…"`).
    ByteStr,
    /// A raw byte-string literal (`br#"…"#`).
    RawByteStr,
    /// An integer literal, prefix/suffix/underscores included (`0xFF_u8`).
    Int,
    /// A float literal (`1.0`, `1.`, `1e-3`, `2.5f32`).
    Float,
    /// A `//` comment, doc comments included, without the newline.
    LineComment,
    /// A `/* … */` comment, nesting included.
    BlockComment,
    /// A single- or multi-character operator or delimiter (`::`, `==`, `{`).
    Punct,
}

/// One lexed token: its class, exact source text, and 1-based start
/// line/column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// The token's exact source text.
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
    /// 1-based byte column at which the token starts on its line. Byte
    /// columns (not display columns) so `--fix` can splice spans exactly.
    pub col: u32,
}

/// A lexical error: something the grammar cannot place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line of the offending byte.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

/// Multi-character operators, longest first so greedy matching is correct.
const OPERATORS: [&str; 24] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "..", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Cursor over the source bytes with line/column tracking.
struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    /// Byte offset of the start of the current line (column base).
    line_start: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.line_start = self.pos;
        }
        Some(b)
    }

    /// 1-based byte column of the current position on its line.
    fn col(&self) -> u32 {
        (self.pos - self.line_start) as u32 + 1
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }

    fn err(&self, msg: impl Into<String>) -> LexError {
        LexError {
            line: self.line,
            msg: msg.into(),
        }
    }
}

/// Lex `src` into a full token stream (comments included).
///
/// # Errors
/// Returns the first [`LexError`] encountered: an unterminated literal or
/// comment, or a byte that no token can start with.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    // A shebang (`#!/usr/bin/env …` on the very first line) is stripped by
    // rustc before lexing; treat it as a line comment so cargo-script-style
    // files lex. `#![attr]` is NOT a shebang — the `[` keeps it an inner
    // attribute, exactly rustc's disambiguation.
    if cur.starts_with("#!") && cur.peek(2) != Some(b'[') {
        let line = cur.line;
        let col = cur.col();
        let start = cur.pos;
        line_comment(&mut cur)?;
        let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
        out.push(Token {
            kind: TokenKind::LineComment,
            text,
            line,
            col,
        });
    }
    while let Some(b) = cur.peek(0) {
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        let line = cur.line;
        let col = cur.col();
        let start = cur.pos;
        let kind = lex_one(&mut cur, b)?;
        let text = String::from_utf8_lossy(&cur.src[start..cur.pos]).into_owned();
        out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }
    Ok(out)
}

/// Lex exactly one token starting at `cur` (first byte already peeked).
fn lex_one(cur: &mut Cursor<'_>, b: u8) -> Result<TokenKind, LexError> {
    // Comments before operators: `//` and `/*` outrank `/` and `/=`.
    if cur.starts_with("//") {
        return line_comment(cur);
    }
    if cur.starts_with("/*") {
        return block_comment(cur);
    }
    // Literal prefixes before identifiers: r"…", r#"…"#, b"…", b'…', br"…",
    // and raw identifiers r#ident.
    if b == b'r' || b == b'b' {
        if let Some(kind) = literal_prefix(cur)? {
            return Ok(kind);
        }
    }
    if is_ident_start(b) {
        return ident(cur);
    }
    if b.is_ascii_digit() {
        return number(cur);
    }
    match b {
        b'\'' => char_or_lifetime(cur),
        b'"' => string(cur, TokenKind::Str),
        _ => operator(cur),
    }
}

fn line_comment(cur: &mut Cursor<'_>) -> Result<TokenKind, LexError> {
    while let Some(b) = cur.peek(0) {
        if b == b'\n' {
            break;
        }
        cur.bump();
    }
    Ok(TokenKind::LineComment)
}

fn block_comment(cur: &mut Cursor<'_>) -> Result<TokenKind, LexError> {
    let open = cur.line;
    cur.bump();
    cur.bump();
    let mut depth = 1u32;
    while depth > 0 {
        if cur.starts_with("/*") {
            depth += 1;
            cur.bump();
            cur.bump();
        } else if cur.starts_with("*/") {
            depth -= 1;
            cur.bump();
            cur.bump();
        } else if cur.bump().is_none() {
            return Err(LexError {
                line: open,
                msg: "unterminated block comment".into(),
            });
        }
    }
    Ok(TokenKind::BlockComment)
}

/// Handle tokens introduced by `r` or `b`: raw strings, byte strings, byte
/// chars, raw identifiers. Returns `None` when the `r`/`b` is just the
/// start of an ordinary identifier.
fn literal_prefix(cur: &mut Cursor<'_>) -> Result<Option<TokenKind>, LexError> {
    // Raw identifier r#ident (but not raw string r#"…").
    if cur.starts_with("r#") {
        if cur.peek(2).is_some_and(is_ident_start) {
            cur.bump();
            cur.bump();
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            return Ok(Some(TokenKind::Ident));
        }
        return raw_string(cur, 1, TokenKind::RawStr).map(Some);
    }
    if cur.starts_with("r\"") {
        return raw_string(cur, 1, TokenKind::RawStr).map(Some);
    }
    if cur.starts_with("br") && matches!(cur.peek(2), Some(b'"') | Some(b'#')) {
        return raw_string(cur, 2, TokenKind::RawByteStr).map(Some);
    }
    if cur.starts_with("b\"") {
        cur.bump();
        return string(cur, TokenKind::ByteStr).map(Some);
    }
    if cur.starts_with("b'") {
        cur.bump();
        return char_literal(cur, TokenKind::ByteChar).map(Some);
    }
    Ok(None)
}

/// Lex a raw (byte) string: `prefix_len` bytes of `r`/`br`, then `#…#"…"#…#`.
fn raw_string(
    cur: &mut Cursor<'_>,
    prefix_len: usize,
    kind: TokenKind,
) -> Result<TokenKind, LexError> {
    let open = cur.line;
    for _ in 0..prefix_len {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    if cur.bump() != Some(b'"') {
        return Err(cur.err("expected opening quote of raw string"));
    }
    loop {
        match cur.bump() {
            Some(b'"') => {
                let mut matched = 0usize;
                while matched < hashes && cur.peek(0) == Some(b'#') {
                    matched += 1;
                    cur.bump();
                }
                if matched == hashes {
                    return Ok(kind);
                }
            }
            Some(_) => {}
            None => {
                return Err(LexError {
                    line: open,
                    msg: "unterminated raw string".into(),
                })
            }
        }
    }
}

fn ident(cur: &mut Cursor<'_>) -> Result<TokenKind, LexError> {
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    Ok(TokenKind::Ident)
}

/// Lex a number. Decides int vs float, and refuses to eat the dot of a
/// range (`1..2`) or of a method call on a literal (`1.max(2)`).
fn number(cur: &mut Cursor<'_>) -> Result<TokenKind, LexError> {
    let radix_prefix = cur.starts_with("0x") || cur.starts_with("0o") || cur.starts_with("0b");
    if radix_prefix {
        cur.bump();
        cur.bump();
        while cur
            .peek(0)
            .is_some_and(|b| b.is_ascii_hexdigit() || b == b'_')
        {
            cur.bump();
        }
        // Type suffix (0xFFu8). Hex digits already consumed above.
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        return Ok(TokenKind::Int);
    }
    let mut is_float = false;
    digits(cur);
    // A fractional part begins only if the dot is NOT the start of a range
    // (`..`) and NOT a method/field access (`.max`, `._0` is fine: `_`
    // starts an identifier, so `1._0` lexes as a call — matching rustc,
    // which rejects it as a literal).
    if cur.peek(0) == Some(b'.')
        && cur.peek(1) != Some(b'.')
        && !cur.peek(1).is_some_and(is_ident_start)
    {
        is_float = true;
        cur.bump();
        digits(cur);
    }
    // An exponent begins only if `e`/`E` is followed by digits (with an
    // optional sign); otherwise the letter is a suffix (`2u64`).
    if matches!(cur.peek(0), Some(b'e') | Some(b'E')) {
        let after_sign = match cur.peek(1) {
            Some(b'+') | Some(b'-') => 2,
            _ => 1,
        };
        if cur.peek(after_sign).is_some_and(|b| b.is_ascii_digit()) {
            is_float = true;
            cur.bump();
            if matches!(cur.peek(0), Some(b'+') | Some(b'-')) {
                cur.bump();
            }
            digits(cur);
        }
    }
    // Type suffix: f32/f64 force float; u*/i* stay int.
    if cur.peek(0).is_some_and(is_ident_start) {
        let suffix_start = cur.pos;
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        let suffix = &cur.src[suffix_start..cur.pos];
        if suffix.starts_with(b"f32") || suffix.starts_with(b"f64") {
            is_float = true;
        }
    }
    Ok(if is_float {
        TokenKind::Float
    } else {
        TokenKind::Int
    })
}

fn digits(cur: &mut Cursor<'_>) {
    while cur.peek(0).is_some_and(|b| b.is_ascii_digit() || b == b'_') {
        cur.bump();
    }
}

/// Disambiguate `'a'` (char) from `'a` (lifetime) at an opening quote.
fn char_or_lifetime(cur: &mut Cursor<'_>) -> Result<TokenKind, LexError> {
    // An escape can only start a char literal.
    if cur.peek(1) == Some(b'\\') {
        return char_literal(cur, TokenKind::Char);
    }
    // `'X'` with a closing quote right after one character is a char;
    // `'Xyz` running into identifier characters is a lifetime.
    if cur.peek(1).is_some_and(is_ident_start) && cur.peek(2) != Some(b'\'') {
        cur.bump(); // the quote
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
        return Ok(TokenKind::Lifetime);
    }
    char_literal(cur, TokenKind::Char)
}

/// Lex a (byte) char literal; the cursor sits on the opening quote.
fn char_literal(cur: &mut Cursor<'_>, kind: TokenKind) -> Result<TokenKind, LexError> {
    cur.bump(); // opening quote
    match cur.bump() {
        Some(b'\\') => {
            escape(cur)?;
        }
        Some(b'\'') => return Err(cur.err("empty char literal")),
        Some(b) => {
            // A multi-byte UTF-8 scalar (`'…'`): consume its
            // continuation bytes so the closing quote lines up.
            if b >= 0x80 {
                while cur.peek(0).is_some_and(|c| c & 0xC0 == 0x80) {
                    cur.bump();
                }
            }
        }
        None => return Err(cur.err("unterminated char literal")),
    }
    if cur.bump() != Some(b'\'') {
        return Err(cur.err("unterminated char literal"));
    }
    Ok(kind)
}

/// Consume the body of an escape sequence (the `\` is already consumed).
fn escape(cur: &mut Cursor<'_>) -> Result<(), LexError> {
    match cur.bump() {
        Some(b'x') => {
            cur.bump();
            cur.bump();
        }
        Some(b'u') => {
            if cur.peek(0) == Some(b'{') {
                while let Some(b) = cur.bump() {
                    if b == b'}' {
                        break;
                    }
                }
            }
        }
        Some(_) => {}
        None => return Err(cur.err("unterminated escape sequence")),
    }
    Ok(())
}

/// Lex a string literal with escapes; the cursor sits on the opening quote.
fn string(cur: &mut Cursor<'_>, kind: TokenKind) -> Result<TokenKind, LexError> {
    let open = cur.line;
    cur.bump();
    loop {
        match cur.bump() {
            Some(b'"') => return Ok(kind),
            Some(b'\\') => escape(cur)?,
            Some(_) => {}
            None => {
                return Err(LexError {
                    line: open,
                    msg: "unterminated string literal".into(),
                })
            }
        }
    }
}

/// Lex an operator or delimiter, multi-character operators greedily.
fn operator(cur: &mut Cursor<'_>) -> Result<TokenKind, LexError> {
    for op in OPERATORS {
        if cur.starts_with(op) {
            for _ in 0..op.len() {
                cur.bump();
            }
            return Ok(TokenKind::Punct);
        }
    }
    let b = cur.peek(0).unwrap_or(b'?');
    if b.is_ascii_graphic() {
        cur.bump();
        Ok(TokenKind::Punct)
    } else {
        Err(cur.err(format!("unexpected byte 0x{b:02x}")))
    }
}
