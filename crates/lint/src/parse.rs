//! AST-lite item parser for `bpp-lint`'s semantic rules.
//!
//! The token rules (D1–D6) match flat patterns; the cross-file rules
//! (D7–D10) need to know *where items live*: which functions exist, what
//! their parameters are typed as, which structs declare which fields, and
//! which impl blocks cover which types. This module recovers exactly that
//! much structure from the code-token stream of a [`SourceFile`] — no
//! expressions, no types beyond token slices, no name resolution. Every
//! item records its 1-based start line and, where useful, a half-open
//! range of **code-token indices** (`SourceFile::code` positions) so rules
//! can re-scan bodies with the same indexing the token rules use.
//!
//! The parser is total: malformed input can produce fewer items, never an
//! error. Anything the grammar sketch below does not cover (closures,
//! macros, nested items inside bodies beyond `fn`/`const`) is simply
//! skipped — the rules built on top are written to be conservative under
//! missing items.

use crate::lexer::TokenKind;
use crate::rules::SourceFile;

/// One function parameter: binding name (if recoverable) and its type as
/// a space-joined token string (`"& mut R"`, `"f64"`).
#[derive(Debug, Clone)]
pub struct Param {
    /// The bound name (`self` for any self form), or `None` for patterns
    /// the parser does not unpick (tuples, `_`).
    pub name: Option<String>,
    /// The parameter's type tokens joined with single spaces; empty for
    /// bare `self`/`&self`/`&mut self`.
    pub ty: String,
}

/// One `fn` item (free or associated).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The fn's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Generic parameter tokens joined with spaces (without the angle
    /// brackets), empty when the fn is not generic.
    pub generics: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Code-token index range of the body between (exclusive) its braces,
    /// or `None` for a bodyless signature (trait method declaration).
    pub body: Option<(usize, usize)>,
}

/// One named struct field.
#[derive(Debug, Clone)]
pub struct Field {
    /// The field's name.
    pub name: String,
    /// 1-based line of the field's name token.
    pub line: u32,
}

/// One `struct` item; tuple and unit structs record no fields.
#[derive(Debug, Clone)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Named fields in declaration order (empty for tuple/unit structs).
    pub fields: Vec<Field>,
}

/// One `const` item: `const NAME: Ty = <expr>;` at any nesting depth.
#[derive(Debug, Clone)]
pub struct ConstItem {
    /// The const's name.
    pub name: String,
    /// 1-based line of the `const` keyword.
    pub line: u32,
    /// Code-token index range of the initializer expression (between `=`
    /// and the terminating `;`).
    pub value: (usize, usize),
}

/// One `impl` block: `impl [Trait for] Type { … }`.
#[derive(Debug, Clone)]
pub struct ImplBlock {
    /// The trait's last path ident (`ToJson` for `impl bpp_json::ToJson
    /// for X`), or `None` for an inherent impl.
    pub trait_name: Option<String>,
    /// The implemented type's last path ident.
    pub type_name: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
    /// Code-token index range of the block body between its braces.
    pub body: (usize, usize),
}

/// All items recovered from one file, in source order. Functions nested
/// inside impl blocks appear flattened in `fns`; [`ParsedFile::owner_of`]
/// recovers their impl type.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Every `fn` item, free and associated, in source order.
    pub fns: Vec<FnItem>,
    /// Every `struct` item.
    pub structs: Vec<StructItem>,
    /// Every valued `const` item, at any nesting depth.
    pub consts: Vec<ConstItem>,
    /// Every `impl` block.
    pub impls: Vec<ImplBlock>,
    /// Code-token start index of each fn, parallel to `fns` (used for
    /// impl-ownership lookup).
    fn_starts: Vec<usize>,
}

impl ParsedFile {
    /// The impl type that owns fn `idx`, or `None` for a free function.
    pub fn owner_of(&self, idx: usize) -> Option<&str> {
        let at = *self.fn_starts.get(idx)?;
        self.impls
            .iter()
            .find(|im| im.body.0 <= at && at < im.body.1)
            .map(|im| im.type_name.as_str())
    }
}

/// Parse the item structure of a file. Infallible; see module docs.
pub fn parse_file(f: &SourceFile) -> ParsedFile {
    let mut p = ParsedFile::default();
    let n = f.code.len();
    let mut k = 0usize;
    while k < n {
        match f.text(k) {
            "fn" if f.kind(k + 1) == Some(TokenKind::Ident) => {
                let start = k;
                if let Some((item, next)) = parse_fn(f, k) {
                    p.fns.push(item);
                    p.fn_starts.push(start);
                    k = next;
                    continue;
                }
                k += 1;
            }
            "struct" if f.kind(k + 1) == Some(TokenKind::Ident) => {
                if let Some((item, next)) = parse_struct(f, k) {
                    p.structs.push(item);
                    k = next;
                    continue;
                }
                k += 1;
            }
            "const" if f.kind(k + 1) == Some(TokenKind::Ident) && f.text(k + 2) == ":" => {
                if let Some((item, next)) = parse_const(f, k) {
                    p.consts.push(item);
                    k = next;
                    continue;
                }
                k += 1;
            }
            "impl" => {
                if let Some(block) = parse_impl(f, k) {
                    // Do NOT skip the body: fns inside are parsed by the
                    // same linear walk and attributed via `owner_of`.
                    p.impls.push(block);
                }
                k += 1;
            }
            _ => k += 1,
        }
    }
    p
}

/// Skip a balanced `<…>` generic list whose `<` sits at `k`; returns the
/// index past the matching `>`. `<<`/`>>` count twice.
pub(crate) fn skip_generics(f: &SourceFile, k: usize) -> usize {
    let mut depth = 0i32;
    let mut j = k;
    while j < f.code.len() {
        match f.text(j) {
            "<" => depth += 1,
            ">" => depth -= 1,
            "<<" => depth += 2,
            ">>" => depth -= 2,
            // `->` in `Fn(…) -> T` bounds contains `>` but is one token;
            // the lexer already keeps it atomic, nothing to do.
            _ => {}
        }
        j += 1;
        if depth <= 0 {
            break;
        }
    }
    j
}

/// Find the matching closer for the opener at code index `open`
/// (`(`/`[`/`{` families all balanced together); returns its index.
pub(crate) fn matching(f: &SourceFile, open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < f.code.len() {
        match f.text(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    f.code.len()
}

fn parse_fn(f: &SourceFile, k: usize) -> Option<(FnItem, usize)> {
    let name = f.text(k + 1).to_string();
    let line = f.line(k);
    let mut j = k + 2;
    let mut generics = String::new();
    if f.text(j) == "<" {
        let end = skip_generics(f, j);
        generics = join(f, j + 1, end.saturating_sub(1));
        j = end;
    }
    if f.text(j) != "(" {
        return None;
    }
    let close = matching(f, j);
    let params = parse_params(f, j + 1, close);
    // Scan past the return type / where clause to the body `{` or a `;`.
    let mut m = close + 1;
    while m < f.code.len() {
        match f.text(m) {
            ";" => {
                return Some((
                    FnItem {
                        name,
                        line,
                        generics,
                        params,
                        body: None,
                    },
                    m + 1,
                ));
            }
            "{" => {
                let end = matching(f, m);
                return Some((
                    FnItem {
                        name,
                        line,
                        generics,
                        params,
                        body: Some((m + 1, end)),
                    },
                    m + 1, // resume INSIDE the body so nested items parse
                ));
            }
            "<" => m = skip_generics(f, m),
            _ => m += 1,
        }
    }
    None
}

/// Split `[a, b)` into top-level comma-separated parameter slices and
/// extract (name, type) from each.
fn parse_params(f: &SourceFile, a: usize, b: usize) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut start = a;
    let mut j = a;
    while j <= b {
        let at_end = j == b;
        let t = if at_end { "," } else { f.text(j) };
        match t {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            "<" => {
                j = skip_generics(f, j);
                continue;
            }
            "," if depth == 0 => {
                if j > start {
                    params.push(parse_param(f, start, j));
                }
                start = j + 1;
            }
            _ => {}
        }
        if at_end {
            break;
        }
        j += 1;
    }
    params
}

fn parse_param(f: &SourceFile, a: usize, b: usize) -> Param {
    // Self forms: [&] [lifetime] [mut] self
    if (a..b).any(|k| f.text(k) == "self") && !(a..b).any(|k| f.text(k) == ":") {
        return Param {
            name: Some("self".to_string()),
            ty: String::new(),
        };
    }
    // `pattern : type` — name is the last plain ident of the pattern.
    let colon = (a..b).find(|&k| f.text(k) == ":");
    match colon {
        Some(c) => {
            let name = (a..c)
                .rev()
                .find(|&k| f.kind(k) == Some(TokenKind::Ident) && f.text(k) != "mut")
                .map(|k| f.text(k).to_string());
            Param {
                name,
                ty: join(f, c + 1, b),
            }
        }
        None => Param {
            name: None,
            ty: join(f, a, b),
        },
    }
}

fn parse_struct(f: &SourceFile, k: usize) -> Option<(StructItem, usize)> {
    let name = f.text(k + 1).to_string();
    let line = f.line(k);
    let mut j = k + 2;
    if f.text(j) == "<" {
        j = skip_generics(f, j);
    }
    // `where` clause before the brace.
    while j < f.code.len() && !matches!(f.text(j), "{" | "(" | ";") {
        if f.text(j) == "<" {
            j = skip_generics(f, j);
        } else {
            j += 1;
        }
    }
    match f.text(j) {
        // Tuple struct `struct X(…);` or unit `struct X;` — no fields.
        "(" | ";" => Some((
            StructItem {
                name,
                line,
                fields: Vec::new(),
            },
            j + 1,
        )),
        "{" => {
            let end = matching(f, j);
            let mut fields = Vec::new();
            let mut m = j + 1;
            let mut depth = 0i32;
            while m < end {
                match f.text(m) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "<" => {
                        m = skip_generics(f, m);
                        continue;
                    }
                    "#" if f.text(m + 1) == "[" => {
                        m = matching(f, m + 1) + 1;
                        continue;
                    }
                    ":" if depth == 0
                        && m > j + 1
                        && f.kind(m - 1) == Some(TokenKind::Ident)
                        && matches!(f.text(m.wrapping_sub(2)), "{" | "," | "pub" | ")") =>
                    {
                        fields.push(Field {
                            name: f.text(m - 1).to_string(),
                            line: f.line(m - 1),
                        });
                    }
                    _ => {}
                }
                m += 1;
            }
            Some((StructItem { name, line, fields }, end + 1))
        }
        _ => None,
    }
}

fn parse_const(f: &SourceFile, k: usize) -> Option<(ConstItem, usize)> {
    let name = f.text(k + 1).to_string();
    let line = f.line(k);
    // Find the `=` after the type, at depth 0 relative to the const.
    let mut j = k + 3;
    let mut eq = None;
    while j < f.code.len() {
        match f.text(j) {
            "<" => {
                j = skip_generics(f, j);
                continue;
            }
            "(" | "[" | "{" => {
                j = matching(f, j) + 1;
                continue;
            }
            "=" => {
                eq = Some(j);
                break;
            }
            ";" => break, // `const FOO: Ty;` in a trait — no value
            _ => {}
        }
        j += 1;
    }
    let eq = eq?;
    let mut m = eq + 1;
    while m < f.code.len() && f.text(m) != ";" {
        if matches!(f.text(m), "(" | "[" | "{") {
            m = matching(f, m) + 1;
        } else {
            m += 1;
        }
    }
    Some((
        ConstItem {
            name,
            line,
            value: (eq + 1, m),
        },
        m + 1,
    ))
}

fn parse_impl(f: &SourceFile, k: usize) -> Option<ImplBlock> {
    let line = f.line(k);
    let mut j = k + 1;
    if f.text(j) == "<" {
        j = skip_generics(f, j);
    }
    let mut trait_name: Option<String> = None;
    let mut last_ident = String::new();
    while j < f.code.len() && f.text(j) != "{" {
        match f.text(j) {
            "for" => {
                trait_name = (!last_ident.is_empty()).then(|| last_ident.clone());
                last_ident.clear();
            }
            "<" => {
                j = skip_generics(f, j);
                continue;
            }
            ";" => return None, // `impl Trait for Type;` never occurs; bail
            _ => {
                if f.kind(j) == Some(TokenKind::Ident) {
                    last_ident = f.text(j).to_string();
                }
            }
        }
        j += 1;
    }
    if last_ident.is_empty() || j >= f.code.len() {
        return None;
    }
    let end = matching(f, j);
    Some(ImplBlock {
        trait_name,
        type_name: last_ident,
        line,
        body: (j + 1, end),
    })
}

fn join(f: &SourceFile, a: usize, b: usize) -> String {
    let mut s = String::new();
    for k in a..b {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(f.text(k));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parsed(src: &str) -> ParsedFile {
        parse_file(&SourceFile::new(
            "crates/core/src/x.rs".to_string(),
            lex(src).expect("test source must lex"),
        ))
    }

    #[test]
    fn fn_signature_and_body_range() {
        let p = parsed("pub fn f<R: Rng + ?Sized>(a: u64, rng: &mut R) -> u64 { a }");
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.generics, "R : Rng + ? Sized");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].name.as_deref(), Some("a"));
        assert_eq!(f.params[0].ty, "u64");
        assert_eq!(f.params[1].name.as_deref(), Some("rng"));
        assert_eq!(f.params[1].ty, "& mut R");
        assert!(f.body.is_some());
    }

    #[test]
    fn self_params_and_trait_decls() {
        let p = parsed(
            "trait T { fn sig(&self, x: f64) -> f64; }\n\
             impl T for S { fn sig(&self, x: f64) -> f64 { x } }",
        );
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].body, None, "trait declaration has no body");
        assert_eq!(p.fns[0].params[0].name.as_deref(), Some("self"));
        assert!(p.fns[1].body.is_some());
        assert_eq!(p.impls.len(), 1);
        assert_eq!(p.impls[0].trait_name.as_deref(), Some("T"));
        assert_eq!(p.impls[0].type_name, "S");
        assert_eq!(p.owner_of(1), Some("S"), "impl fn attributed to its type");
        assert_eq!(p.owner_of(0), None, "trait decl is not inside the impl");
    }

    #[test]
    fn struct_fields_skip_attrs_and_generic_noise() {
        let p = parsed(
            "pub struct C<T: Clone> {\n\
             \x20   #[allow(dead_code)]\n\
             \x20   pub a: Vec<(u32, u32)>,\n\
             \x20   b: Option<T>,\n\
             }",
        );
        assert_eq!(p.structs.len(), 1);
        let names: Vec<&str> = p.structs[0]
            .fields
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert_eq!(
            names,
            ["a", "b"],
            "nested type colons must not look like fields"
        );
    }

    #[test]
    fn tuple_and_unit_structs_have_no_fields() {
        let p = parsed("struct T(u32, f64);\nstruct U;");
        assert_eq!(p.structs.len(), 2);
        assert!(p.structs[0].fields.is_empty());
        assert!(p.structs[1].fields.is_empty());
    }

    #[test]
    fn const_value_range_and_nesting() {
        let p = parsed("pub const GRID: [u32; 3] = [10, 25, 50];\nfn f() { const K: u32 = 7; }");
        assert_eq!(p.consts.len(), 2, "consts found at any nesting depth");
        assert_eq!(p.consts[0].name, "GRID");
        assert_eq!(p.consts[1].name, "K");
    }

    #[test]
    fn nested_fn_inside_body_is_found() {
        let p = parsed("fn outer() { fn inner(x: u64) -> u64 { x } inner(1); }");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
    }

    #[test]
    fn inherent_impl_has_no_trait() {
        let p = parsed("impl Widget { fn new() -> Widget { Widget } }");
        assert_eq!(p.impls.len(), 1);
        assert_eq!(p.impls[0].trait_name, None);
        assert_eq!(p.impls[0].type_name, "Widget");
    }

    #[test]
    fn shift_operators_inside_generics_balance() {
        // `Vec<Vec<u64>>` ends with a `>>` token that must close two
        // levels, or everything after it is misparsed.
        let p = parsed("fn f(v: Vec<Vec<u64>>) -> usize { v.len() }\nfn g() {}");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["f", "g"]);
    }
}
