//! # bpp-lint — in-tree determinism & hygiene static analysis
//!
//! The reproduction's headline guarantee — every experiment is bit-for-bit
//! deterministic from one `u64` seed — is a property of the *whole*
//! workspace, not of any single call site: one magic RNG stream id, one
//! wall-clock read, or one `HashMap` iteration anywhere in a sim-affecting
//! crate silently re-randomises published numbers. `bpp-lint` enforces
//! those invariants the same way the workspace does everything else:
//! fully in-tree, zero external dependencies.
//!
//! The binary lexes every `.rs` file in the workspace with a real Rust
//! lexer ([`lexer`]), recovers the item structure with a lightweight
//! parser ([`parse`]), and evaluates the rule set ([`rules`], D0–D13)
//! in two phases: single-file token rules, then cross-file semantic
//! rules over a [`graph::Workspace`] — stream-flow, config-surface and
//! dead-artifact analysis, plus the expression-level dataflow rules
//! (unit inference over per-function CFGs ([`expr`], [`cfg`],
//! [`dataflow`]), ledger-bucket coverage, reset coverage). Suppressions
//! (`// bpp-lint: allow(<rule>)` comments and a root-level
//! `lint_allow.txt`) apply to both phases. Diagnostics are ordered
//! deterministically (file path, then line, then rule), and `--json`
//! emits a machine-readable schema-v3 report via `bpp-json` that is
//! byte-for-byte reproducible — the `results/lint_fixture.json` golden
//! test pins it. (`--timing` adds a non-deterministic `timing` member;
//! golden regeneration must not pass it.)
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run --release -p bpp-lint            # human-readable report
//! cargo run --release -p bpp-lint -- --deny  # CI gate: nonzero exit on findings
//! cargo run --release -p bpp-lint -- --json  # machine-readable report
//! cargo run --release -p bpp-lint -- --fix   # apply machine-applicable suggestions
//! ```
//!
//! Exit codes under `--deny`: `0` clean, `1` surviving diagnostics, `3`
//! internal lexer failure (the lint itself is broken, not the code);
//! `2` is usage/IO errors. Without `--deny` the exit is always `0` so
//! report generation (golden regeneration, drift guards) stays pipeable.

#![forbid(unsafe_code)]

pub mod cfg;
pub mod dataflow;
pub mod expr;
pub mod fix;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;

use bpp_json::{Json, ToJson};
use graph::{Analysis, Workspace};
use rules::{check_file, known_rule, Diagnostic, SourceFile, Suppressions, RULES, TOKEN_RULES};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Directory names never descended into: build output, VCS state, the
/// lint crate's own violation fixtures, and committed experiment results.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "results"];

/// The outcome of linting a tree.
#[derive(Debug, Clone)]
pub struct Report {
    /// The root label the report was produced for (as given, not
    /// canonicalized, so reports are machine-independent).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Files the lexer failed on — the lint is broken there, not the
    /// code. Counted separately so CI can distinguish (exit 3 vs 1); each
    /// failure also surfaces as a D0 diagnostic.
    pub internal_errors: usize,
    /// Surviving diagnostics, sorted by (file, line, rule, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics silenced by `bpp-lint: allow` directives.
    pub suppressed: usize,
    /// Per-rule suppressed counts (not serialized; feeds the human
    /// summary).
    pub suppressed_by_rule: BTreeMap<&'static str, usize>,
    /// Edits applied by `--fix` (always serialized; `0` without the
    /// flag, so the CI idempotence gate can grep for `"fixed": 0`).
    pub fixed: usize,
    /// Per-phase wall-clock in microseconds, keyed by rule id plus the
    /// `lex` / `parse` pseudo-phases. Present only under `--timing` —
    /// the values are machine-dependent, so the byte-stable golden is
    /// generated without it.
    pub timing: Option<BTreeMap<String, u64>>,
}

impl ToJson for Diagnostic {
    fn to_json(&self) -> Json {
        let mut members = vec![
            ("file", self.file.to_json()),
            ("line", u64::from(self.line).to_json()),
            ("rule", self.rule.to_json()),
            ("message", self.message.to_json()),
        ];
        if let Some(s) = &self.suggestion {
            let mut sm = vec![
                ("line", u64::from(s.line).to_json()),
                ("kind", s.kind.to_json()),
                ("text", s.text.to_json()),
            ];
            if let Some((a, b)) = s.span {
                sm.push((
                    "span",
                    Json::Arr(vec![u64::from(a).to_json(), u64::from(b).to_json()]),
                ));
            }
            members.push(("suggestion", Json::object(sm)));
        }
        Json::object(members)
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        let mut members = vec![
            ("version", 3u64.to_json()),
            ("root", self.root.to_json()),
            ("files", (self.files as u64).to_json()),
            ("internal_errors", (self.internal_errors as u64).to_json()),
            ("diagnostics", self.diagnostics.to_json()),
            ("suppressed", (self.suppressed as u64).to_json()),
            ("fixed", (self.fixed as u64).to_json()),
        ];
        if let Some(timing) = &self.timing {
            members.push((
                "timing",
                Json::object(timing.iter().map(|(k, v)| (k.clone(), v.to_json()))),
            ));
        }
        Json::object(members)
    }
}

impl Report {
    /// The pretty-printed JSON document (trailing newline included), the
    /// exact bytes the golden test pins.
    pub fn to_json_string(&self) -> String {
        let mut s = bpp_json::to_string_pretty(self);
        s.push('\n');
        s
    }

    /// Human-readable `file:line: rule: message` lines plus a per-rule
    /// count summary (rules with nothing to report are elided).
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}: {}: {}\n",
                d.file, d.line, d.rule, d.message
            ));
            if let Some(s) = &d.suggestion {
                out.push_str(&format!(
                    "    suggestion ({} line {}): {}\n",
                    s.kind, s.line, s.text
                ));
            }
        }
        for (id, _) in RULES {
            let active = self.diagnostics.iter().filter(|d| d.rule == id).count();
            let silenced = self.suppressed_by_rule.get(id).copied().unwrap_or(0);
            if active > 0 || silenced > 0 {
                out.push_str(&format!(
                    "rule {id}: {active} diagnostic(s), {silenced} suppressed\n"
                ));
            }
        }
        if let Some(timing) = &self.timing {
            let total: u64 = timing.values().sum();
            for (phase, us) in timing {
                out.push_str(&format!("timing {phase}: {us} us\n"));
            }
            out.push_str(&format!("timing total: {total} us\n"));
        }
        if self.fixed > 0 {
            out.push_str(&format!("bpp-lint --fix: applied {} edit(s)\n", self.fixed));
        }
        out.push_str(&format!(
            "bpp-lint: {} file(s), {} diagnostic(s), {} suppressed, {} internal error(s)\n",
            self.files,
            self.diagnostics.len(),
            self.suppressed,
            self.internal_errors
        ));
        out
    }
}

/// The workspace root, derived from this crate's manifest directory at
/// compile time (robust to whatever directory the binary is run from).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Recursively collect root-relative paths of `.rs` files under `dir`,
/// skipping [`SKIP_DIRS`]. Paths use forward slashes on every platform.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lint one already-lexed file in isolation: single-file rules plus
/// suppressions. Cross-file rules need [`lint_root`]. Returns surviving
/// diagnostics and the suppressed ones (with their rule ids).
pub fn lint_file(file: &SourceFile) -> (Vec<Diagnostic>, usize) {
    let sup = Suppressions::parse(file);
    let mut out: Vec<Diagnostic> = d0_problems(file, &sup);
    let mut suppressed = 0usize;
    for d in check_file(file) {
        if sup.covers(d.rule, d.line) {
            suppressed += 1;
        } else {
            out.push(d);
        }
    }
    (out, suppressed)
}

fn d0_problems(file: &SourceFile, sup: &Suppressions) -> Vec<Diagnostic> {
    sup.problems
        .iter()
        .map(|(line, msg)| Diagnostic {
            file: file.rel.clone(),
            line: *line,
            rule: "D0",
            message: msg.clone(),
            suggestion: None,
        })
        .collect()
}

/// One entry of the root-level `lint_allow.txt`:
/// `<rule> <path> [# justification]` per line, `#`-prefixed comment lines
/// and blank lines ignored.
struct AllowEntry {
    rule: String,
    path: String,
    line: u32,
}

fn parse_allow_file(text: &str) -> (Vec<AllowEntry>, Vec<(u32, String)>) {
    let mut entries = Vec::new();
    let mut problems = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = (i + 1) as u32;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut parts = content.split_whitespace();
        let (Some(rule), Some(path), None) = (parts.next(), parts.next(), parts.next()) else {
            problems.push((
                line,
                format!("malformed lint_allow.txt entry `{content}`: expected `<rule> <path>`"),
            ));
            continue;
        };
        if !known_rule(rule) {
            problems.push((line, format!("unknown rule `{rule}` in lint_allow.txt")));
            continue;
        }
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
        });
    }
    (entries, problems)
}

/// Read a root-relative text file, if present.
fn read_optional(root: &Path, rel: &str) -> Option<String> {
    std::fs::read_to_string(root.join(rel)).ok()
}

/// Names of `results/*.csv` / `results/*.json` artifacts under `root`.
fn collect_artifacts(root: &Path) -> Vec<String> {
    let Ok(rd) = std::fs::read_dir(root.join("results")) else {
        return Vec::new();
    };
    let mut out: Vec<String> = rd
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            (name.ends_with(".csv") || name.ends_with(".json")).then_some(name)
        })
        .collect();
    out.sort();
    out
}

/// Raw text of `scripts/*` and `.github/workflows/*` under `root` —
/// non-Rust artifact reference sources for rule D10.
fn collect_reference_texts(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    for dir in ["scripts", ".github/workflows"] {
        let Ok(rd) = std::fs::read_dir(root.join(dir)) else {
            continue;
        };
        let mut paths: Vec<PathBuf> = rd.flatten().map(|e| e.path()).collect();
        paths.sort();
        for p in paths {
            if let Ok(text) = std::fs::read_to_string(&p) {
                out.push(text);
            }
        }
    }
    out
}

/// Lint every `.rs` file under `root`, labelling the report with
/// `root_label` (kept verbatim so output does not depend on the machine's
/// absolute paths). Runs both phases: single-file token rules, then the
/// cross-file semantic rules (D7, D8, D10–D13) over the whole tree.
pub fn lint_root(root: &Path, root_label: &str) -> io::Result<Report> {
    lint_root_opts(root, root_label, false)
}

/// Accumulate elapsed microseconds for one timed phase.
fn record(timing: &mut Option<BTreeMap<String, u64>>, phase: &str, since: Instant) {
    if let Some(t) = timing {
        *t.entry(phase.to_string()).or_insert(0) +=
            u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX);
    }
}

/// [`lint_root`] with options: when `timing` is set the report carries
/// per-rule wall-clock (microseconds, machine-dependent — never part of
/// the byte-stable golden).
pub fn lint_root_opts(root: &Path, root_label: &str, timing: bool) -> io::Result<Report> {
    let mut timing: Option<BTreeMap<String, u64>> = timing.then(BTreeMap::new);
    let mut rels = Vec::new();
    collect_rs(root, root, &mut rels)?;
    rels.sort();

    // Phase 0: lex + parse everything; lexer failures are internal errors.
    let mut analyses: Vec<Analysis> = Vec::new();
    let mut sups: Vec<Suppressions> = Vec::new();
    let mut raw: Vec<Diagnostic> = Vec::new();
    let mut internal_errors = 0usize;
    for rel in &rels {
        let src =
            std::fs::read_to_string(root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR)))?;
        let t0 = Instant::now();
        let lexed = lexer::lex(&src);
        record(&mut timing, "lex", t0);
        match lexed {
            Ok(tokens) => {
                let file = SourceFile::new(rel.clone(), tokens);
                let t0 = Instant::now();
                analyses.push(Analysis::new(file));
                record(&mut timing, "parse", t0);
            }
            Err(e) => {
                internal_errors += 1;
                raw.push(Diagnostic {
                    file: rel.clone(),
                    line: e.line,
                    rule: "D0",
                    message: format!("lexer error: {}", e.msg),
                    suggestion: None,
                });
            }
        }
    }

    // Root-level allowlist: file-wide suppressions by path; an entry
    // naming a path that was not scanned is a D0 diagnostic.
    let mut allow_by_path: BTreeMap<String, Vec<String>> = BTreeMap::new();
    if let Some(text) = read_optional(root, "lint_allow.txt") {
        let (entries, problems) = parse_allow_file(&text);
        for (line, msg) in problems {
            raw.push(Diagnostic {
                file: "lint_allow.txt".to_string(),
                line,
                rule: "D0",
                message: msg,
                suggestion: None,
            });
        }
        for e in entries {
            if analyses.iter().any(|a| a.file.rel == e.path) {
                allow_by_path.entry(e.path).or_default().push(e.rule);
            } else {
                raw.push(Diagnostic {
                    file: "lint_allow.txt".to_string(),
                    line: e.line,
                    rule: "D0",
                    message: format!(
                        "lint_allow.txt entry for `{}` names a file that no longer exists",
                        e.path
                    ),
                    suggestion: None,
                });
            }
        }
    }

    // Phase 1: per-file suppressions, then the token rules rule-major so
    // each rule's cost is attributable (diagnostic order is irrelevant —
    // everything is sorted at the end).
    for a in &analyses {
        let mut sup = Suppressions::parse(&a.file);
        if let Some(rules) = allow_by_path.get(&a.file.rel) {
            for r in rules {
                sup.add_file_rule(r);
            }
        }
        raw.extend(d0_problems(&a.file, &sup));
        sups.push(sup);
    }
    for (id, rule) in TOKEN_RULES {
        let t0 = Instant::now();
        for a in &analyses {
            rule(&a.file, &mut raw);
        }
        record(&mut timing, id, t0);
    }

    // Phase 2: cross-file semantic rules over the workspace graph.
    let t0 = Instant::now();
    let ws = Workspace::build(
        &analyses,
        read_optional(root, "DESIGN.md"),
        collect_artifacts(root),
        collect_reference_texts(root),
    );
    record(&mut timing, "graph", t0);
    type SemanticRule = fn(&Workspace, &mut Vec<Diagnostic>);
    let semantic: [(&str, SemanticRule); 6] = [
        ("D7", rules::stream_flow::d7_stream_flow),
        ("D8", rules::config_surface::d8_config_surface),
        ("D10", rules::dead_artifacts::d10_dead_artifacts),
        ("D11", rules::unit_infer::d11_unit_inference),
        ("D12", rules::ledger::d12_ledger_coverage),
        ("D13", rules::reset::d13_reset_coverage),
    ];
    for (id, rule) in semantic {
        let t0 = Instant::now();
        rule(&ws, &mut raw);
        record(&mut timing, id, t0);
    }

    // Apply suppressions to everything (D0 is never suppressible by
    // construction: directives naming it are rejected at parse time).
    let sup_index: BTreeMap<&str, &Suppressions> = analyses
        .iter()
        .zip(&sups)
        .map(|(a, s)| (a.file.rel.as_str(), s))
        .collect();
    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;
    let mut suppressed_by_rule: BTreeMap<&'static str, usize> = BTreeMap::new();
    for d in raw {
        let covered = sup_index
            .get(d.file.as_str())
            .is_some_and(|s| s.covers(d.rule, d.line));
        if covered {
            suppressed += 1;
            *suppressed_by_rule.entry(d.rule).or_insert(0) += 1;
        } else {
            diagnostics.push(d);
        }
    }
    diagnostics.sort();
    Ok(Report {
        root: root_label.to_string(),
        files: rels.len(),
        internal_errors,
        diagnostics,
        suppressed,
        suppressed_by_rule,
        fixed: 0,
        timing,
    })
}
