//! # bpp-lint — in-tree determinism & hygiene static analysis
//!
//! The reproduction's headline guarantee — every experiment is bit-for-bit
//! deterministic from one `u64` seed — is a property of the *whole*
//! workspace, not of any single call site: one magic RNG stream id, one
//! wall-clock read, or one `HashMap` iteration anywhere in a sim-affecting
//! crate silently re-randomises published numbers. `bpp-lint` enforces
//! those invariants the same way the workspace does everything else:
//! fully in-tree, zero external dependencies.
//!
//! The binary lexes every `.rs` file in the workspace with a real Rust
//! lexer ([`lexer`]) and evaluates the rule set ([`rules`]) over the token
//! streams, honouring `// bpp-lint: allow(<rule>)` suppression comments.
//! Diagnostics are ordered deterministically (file path, then line, then
//! rule), and `--json` emits a machine-readable report via `bpp-json` that
//! is byte-for-byte reproducible — the `results/lint_fixture.json` golden
//! test pins it.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run --release -p bpp-lint            # human-readable report
//! cargo run --release -p bpp-lint -- --deny  # CI gate: nonzero exit on findings
//! cargo run --release -p bpp-lint -- --json  # machine-readable report
//! ```

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use bpp_json::{Json, ToJson};
use rules::{check_file, Diagnostic, SourceFile, Suppressions};
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, VCS state, the
/// lint crate's own violation fixtures, and committed experiment results.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "fixtures", "results"];

/// The outcome of linting a tree.
#[derive(Debug, Clone)]
pub struct Report {
    /// The root label the report was produced for (as given, not
    /// canonicalized, so reports are machine-independent).
    pub root: String,
    /// Number of `.rs` files scanned.
    pub files: usize,
    /// Surviving diagnostics, sorted by (file, line, rule, message).
    pub diagnostics: Vec<Diagnostic>,
    /// Diagnostics silenced by `bpp-lint: allow` directives.
    pub suppressed: usize,
}

impl ToJson for Diagnostic {
    fn to_json(&self) -> Json {
        Json::object([
            ("file", self.file.to_json()),
            ("line", u64::from(self.line).to_json()),
            ("rule", self.rule.to_json()),
            ("message", self.message.to_json()),
        ])
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        Json::object([
            ("version", 1u64.to_json()),
            ("root", self.root.to_json()),
            ("files", (self.files as u64).to_json()),
            ("diagnostics", self.diagnostics.to_json()),
            ("suppressed", (self.suppressed as u64).to_json()),
        ])
    }
}

impl Report {
    /// The pretty-printed JSON document (trailing newline included), the
    /// exact bytes the golden test pins.
    pub fn to_json_string(&self) -> String {
        let mut s = bpp_json::to_string_pretty(self);
        s.push('\n');
        s
    }

    /// Human-readable `file:line: rule: message` lines plus a summary.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}: {}: {}\n",
                d.file, d.line, d.rule, d.message
            ));
        }
        out.push_str(&format!(
            "bpp-lint: {} file(s), {} diagnostic(s), {} suppressed\n",
            self.files,
            self.diagnostics.len(),
            self.suppressed
        ));
        out
    }
}

/// The workspace root, derived from this crate's manifest directory at
/// compile time (robust to whatever directory the binary is run from).
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

/// Recursively collect root-relative paths of `.rs` files under `dir`,
/// skipping [`SKIP_DIRS`]. Paths use forward slashes on every platform.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Lint one already-lexed file: evaluate rules, apply suppressions.
/// Returns surviving diagnostics and the count of suppressed ones.
pub fn lint_file(file: &SourceFile) -> (Vec<Diagnostic>, usize) {
    let sup = Suppressions::parse(file);
    let mut out: Vec<Diagnostic> = sup
        .problems
        .iter()
        .map(|(line, msg)| Diagnostic {
            file: file.rel.clone(),
            line: *line,
            rule: "D0",
            message: msg.clone(),
        })
        .collect();
    let mut suppressed = 0usize;
    for d in check_file(file) {
        if sup.covers(d.rule, d.line) {
            suppressed += 1;
        } else {
            out.push(d);
        }
    }
    (out, suppressed)
}

/// Lint every `.rs` file under `root`, labelling the report with
/// `root_label` (kept verbatim so output does not depend on the machine's
/// absolute paths).
pub fn lint_root(root: &Path, root_label: &str) -> io::Result<Report> {
    let mut rels = Vec::new();
    collect_rs(root, root, &mut rels)?;
    rels.sort();
    let mut diagnostics = Vec::new();
    let mut suppressed = 0usize;
    for rel in &rels {
        let src =
            std::fs::read_to_string(root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR)))?;
        match lexer::lex(&src) {
            Ok(tokens) => {
                let file = SourceFile::new(rel.clone(), tokens);
                let (d, s) = lint_file(&file);
                diagnostics.extend(d);
                suppressed += s;
            }
            Err(e) => diagnostics.push(Diagnostic {
                file: rel.clone(),
                line: e.line,
                rule: "D0",
                message: format!("lexer error: {}", e.msg),
            }),
        }
    }
    diagnostics.sort();
    Ok(Report {
        root: root_label.to_string(),
        files: rels.len(),
        diagnostics,
        suppressed,
    })
}
