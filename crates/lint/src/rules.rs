//! The `bpp-lint` rule engine: scopes, suppressions, and rules D1–D6.
//!
//! Rules run over the token stream of one file at a time (see
//! [`crate::lexer`]); cross-file state is deliberately avoided so the
//! report order is a pure function of the sorted file list. Each rule
//! documents its scope and its heuristic precisely — a token-level checker
//! cannot do type inference, so where a rule approximates (D2's map-name
//! tracking, D4's literal-adjacency test) the approximation is stated and
//! conservative.
//!
//! ## Suppression grammar
//!
//! Diagnostics are suppressed by plain `//` line comments (doc comments
//! are never scanned, so documentation may quote directives freely):
//!
//! ```text
//! // bpp-lint: allow(D3): holds because <one-line justification>
//! // bpp-lint: allow(D1, D2)
//! // bpp-lint: allow-file(D1): whole-file justification
//! ```
//!
//! `allow` covers the comment's own line and the line directly below it
//! (so both trailing and preceding placements work); `allow-file` covers
//! the whole file. Rule names must be drawn from the registry below —
//! a typo'd or unknown name is itself reported (rule `D0`), so a
//! suppression can never rot silently. `D0` cannot be suppressed.

use crate::lexer::{Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// One finding: file, 1-based line, rule id, human-readable message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Path relative to the linted root, forward slashes.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule id (`"D1"` … `"D6"`, or `"D0"` for lint-integrity findings).
    pub rule: &'static str,
    /// What went wrong and how to fix it.
    pub message: String,
}

/// The rule registry: id and one-line summary, in report order.
pub const RULES: [(&str, &str); 7] = [
    ("D0", "lint integrity: lexer failures and malformed/unknown suppressions"),
    ("D1", "stream-discipline: stream_rng/.named must use streams::* constants; registry unique+documented"),
    ("D2", "nondeterminism ban: Instant/SystemTime/thread spawn/HashMap-HashSet iteration in sim-affecting crates"),
    ("D3", "panic hygiene: no unwrap()/expect()/panic!() in non-test library code"),
    ("D4", "float-eq: no ==/!= against float literals; route through bpp_sim::approx"),
    ("D5", "JSON-key drift: to_json/from_json impls in a file must use matching key sets"),
    ("D6", "every crate lib.rs must carry #![forbid(unsafe_code)]"),
];

/// Crates whose code feeds simulation results; rule D2's blast radius.
const SIM_AFFECTING: [&str; 7] = [
    "sim",
    "broadcast",
    "cache",
    "client",
    "server",
    "workload",
    "core",
];

/// Map-iteration adaptors rule D2 flags on `HashMap`/`HashSet` bindings.
const ITER_METHODS: [&str; 7] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Where a file sits in the workspace, derived from its relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scope {
    /// `crates/<name>/…` → `Some(name)`.
    pub crate_name: Option<String>,
    /// Under `crates/*/src/` but not `src/bin/` — "library code".
    pub library: bool,
    /// Exactly `crates/<name>/src/lib.rs`.
    pub lib_rs: bool,
}

impl Scope {
    /// Classify a root-relative path (forward slashes).
    pub fn of(rel: &str) -> Scope {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_name = (parts.len() >= 2 && parts[0] == "crates").then(|| parts[1].to_string());
        let library =
            parts.len() >= 4 && parts[0] == "crates" && parts[2] == "src" && parts[3] != "bin";
        let lib_rs = library && parts.len() == 4 && parts[3] == "lib.rs";
        Scope {
            crate_name,
            library,
            lib_rs,
        }
    }

    fn sim_affecting(&self) -> bool {
        self.crate_name
            .as_deref()
            .is_some_and(|c| SIM_AFFECTING.contains(&c))
    }
}

/// A lexed file ready for rule evaluation.
pub struct SourceFile {
    /// Root-relative path, forward slashes.
    pub rel: String,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens ("code tokens").
    pub code: Vec<usize>,
    /// Path-derived scope.
    pub scope: Scope,
    /// Inclusive line ranges covered by `#[test]`/`#[cfg(test)]` items.
    pub test_lines: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Build a file from its relative path and token stream.
    pub fn new(rel: String, tokens: Vec<Token>) -> SourceFile {
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let scope = Scope::of(&rel);
        let mut f = SourceFile {
            rel,
            tokens,
            code,
            scope,
            test_lines: Vec::new(),
        };
        f.test_lines = f.find_test_regions();
        f
    }

    /// Code token at code-index `k`.
    fn t(&self, k: usize) -> Option<&Token> {
        self.code.get(k).map(|&i| &self.tokens[i])
    }

    /// Text of code token `k`, or `""` past the end.
    fn text(&self, k: usize) -> &str {
        self.t(k).map_or("", |t| t.text.as_str())
    }

    fn kind(&self, k: usize) -> Option<TokenKind> {
        self.t(k).map(|t| t.kind)
    }

    fn line(&self, k: usize) -> u32 {
        self.t(k).map_or(0, |t| t.line)
    }

    fn in_test(&self, line: u32) -> bool {
        self.test_lines
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// Line ranges of items annotated with an attribute that mentions
    /// `test` (`#[test]`, `#[cfg(test)]`). The region runs from the
    /// attribute to the closing brace of the annotated item (or its `;`).
    fn find_test_regions(&self) -> Vec<(u32, u32)> {
        let mut regions = Vec::new();
        let n = self.code.len();
        let mut k = 0;
        while k < n {
            // Outer attribute `#[…]` (inner `#![…]` never marks a test item).
            if self.text(k) == "#" && self.text(k + 1) == "[" {
                let start_line = self.line(k);
                let mut j = k + 2;
                let mut depth = 1i32;
                let mut mentions_test = false;
                while j < n && depth > 0 {
                    match self.text(j) {
                        "[" => depth += 1,
                        "]" => depth -= 1,
                        "test" if self.kind(j) == Some(TokenKind::Ident) => mentions_test = true,
                        _ => {}
                    }
                    j += 1;
                }
                if mentions_test {
                    // Skip any further attributes on the same item.
                    while self.text(j) == "#" && self.text(j + 1) == "[" {
                        let mut d = 1i32;
                        j += 2;
                        while j < n && d > 0 {
                            match self.text(j) {
                                "[" => d += 1,
                                "]" => d -= 1,
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                    // The item body: first `{` balanced to its close, or a
                    // leading-`;` item (e.g. an annotated `use`).
                    let mut end_line = start_line;
                    while j < n {
                        match self.text(j) {
                            ";" => {
                                end_line = self.line(j);
                                break;
                            }
                            "{" => {
                                let mut d = 1i32;
                                j += 1;
                                while j < n && d > 0 {
                                    match self.text(j) {
                                        "{" => d += 1,
                                        "}" => d -= 1,
                                        _ => {}
                                    }
                                    if d == 0 {
                                        end_line = self.line(j);
                                    }
                                    j += 1;
                                }
                                break;
                            }
                            _ => j += 1,
                        }
                    }
                    regions.push((start_line, end_line.max(start_line)));
                    k = j;
                    continue;
                }
                k = j;
                continue;
            }
            k += 1;
        }
        regions
    }
}

/// Parsed suppression directives for one file.
pub struct Suppressions {
    file_rules: BTreeSet<String>,
    line_rules: BTreeMap<u32, BTreeSet<String>>,
    /// D0 findings produced while parsing (unknown rule names, bad syntax).
    pub problems: Vec<(u32, String)>,
}

impl Suppressions {
    /// Scan a file's comment tokens for `bpp-lint:` directives.
    pub fn parse(file: &SourceFile) -> Suppressions {
        let mut s = Suppressions {
            file_rules: BTreeSet::new(),
            line_rules: BTreeMap::new(),
            problems: Vec::new(),
        };
        for tok in &file.tokens {
            // Only plain `//` comments carry directives: doc comments
            // (`///`, `//!`) may quote the grammar without engaging it.
            if tok.kind != TokenKind::LineComment
                || tok.text.starts_with("///")
                || tok.text.starts_with("//!")
            {
                continue;
            }
            let Some(at) = tok.text.find("bpp-lint:") else {
                continue;
            };
            let rest = tok.text[at + "bpp-lint:".len()..].trim_start();
            let (file_wide, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
                (true, r)
            } else if let Some(r) = rest.strip_prefix("allow") {
                (false, r)
            } else {
                s.problems.push((
                    tok.line,
                    "malformed bpp-lint directive: expected `allow(...)` or `allow-file(...)`"
                        .to_string(),
                ));
                continue;
            };
            let rest = rest.trim_start();
            let Some(inner) = rest
                .strip_prefix('(')
                .and_then(|r| r.split_once(')'))
                .map(|(inner, _)| inner)
            else {
                s.problems.push((
                    tok.line,
                    "malformed bpp-lint directive: missing rule list `(D1, ...)`".to_string(),
                ));
                continue;
            };
            for name in inner.split(',').map(str::trim).filter(|n| !n.is_empty()) {
                let known = RULES.iter().any(|(id, _)| *id == name && *id != "D0");
                if !known {
                    s.problems.push((
                        tok.line,
                        format!("unknown rule `{name}` in bpp-lint suppression"),
                    ));
                    continue;
                }
                if file_wide {
                    s.file_rules.insert(name.to_string());
                } else {
                    s.line_rules
                        .entry(tok.line)
                        .or_default()
                        .insert(name.to_string());
                }
            }
        }
        s
    }

    /// Whether a diagnostic of `rule` at `line` is suppressed.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        if self.file_rules.contains(rule) {
            return true;
        }
        // A directive covers its own line and the line directly below.
        [line, line.saturating_sub(1)]
            .iter()
            .any(|l| self.line_rules.get(l).is_some_and(|r| r.contains(rule)))
    }
}

/// Run every rule over one file; returns raw (unsuppressed-unfiltered)
/// diagnostics. The caller applies [`Suppressions`] and sorting.
pub fn check_file(f: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    d1_stream_discipline(f, &mut out);
    d1_registry(f, &mut out);
    d2_nondeterminism(f, &mut out);
    d3_panic_hygiene(f, &mut out);
    d4_float_eq(f, &mut out);
    d5_json_key_drift(f, &mut out);
    d6_forbid_unsafe(f, &mut out);
    out
}

fn diag(f: &SourceFile, line: u32, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: f.rel.clone(),
        line,
        rule,
        message,
    }
}

/// Split the argument list of a call whose `(` sits at code-index `open`.
/// Returns `(code-index ranges of each top-level argument, index past `)`)`.
fn call_args(f: &SourceFile, open: usize) -> (Vec<(usize, usize)>, usize) {
    let mut args = Vec::new();
    let mut depth = 1i32;
    let mut k = open + 1;
    let mut arg_start = k;
    while let Some(tok) = f.t(k) {
        match tok.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    if k > arg_start {
                        args.push((arg_start, k));
                    }
                    return (args, k + 1);
                }
            }
            "," if depth == 1 => {
                args.push((arg_start, k));
                arg_start = k + 1;
            }
            _ => {}
        }
        k += 1;
    }
    (args, k)
}

/// Whether the code tokens in `[a, b)` form a path through a `streams`
/// module (`streams::X`, `simulation::streams::X`, …).
fn is_streams_path(f: &SourceFile, a: usize, b: usize) -> bool {
    (a..b.saturating_sub(2)).any(|k| {
        f.text(k) == "streams" && f.text(k + 1) == "::" && f.kind(k + 2) == Some(TokenKind::Ident)
    })
}

fn arg_text(f: &SourceFile, a: usize, b: usize) -> String {
    let mut s = String::new();
    for k in a..b {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(f.text(k));
    }
    s
}

/// D1 (call sites): outside `crates/sim`, the stream argument of
/// `stream_rng(seed, s)` and `SeedSeq::named(s)` must be a `streams::*`
/// constant — never a magic literal or free variable.
fn d1_stream_discipline(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.scope.crate_name.as_deref() == Some("sim") {
        return; // the discipline's own home defines and tests raw streams
    }
    for k in 0..f.code.len() {
        let (arg, line) = if f.text(k) == "stream_rng" && f.text(k + 1) == "(" {
            let (args, _) = call_args(f, k + 1);
            (args.get(1).copied(), f.line(k))
        } else if f.text(k) == "." && f.text(k + 1) == "named" && f.text(k + 2) == "(" {
            let (args, _) = call_args(f, k + 2);
            (args.first().copied(), f.line(k + 1))
        } else {
            continue;
        };
        let Some((a, b)) = arg else { continue };
        if !is_streams_path(f, a, b) {
            out.push(diag(
                f,
                line,
                "D1",
                format!(
                    "RNG stream argument `{}` must be a `streams::*` registry constant",
                    arg_text(f, a, b)
                ),
            ));
        }
    }
}

/// D1 (registry): `crates/core/src/simulation.rs` holds the single source
/// of truth — a `streams` module whose `const` ids are unique and each
/// carry a doc comment naming the owner.
fn d1_registry(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if f.rel != "crates/core/src/simulation.rs" {
        return;
    }
    // Locate `mod streams {` in the full stream (docs matter here).
    let mut open = None;
    for i in 0..f.tokens.len().saturating_sub(2) {
        if f.tokens[i].text == "mod"
            && f.tokens[i + 1].text == "streams"
            && f.tokens[i + 2].text == "{"
        {
            open = Some(i + 2);
            break;
        }
    }
    let Some(open) = open else {
        out.push(diag(
            f,
            1,
            "D1",
            "RNG stream registry `mod streams` not found in crates/core/src/simulation.rs"
                .to_string(),
        ));
        return;
    };
    let mut depth = 1i32;
    let mut i = open + 1;
    let mut seen: BTreeMap<u64, String> = BTreeMap::new();
    while i < f.tokens.len() && depth > 0 {
        match f.tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => depth -= 1,
            "const" if depth == 1 => {
                let name = f
                    .tokens
                    .get(i + 1)
                    .map(|t| t.text.clone())
                    .unwrap_or_default();
                let line = f.tokens[i].line;
                // Preceding non-attribute token must be a doc comment.
                let documented = f.tokens[..i]
                    .iter()
                    .rev()
                    .find(|t| !matches!(t.text.as_str(), "pub"))
                    .is_some_and(|t| t.kind == TokenKind::LineComment && t.text.starts_with("///"));
                if !documented {
                    out.push(diag(
                        f,
                        line,
                        "D1",
                        format!("stream registry entry `{name}` lacks a /// doc comment naming its owner"),
                    ));
                }
                // Value: `const NAME: u64 = <int>;`
                let val = f.tokens[i..]
                    .iter()
                    .take(8)
                    .find(|t| t.kind == TokenKind::Int)
                    .and_then(|t| t.text.replace('_', "").parse::<u64>().ok());
                if let Some(v) = val {
                    if let Some(prev) = seen.insert(v, name.clone()) {
                        out.push(diag(
                            f,
                            line,
                            "D1",
                            format!("stream id {v} assigned to both `{prev}` and `{name}`"),
                        ));
                    }
                } else {
                    out.push(diag(
                        f,
                        line,
                        "D1",
                        format!("stream registry entry `{name}` must be a literal u64 id"),
                    ));
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// D2: wall clocks (`Instant`, `SystemTime`), thread `spawn`, and
/// iteration over `HashMap`/`HashSet` bindings are banned in library code
/// of sim-affecting crates. Map bindings are tracked by name within the
/// file (`x: HashMap<…>` or `let x = HashMap::new()`), a deliberately
/// simple file-local heuristic.
fn d2_nondeterminism(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.scope.sim_affecting() || !f.scope.library {
        return;
    }
    // Pass 1: names bound to HashMap/HashSet.
    let mut maps: BTreeSet<String> = BTreeSet::new();
    for k in 0..f.code.len() {
        let is_map = |t: &str| t == "HashMap" || t == "HashSet";
        // `name: [path::]HashMap<…>`
        if f.text(k) == ":" && f.kind(k.wrapping_sub(1)) == Some(TokenKind::Ident) && k >= 1 {
            let mut j = k + 1;
            while f.kind(j) == Some(TokenKind::Ident) && f.text(j + 1) == "::" {
                j += 2;
            }
            if f.kind(j) == Some(TokenKind::Ident) && is_map(f.text(j)) {
                maps.insert(f.text(k - 1).to_string());
            }
        }
        // `let [mut] name = [path::]HashMap::new()`
        if f.text(k) == "let" {
            let name_at = if f.text(k + 1) == "mut" { k + 2 } else { k + 1 };
            if f.kind(name_at) == Some(TokenKind::Ident) && f.text(name_at + 1) == "=" {
                let mut j = name_at + 2;
                let mut saw_map = false;
                while f.kind(j) == Some(TokenKind::Ident) && f.text(j + 1) == "::" {
                    saw_map |= is_map(f.text(j));
                    j += 2;
                }
                if saw_map {
                    maps.insert(f.text(name_at).to_string());
                }
            }
        }
    }
    // Pass 2: violations.
    for k in 0..f.code.len() {
        let t = f.text(k);
        let line = f.line(k);
        if f.kind(k) != Some(TokenKind::Ident) {
            continue;
        }
        match t {
            "Instant" | "SystemTime" => out.push(diag(
                f,
                line,
                "D2",
                format!(
                    "`{t}` (wall clock) is forbidden in sim-affecting crates — simulated time only"
                ),
            )),
            "spawn" => out.push(diag(
                f,
                line,
                "D2",
                "thread spawn in a sim-affecting crate — simulation must stay single-threaded \
                 (deterministic fan-out wrappers may be allow-listed)"
                    .to_string(),
            )),
            _ => {
                if maps.contains(t) && f.text(k + 1) == "." && ITER_METHODS.contains(&f.text(k + 2))
                {
                    out.push(diag(
                        f,
                        line,
                        "D2",
                        format!(
                            "iteration over hash-based `{t}` is nondeterministic — use BTreeMap/BTreeSet or sort first",
                        ),
                    ));
                }
                if t == "for" {
                    // `for pat in expr {` — flag a map name inside expr.
                    let mut j = k + 1;
                    let mut in_at = None;
                    while j < f.code.len() && f.text(j) != "{" && f.text(j) != ";" {
                        if f.text(j) == "in" {
                            in_at = Some(j);
                        } else if in_at.is_some()
                            && f.kind(j) == Some(TokenKind::Ident)
                            && maps.contains(f.text(j))
                            && f.text(j + 1) != "."
                        {
                            out.push(diag(
                                f,
                                f.line(j),
                                "D2",
                                format!(
                                    "`for … in` over hash-based `{}` is nondeterministic — use BTreeMap/BTreeSet or sort first",
                                    f.text(j)
                                ),
                            ));
                        }
                        j += 1;
                    }
                }
            }
        }
    }
}

/// D3: `unwrap()`, `expect(…)` and `panic!(…)` are banned in non-test
/// library code. Invariant-backed sites keep `expect` with a message and an
/// `allow(D3)` justification; everything else returns `Result`.
fn d3_panic_hygiene(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.scope.library {
        return;
    }
    for k in 0..f.code.len() {
        let line = f.line(k);
        if f.in_test(line) {
            continue;
        }
        if f.text(k) == "." && f.text(k + 2) == "(" {
            let m = f.text(k + 1);
            if m == "unwrap" || m == "expect" {
                out.push(diag(
                    f,
                    f.line(k + 1),
                    "D3",
                    format!(
                        "`.{m}(…)` in library code — return a Result, or justify with an allow(D3) comment"
                    ),
                ));
            }
        }
        if f.text(k) == "panic" && f.text(k + 1) == "!" && f.text(k + 2) == "(" {
            out.push(diag(
                f,
                line,
                "D3",
                "`panic!` in library code — return a Result, or justify with an allow(D3) comment"
                    .to_string(),
            ));
        }
    }
}

/// D4: `==`/`!=` with a float operand in non-test library code. The
/// heuristic flags comparisons where an adjacent operand token is a float
/// literal or an `f32::`/`f64::` associated constant; route these through
/// `bpp_sim::approx` instead.
fn d4_float_eq(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.scope.library {
        return;
    }
    for k in 0..f.code.len() {
        let t = f.text(k);
        if t != "==" && t != "!=" {
            continue;
        }
        let line = f.line(k);
        if f.in_test(line) {
            continue;
        }
        let next_float = f.kind(k + 1) == Some(TokenKind::Float)
            || ((f.text(k + 1) == "f64" || f.text(k + 1) == "f32") && f.text(k + 2) == "::");
        let prev_float = k >= 1 && f.kind(k - 1) == Some(TokenKind::Float)
            || (k >= 3
                && (f.text(k - 3) == "f64" || f.text(k - 3) == "f32")
                && f.text(k - 2) == "::");
        if next_float || prev_float {
            out.push(diag(
                f,
                line,
                "D4",
                format!(
                    "float `{t}` comparison — use bpp_sim::approx (exactly/exactly_zero/approx_eq) instead"
                ),
            ));
        }
    }
}

/// D5: within one file, an `impl ToJson for T` and an `impl FromJson for T`
/// must use the same set of serialized keys, catching one-sided renames.
///
/// Key positions, not all string literals, are compared (error messages
/// and enum variant names must not count): on the `to_json` side a key is
/// a string preceded by `(` and followed by `,` or `.` (the
/// `("key", value)` / `("key".to_string(), value)` tuple conventions); on
/// the `from_json` side it is a string between `,` and `)` (the
/// `field(v, "key")` / `opt_field(v, "key")` accessor convention).
fn d5_json_key_drift(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    // (type name) -> (to_json keys, from_json keys, line of second impl)
    let mut to_keys: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut from_keys: BTreeMap<String, (BTreeSet<String>, u32)> = BTreeMap::new();
    for k in 0..f.code.len() {
        let trait_name = f.text(k);
        if trait_name != "ToJson" && trait_name != "FromJson" {
            continue;
        }
        // Walk back over a path prefix (`bpp_json::`) to find `impl`.
        let mut b = k;
        while b >= 2 && f.text(b - 1) == "::" {
            b -= 2;
        }
        if b == 0 || f.text(b - 1) != "impl" {
            continue;
        }
        if f.text(k + 1) != "for" {
            continue;
        }
        // Type name: last ident before the opening `{`.
        let mut j = k + 2;
        let mut ty = String::new();
        while j < f.code.len() && f.text(j) != "{" {
            if f.kind(j) == Some(TokenKind::Ident) {
                ty = f.text(j).to_string();
            }
            j += 1;
        }
        if ty.is_empty() || j >= f.code.len() {
            continue;
        }
        let impl_line = f.line(k);
        // Collect string literals inside the impl block.
        let mut depth = 1i32;
        let mut keys = BTreeSet::new();
        let mut m = j + 1;
        while m < f.code.len() && depth > 0 {
            match f.text(m) {
                "{" => depth += 1,
                "}" => depth -= 1,
                _ => {
                    if matches!(f.kind(m), Some(TokenKind::Str)) {
                        let key_position = if trait_name == "ToJson" {
                            m >= 1
                                && f.text(m - 1) == "("
                                && (f.text(m + 1) == "," || f.text(m + 1) == ".")
                        } else {
                            m >= 1 && f.text(m - 1) == "," && f.text(m + 1) == ")"
                        };
                        if key_position {
                            let raw = f.text(m);
                            keys.insert(raw.trim_matches('"').to_string());
                        }
                    }
                }
            }
            m += 1;
        }
        if trait_name == "ToJson" {
            to_keys.entry(ty).or_default().extend(keys);
        } else {
            let e = from_keys
                .entry(ty)
                .or_insert_with(|| (BTreeSet::new(), impl_line));
            e.0.extend(keys);
        }
    }
    for (ty, (fk, line)) in &from_keys {
        let Some(tk) = to_keys.get(ty) else { continue };
        let only_to: Vec<&String> = tk.difference(fk).collect();
        let only_from: Vec<&String> = fk.difference(tk).collect();
        if !only_to.is_empty() || !only_from.is_empty() {
            out.push(diag(
                f,
                *line,
                "D5",
                format!(
                    "JSON key drift for `{ty}`: to_json-only {only_to:?}, from_json-only {only_from:?}"
                ),
            ));
        }
    }
}

/// D6: each crate's `lib.rs` must carry `#![forbid(unsafe_code)]` so the
/// guarantee survives even outside workspace-lint builds.
fn d6_forbid_unsafe(f: &SourceFile, out: &mut Vec<Diagnostic>) {
    if !f.scope.lib_rs {
        return;
    }
    let found = (0..f.code.len()).any(|k| {
        f.text(k) == "#"
            && f.text(k + 1) == "!"
            && f.text(k + 2) == "["
            && f.text(k + 3) == "forbid"
            && f.text(k + 4) == "("
            && f.text(k + 5) == "unsafe_code"
    });
    if !found {
        out.push(diag(
            f,
            1,
            "D6",
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        ));
    }
}
