//! Per-function control-flow graphs over the expression IR.
//!
//! The dataflow rules need path-sensitive facts ("did *this* path to the
//! return increment a ledger bucket?"), so statement-level control flow
//! — `if`/`match`/`while`/`loop`/`for`, `return`/`break`/`continue` —
//! is lowered into basic blocks with explicit successor edges. Control
//! flow *nested inside* an expression (an `if` in an argument position)
//! stays inside its statement; the rules' transfer functions walk those
//! sub-trees locally.
//!
//! Lowering normalizes value-producing control flow into straight-line
//! statements the transfer functions can interpret uniformly:
//!
//! * `let x = if c { a } else { b };` becomes a per-branch synthetic
//!   `let x = a;` / `let x = b;` (same for `match` inits);
//! * pattern bindings (`if let`, match arms, `for` loops) become
//!   synthetic init-less `let` statements at the head of their branch, so
//!   shadowing resets a name's inferred state;
//! * a function body's tail expression becomes a synthetic
//!   `return <tail>;`, so every exit from the function is a `Return`
//!   statement in some block.
//!
//! Every CFG has one `entry` and one synthetic `exit` block; `return`
//! edges to `exit`, `break`/`continue` edge to the innermost loop's
//! exit/head. Blocks after a diverging statement exist but are
//! unreachable (no predecessors) — the dataflow driver simply never
//! reaches them.

use crate::expr::{ExprArena, ExprId, ExprKind};

/// One basic block: straight-line statements plus successor block ids.
#[derive(Debug, Clone, Default)]
pub struct CfgBlock {
    /// Statements in execution order (expression ids into the arena).
    pub stmts: Vec<ExprId>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// A function body's control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All blocks; indices are stable ids.
    pub blocks: Vec<CfgBlock>,
    /// Index of the entry block.
    pub entry: usize,
    /// Index of the synthetic exit block (always empty).
    pub exit: usize,
}

/// What to do with a block's tail value when lowering it.
#[derive(Debug, Clone)]
enum Sink {
    /// Wrap the tail in a synthetic `Return` (function body).
    Return,
    /// Bind the tail to these names with a synthetic `Let`.
    Bind(Vec<String>),
    /// The value is discarded; the tail is an ordinary statement.
    Drop,
}

/// Lower `body` (a `Block` expression) into a CFG. Synthetic nodes are
/// allocated into `arena`.
pub fn build_cfg(arena: &mut ExprArena, body: ExprId) -> Cfg {
    let mut b = Builder {
        arena,
        blocks: vec![CfgBlock::default(), CfgBlock::default()],
        exit: 1,
        loops: Vec::new(),
    };
    let end = b.lower_stmt(0, body, Sink::Return);
    b.edge(end, 1);
    Cfg {
        blocks: b.blocks,
        entry: 0,
        exit: 1,
    }
}

struct Builder<'a> {
    arena: &'a mut ExprArena,
    blocks: Vec<CfgBlock>,
    exit: usize,
    /// Innermost-last stack of (continue-target, break-target).
    loops: Vec<(usize, usize)>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(CfgBlock::default());
        self.blocks.len() - 1
    }

    fn push(&mut self, block: usize, stmt: ExprId) {
        self.blocks[block].stmts.push(stmt);
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    /// Synthesize an init-less `let` rebinding `names` (pattern binding).
    fn rebind(&mut self, block: usize, names: &[String], line: u32, span: (usize, usize)) {
        if names.is_empty() {
            return;
        }
        let stmt = self.arena.alloc(
            ExprKind::Let {
                names: names.to_vec(),
                init: None,
                else_block: None,
            },
            line,
            span,
        );
        self.push(block, stmt);
    }

    /// Lower the statements of `block_expr` into `cur`; returns the block
    /// control continues in.
    fn lower_block(&mut self, mut cur: usize, block_expr: ExprId, sink: Sink) -> usize {
        let (stmts, tail) = match &self.arena.get(block_expr).kind {
            ExprKind::Block { stmts, tail } => (stmts.clone(), *tail),
            // Non-block bodies (malformed input): treat as a lone tail.
            _ => (Vec::new(), Some(block_expr)),
        };
        for s in stmts {
            cur = self.lower_stmt(cur, s, Sink::Drop);
        }
        match tail {
            Some(t) => self.lower_stmt(cur, t, sink),
            None => {
                if let Sink::Bind(names) = &sink {
                    let e = self.arena.get(block_expr);
                    let (line, span) = (e.line, e.span);
                    self.rebind(cur, &names.clone(), line, span);
                }
                cur
            }
        }
    }

    /// Lower one statement (or tail value) into `cur`; returns the block
    /// control continues in.
    fn lower_stmt(&mut self, cur: usize, stmt: ExprId, sink: Sink) -> usize {
        let node = self.arena.get(stmt);
        let (line, span) = (node.line, node.span);
        let kind = node.kind.clone();
        match kind {
            ExprKind::Let {
                names,
                init: Some(init),
                else_block,
            } => {
                if let Some(else_b) = else_block {
                    // let-else: the binding happens here; the else block
                    // diverges (it must return/break/continue or panic).
                    self.push(cur, stmt);
                    let eb = self.new_block();
                    self.edge(cur, eb);
                    let e_end = self.lower_block(eb, else_b, Sink::Drop);
                    let exit = self.exit;
                    self.edge(e_end, exit);
                    return cur;
                }
                match self.arena.get(init).kind {
                    ExprKind::If { .. } | ExprKind::Match { .. } | ExprKind::Block { .. } => {
                        self.lower_stmt(cur, init, Sink::Bind(names))
                    }
                    _ => {
                        self.push(cur, stmt);
                        cur
                    }
                }
            }
            ExprKind::Let { init: None, .. } => {
                self.push(cur, stmt);
                cur
            }
            ExprKind::If {
                cond,
                bound,
                then_blk,
                else_blk,
            } => {
                self.push(cur, cond);
                let join = self.new_block();
                let then_b = self.new_block();
                self.edge(cur, then_b);
                self.rebind(then_b, &bound, line, span);
                let t_end = self.lower_block(then_b, then_blk, sink.clone());
                self.edge(t_end, join);
                match else_blk {
                    Some(e) => {
                        let else_b = self.new_block();
                        self.edge(cur, else_b);
                        let e_end = self.lower_stmt(else_b, e, sink);
                        self.edge(e_end, join);
                    }
                    None => self.edge(cur, join),
                }
                join
            }
            ExprKind::Match { scrutinee, arms } => {
                self.push(cur, scrutinee);
                let join = self.new_block();
                if arms.is_empty() {
                    self.edge(cur, join);
                }
                for arm in arms {
                    let arm_b = self.new_block();
                    self.edge(cur, arm_b);
                    self.rebind(arm_b, &arm.bound, line, span);
                    let a_end = self.lower_stmt(arm_b, arm.body, sink.clone());
                    self.edge(a_end, join);
                }
                join
            }
            ExprKind::While { cond, bound, body } => {
                let head = self.new_block();
                self.edge(cur, head);
                self.push(head, cond);
                let body_b = self.new_block();
                let exit_b = self.new_block();
                self.edge(head, body_b);
                self.edge(head, exit_b);
                self.rebind(body_b, &bound, line, span);
                self.loops.push((head, exit_b));
                let b_end = self.lower_block(body_b, body, Sink::Drop);
                self.loops.pop();
                self.edge(b_end, head);
                if let Sink::Bind(names) = sink {
                    self.rebind(exit_b, &names, line, span);
                }
                exit_b
            }
            ExprKind::Loop { body } => {
                let head = self.new_block();
                self.edge(cur, head);
                let exit_b = self.new_block();
                self.loops.push((head, exit_b));
                let b_end = self.lower_block(head, body, Sink::Drop);
                self.loops.pop();
                self.edge(b_end, head);
                if let Sink::Bind(names) = sink {
                    self.rebind(exit_b, &names, line, span);
                }
                exit_b
            }
            ExprKind::For { bound, iter, body } => {
                self.push(cur, iter);
                let head = self.new_block();
                self.edge(cur, head);
                let body_b = self.new_block();
                let exit_b = self.new_block();
                self.edge(head, body_b);
                self.edge(head, exit_b);
                self.rebind(body_b, &bound, line, span);
                self.loops.push((head, exit_b));
                let b_end = self.lower_block(body_b, body, Sink::Drop);
                self.loops.pop();
                self.edge(b_end, head);
                if let Sink::Bind(names) = sink {
                    self.rebind(exit_b, &names, line, span);
                }
                exit_b
            }
            ExprKind::Return(_) => {
                self.push(cur, stmt);
                let exit = self.exit;
                self.edge(cur, exit);
                self.new_block() // unreachable continuation
            }
            ExprKind::Break(value) => {
                if let Some(v) = value {
                    self.push(cur, v);
                }
                let target = self.loops.last().map_or(self.exit, |&(_, brk)| brk);
                self.edge(cur, target);
                self.new_block()
            }
            ExprKind::Continue => {
                let target = self.loops.last().map_or(self.exit, |&(head, _)| head);
                self.edge(cur, target);
                self.new_block()
            }
            ExprKind::Block { .. } => self.lower_block(cur, stmt, sink),
            _ => match sink {
                Sink::Return => {
                    let ret = self.arena.alloc(ExprKind::Return(Some(stmt)), line, span);
                    self.push(cur, ret);
                    let exit = self.exit;
                    self.edge(cur, exit);
                    self.new_block()
                }
                Sink::Bind(names) => {
                    let let_stmt = self.arena.alloc(
                        ExprKind::Let {
                            names,
                            init: Some(stmt),
                            else_block: None,
                        },
                        line,
                        span,
                    );
                    self.push(cur, let_stmt);
                    cur
                }
                Sink::Drop => {
                    self.push(cur, stmt);
                    cur
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse_body;
    use crate::lexer::lex;
    use crate::parse::parse_file;
    use crate::rules::SourceFile;

    fn cfg_of(src: &str) -> (ExprArena, Cfg) {
        let f = SourceFile::new(
            "crates/core/src/x.rs".to_string(),
            lex(src).expect("test source must lex"),
        );
        let items = parse_file(&f);
        let (lo, hi) = items.fns[0].body.expect("fn must have a body");
        let mut arena = ExprArena::default();
        let root = parse_body(&f, &mut arena, lo, hi);
        let cfg = build_cfg(&mut arena, root);
        (arena, cfg)
    }

    /// Blocks reachable from entry.
    fn reachable(cfg: &Cfg) -> Vec<usize> {
        let mut seen = vec![false; cfg.blocks.len()];
        let mut work = vec![cfg.entry];
        while let Some(b) = work.pop() {
            if seen[b] {
                continue;
            }
            seen[b] = true;
            work.extend(cfg.blocks[b].succs.iter().copied());
        }
        (0..cfg.blocks.len()).filter(|&i| seen[i]).collect()
    }

    #[test]
    fn straight_line_tail_becomes_return() {
        let (arena, cfg) = cfg_of("fn f() -> u64 { let x = 1; x }");
        // Entry holds the let plus a synthetic return, then edges to exit.
        let entry = &cfg.blocks[cfg.entry];
        assert_eq!(entry.stmts.len(), 2);
        assert!(matches!(
            arena.get(entry.stmts[1]).kind,
            ExprKind::Return(Some(_))
        ));
        assert_eq!(entry.succs, vec![cfg.exit]);
    }

    #[test]
    fn if_else_diamond() {
        let (_, cfg) = cfg_of("fn f(c: bool) { if c { a(); } else { b(); } d(); }");
        // entry → then/else → join; join reaches exit.
        let entry = &cfg.blocks[cfg.entry];
        assert_eq!(entry.succs.len(), 2);
        let join: Vec<usize> = cfg.blocks[entry.succs[0]].succs.clone();
        assert_eq!(join, cfg.blocks[entry.succs[1]].succs);
        assert!(reachable(&cfg).contains(&cfg.exit));
    }

    #[test]
    fn early_return_leaves_dead_continuation() {
        let (arena, cfg) = cfg_of("fn f(c: bool) -> u64 { if c { return 1; } 2 }");
        // The then-branch returns; its continuation block is unreachable
        // but the join (holding the tail return of 2) is reachable.
        let live = reachable(&cfg);
        assert!(live.contains(&cfg.exit));
        let returns: usize = live
            .iter()
            .flat_map(|&b| cfg.blocks[b].stmts.iter())
            .filter(|&&s| matches!(arena.get(s).kind, ExprKind::Return(_)))
            .count();
        assert_eq!(returns, 2, "explicit return + synthetic tail return");
    }

    #[test]
    fn let_if_init_binds_in_both_branches() {
        let (arena, cfg) = cfg_of("fn f(c: bool) { let x = if c { 1 } else { 2 }; use_it(x); }");
        // Each branch must contain a synthetic `let x = …`.
        let lets: Vec<Vec<String>> = (0..cfg.blocks.len())
            .flat_map(|b| cfg.blocks[b].stmts.iter())
            .filter_map(|&s| match &arena.get(s).kind {
                ExprKind::Let {
                    names,
                    init: Some(_),
                    ..
                } => Some(names.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(lets.len(), 2);
        assert!(lets.iter().all(|n| n == &["x".to_string()]));
    }

    #[test]
    fn while_loop_back_edge_and_break() {
        let (_, cfg) = cfg_of("fn f() { while go() { if stop() { break; } step(); } done(); }");
        // Some block must edge back to the loop head (the cond block),
        // and the break must edge to the loop's exit block.
        let mut has_back_edge = false;
        for (i, b) in cfg.blocks.iter().enumerate() {
            for &s in &b.succs {
                if s <= i && s != cfg.exit {
                    has_back_edge = true;
                }
            }
        }
        assert!(has_back_edge, "loop must produce a back edge");
        assert!(reachable(&cfg).contains(&cfg.exit));
    }

    #[test]
    fn match_fans_out_and_rejoins() {
        let (arena, cfg) =
            cfg_of("fn f(x: O) -> u64 { match x { O::A(v) => v, O::B => 0, _ => 1 } }");
        // Scrutinee block fans out to three arm blocks.
        let fan = cfg.blocks.iter().map(|b| b.succs.len()).max().unwrap_or(0);
        assert_eq!(fan, 3);
        // Arm bodies become synthetic returns (fn tail position).
        let returns: usize = cfg
            .blocks
            .iter()
            .flat_map(|b| b.stmts.iter())
            .filter(|&&s| matches!(arena.get(s).kind, ExprKind::Return(Some(_))))
            .count();
        assert_eq!(returns, 3);
        // The arm binding `v` is rebound in its arm block.
        let rebinds: usize = cfg
            .blocks
            .iter()
            .flat_map(|b| b.stmts.iter())
            .filter(|&&s| matches!(&arena.get(s).kind, ExprKind::Let { init: None, .. }))
            .count();
        assert_eq!(rebinds, 1);
    }
}
