//! `bpp-lint` CLI: lint the workspace (or `--root <path>`) and print a
//! human-readable or `--json` report; `--deny` exits nonzero on findings.

#![forbid(unsafe_code)]

use std::process::ExitCode;

const USAGE: &str = "\
bpp-lint — determinism & hygiene static analysis for the bpp workspace

USAGE:
    bpp-lint [--root <path>] [--json] [--deny] [--fix] [--timing] [--list-rules]

OPTIONS:
    --root <path>   Lint this tree instead of the workspace root; the
                    report's `root` field echoes the given path verbatim.
    --json          Emit the machine-readable JSON report on stdout.
    --deny          Exit with status 1 if any diagnostic survives
                    suppression, or status 3 if the lexer itself failed
                    on any file (the CI gate).
    --fix           Apply machine-applicable suggestions (spanned
                    replaces and header inserts) in place, then re-lint;
                    the report describes the fixed tree and its `fixed`
                    field counts the edits. Idempotent: a second --fix
                    applies zero edits.
    --timing        Add per-rule wall-clock (microseconds) to the report:
                    a `timing` member under --json, `timing <phase>`
                    lines in the human summary. Machine-dependent — never
                    use when regenerating the golden fixture.
    --list-rules    Print the rule registry and exit.
    -h, --help      Show this help.

EXIT CODES:
    0   clean, or report-only mode (no --deny)
    1   --deny and at least one diagnostic survived suppression
    2   usage or I/O error
    3   --deny and an internal lexer/parse failure (takes precedence
        over 1: the lint is broken there, not the code)
";

fn main() -> ExitCode {
    let mut root_arg: Option<String> = None;
    let mut json = false;
    let mut deny = false;
    let mut fix = false;
    let mut timing = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root_arg = Some(p),
                None => {
                    eprintln!("bpp-lint: --root requires a path\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--deny" => deny = true,
            "--fix" => fix = true,
            "--timing" => timing = true,
            "--list-rules" => {
                for (id, summary) in bpp_lint::rules::RULES {
                    println!("{id}  {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("bpp-lint: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let (root, label) = match &root_arg {
        Some(p) => (std::path::PathBuf::from(p), p.clone()),
        None => (bpp_lint::workspace_root(), ".".to_string()),
    };
    let mut report = match bpp_lint::lint_root_opts(&root, &label, timing) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bpp-lint: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if fix {
        let fixed = match bpp_lint::fix::apply_fixes(&root, &report.diagnostics) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("bpp-lint: cannot apply fixes under {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        if fixed > 0 {
            // Re-lint so the report (and any --deny verdict) describes
            // the tree as fixed, not as found.
            report = match bpp_lint::lint_root_opts(&root, &label, timing) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("bpp-lint: cannot re-lint {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
        }
        report.fixed = fixed;
    }
    if json {
        print!("{}", report.to_json_string());
    } else {
        print!("{}", report.render_human());
    }
    if deny {
        if report.internal_errors > 0 {
            return ExitCode::from(3);
        }
        if !report.diagnostics.is_empty() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
