//! The `--fix` applier: rewrite machine-applicable suggestions in place.
//!
//! A [`Suggestion`](crate::rules::Suggestion) is machine-applicable when
//! it is either
//!
//! * a `replace` carrying a byte-column `span` — the exact half-open
//!   range on its line that `text` replaces (D4's approx-eq rewrite,
//!   D11's explicit `(x as _)` conversion), or
//! * an `insert` — `text` becomes a new line above `line` (D6's
//!   `#![forbid(unsafe_code)]` header).
//!
//! Spanless `replace` suggestions are advice for humans and are never
//! applied. Edits are deduplicated, then applied per file bottom-up
//! (lines descending; within a line, replaces right-to-left before
//! inserts) so earlier edits never shift the coordinates of later ones.
//! An edit whose span no longer matches the file (stale line, column past
//! the end, mid-UTF-8 boundary) is skipped, not misapplied.
//!
//! The applier is idempotent by construction: every rewrite removes the
//! pattern its rule fires on, so re-linting the fixed tree yields no
//! suggestion at that site and a second `--fix` applies zero edits — the
//! CI gate checks exactly that.

use crate::rules::Diagnostic;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// One concrete file edit, ordered for bottom-up application: the
/// `Ord` derive sorts by file, then line, then `rank` (replaces before
/// inserts on the same line), then span.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Edit {
    /// Root-relative file path (forward slashes).
    file: String,
    /// 1-based line the edit targets.
    line: u32,
    /// `0` = replace, `1` = insert — replaces on a line must land before
    /// an insert shifts that line down.
    rank: u8,
    /// Half-open 1-based byte-column range for replaces; `None` for
    /// inserts.
    span: Option<(u32, u32)>,
    /// Replacement text / inserted line.
    text: String,
}

/// Extract the machine-applicable edits from surviving diagnostics,
/// deduplicated (several rules may propose the identical rewrite).
fn collect_edits(diagnostics: &[Diagnostic]) -> Vec<Edit> {
    let mut edits: Vec<Edit> = diagnostics
        .iter()
        .filter_map(|d| {
            let s = d.suggestion.as_ref()?;
            match (s.kind, s.span) {
                ("replace", Some(span)) => Some(Edit {
                    file: d.file.clone(),
                    line: s.line,
                    rank: 0,
                    span: Some(span),
                    text: s.text.clone(),
                }),
                ("insert", _) => Some(Edit {
                    file: d.file.clone(),
                    line: s.line,
                    rank: 1,
                    span: None,
                    text: s.text.clone(),
                }),
                _ => None,
            }
        })
        .collect();
    edits.sort();
    edits.dedup();
    edits
}

/// Apply one replace to its line. Returns `false` (skip) when the span
/// does not denote a valid byte range of the current line content.
fn apply_replace(line: &mut String, span: (u32, u32), text: &str) -> bool {
    let (a, b) = (span.0 as usize, span.1 as usize);
    if a < 1 || b < a {
        return false;
    }
    let (a, b) = (a - 1, b - 1);
    if b > line.len() || !line.is_char_boundary(a) || !line.is_char_boundary(b) {
        return false;
    }
    line.replace_range(a..b, text);
    true
}

/// Apply every machine-applicable suggestion among `diagnostics` to the
/// tree under `root`. Returns the number of edits applied (skipped stale
/// edits are not counted). Files are rewritten only when changed.
pub fn apply_fixes(root: &Path, diagnostics: &[Diagnostic]) -> io::Result<usize> {
    let mut by_file: BTreeMap<&str, Vec<&Edit>> = BTreeMap::new();
    let edits = collect_edits(diagnostics);
    for e in &edits {
        by_file.entry(e.file.as_str()).or_default().push(e);
    }
    let mut applied = 0usize;
    for (rel, mut edits) in by_file {
        let path = root.join(rel.replace('/', std::path::MAIN_SEPARATOR_STR));
        let src = std::fs::read_to_string(&path)?;
        let mut lines: Vec<String> = src.split('\n').map(String::from).collect();
        // Bottom-up: lines descending; within a line, replaces
        // right-to-left (span descending), then inserts.
        edits.sort_by(|x, y| {
            y.line
                .cmp(&x.line)
                .then(x.rank.cmp(&y.rank))
                .then(y.span.cmp(&x.span))
        });
        let mut changed = false;
        for e in edits {
            let li = (e.line as usize).saturating_sub(1);
            match e.span {
                Some(span) => {
                    if let Some(line) = lines.get_mut(li) {
                        if apply_replace(line, span, &e.text) {
                            applied += 1;
                            changed = true;
                        }
                    }
                }
                None => {
                    if li <= lines.len() {
                        lines.insert(li, e.text.clone());
                        applied += 1;
                        changed = true;
                    }
                }
            }
        }
        if changed {
            std::fs::write(&path, lines.join("\n"))?;
        }
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Diagnostic, Suggestion};

    fn diag_with(
        kind: &'static str,
        line: u32,
        span: Option<(u32, u32)>,
        text: &str,
    ) -> Diagnostic {
        Diagnostic {
            file: "x.rs".to_string(),
            line,
            rule: "D4",
            message: "m".to_string(),
            suggestion: Some(Suggestion {
                line,
                kind,
                text: text.to_string(),
                span,
            }),
        }
    }

    #[test]
    fn spanless_replace_is_not_applicable() {
        let edits = collect_edits(&[diag_with("replace", 3, None, "y")]);
        assert!(edits.is_empty());
    }

    #[test]
    fn identical_edits_deduplicate() {
        let d = diag_with("replace", 3, Some((1, 2)), "y");
        assert_eq!(collect_edits(&[d.clone(), d]).len(), 1);
    }

    #[test]
    fn replace_respects_byte_span() {
        let mut line = "let a == b;".to_string();
        assert!(apply_replace(&mut line, (7, 9), "="));
        assert_eq!(line, "let a = b;");
    }

    #[test]
    fn stale_span_is_skipped() {
        let mut line = "short".to_string();
        assert!(!apply_replace(&mut line, (4, 99), "y"));
        assert_eq!(line, "short");
    }
}
