//! D12 fixtures: request-terminating paths versus ledger buckets.

/// What submitting a request produced.
pub enum SubmitOutcome {
    /// The request joined the queue.
    Enqueued,
    /// The queue was full; the request is gone.
    DroppedFull,
}

/// Carrier for the ledger counters the paths must touch.
pub struct Queue {
    /// Requests that joined the queue.
    enqueued: u64,
    /// Requests dropped because the queue was full.
    dropped_full: u64,
    /// Requests evicted to make room.
    evicted_requests: u64,
}

impl Queue {
    /// D12: the overflow path drops the request without counting it.
    pub fn submit_leaky(&mut self, full: bool) -> SubmitOutcome {
        if full {
            return SubmitOutcome::DroppedFull;
        }
        self.enqueued += 1;
        SubmitOutcome::Enqueued
    }

    /// Clean twin: every terminating path increments its bucket.
    pub fn submit_sound(&mut self, full: bool) -> SubmitOutcome {
        if full {
            self.dropped_full += 1;
            return SubmitOutcome::DroppedFull;
        }
        self.enqueued += 1;
        SubmitOutcome::Enqueued
    }

    /// D12: the eviction path double-counts the terminating request.
    pub fn submit_double(&mut self) -> SubmitOutcome {
        self.evicted_requests += 1;
        self.dropped_full += 1;
        SubmitOutcome::DroppedFull
    }
}
