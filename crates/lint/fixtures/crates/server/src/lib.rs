//! Fixture server component: consumer of a wandering RNG handle (D7).
//! The missing `#![forbid(unsafe_code)]` (D6) is suppressed file-wide via
//! the root `lint_allow.txt`, demonstrating the allowlist path.

pub fn serve_slot(rng: &mut Rng) -> u64 {
    rng.next_u64()
}
