//! D13 fixtures: cold-restart reset coverage.

/// Token bucket with volatile state.
pub struct Gate {
    /// Tokens remaining.
    tokens: f64,
    /// Requests admitted since the run started.
    admitted: u64,
    /// Pending retry queue.
    backlog: Vec<u64>,
}

impl Gate {
    /// Hot path: spends a token, counts the admission, queues the id.
    pub fn admit(&mut self, id: u64) {
        self.tokens = self.tokens - 1.0;
        self.admitted = self.admitted + 1;
        self.backlog.push(id);
    }

    /// D13 twice over: restores `tokens` but forgets `admitted` and
    /// `backlog`.
    pub fn restart_cold(&mut self) {
        self.tokens = 0.0;
    }
}
