#![forbid(unsafe_code)]
//! Fixture workload component: the second consumer the shared handle in
//! `core/src/flows.rs` leaks into (D7).

pub fn draw_page(rng: &mut Rng) -> u64 {
    rng.next_u64()
}
