//! Fixture crate root: stream-discipline violations (D1), suppression
//! directives (good, unknown-rule, and malformed — D0), and a deliberately
//! missing `#![forbid(unsafe_code)]` attribute (D6).

/* A nested /* block comment */ still counts as one comment. */

pub fn disciplined(seed: u64) -> u64 {
    // Follows the discipline: named registry constant, never flagged.
    let _rng = stream_rng(seed, streams::RETRY);
    seed
}

pub fn magic_literals(seed: u64) -> u64 {
    let _rng = stream_rng(seed, 3);
    let _seq = SeedSeq::root(seed).named(9);
    seed
}

pub fn suppressed_demo(v: Option<u32>) -> u32 {
    // bpp-lint: allow(D3): fixture demonstrating a justified suppression
    v.unwrap()
}

// bpp-lint: allow(D99): unknown rule names are themselves reported
// bpp-lint: deny(D1)
pub fn tricky_lexing<'a>(r: &'a str) -> &'a str {
    let _raw = r##"not code: stream_rng(seed, 42) inside a raw string"##;
    let _byte = b'\'';
    let _ch = 'a';
    r
}
