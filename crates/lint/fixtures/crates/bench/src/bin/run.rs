//! Fixture bench entry point: the D10 reachability seed set.

fn main() {
    let rows = fig3_rows();
    write_csv("results/used.csv", rows);
}
