//! Fixture: wall clocks and threads (D2), hash-order iteration (D2),
//! panic hygiene (D3) with a test region that must stay exempt, and float
//! equality (D4).

use std::collections::HashMap;

pub struct ScoreBoard {
    by_page: HashMap<u32, f64>,
}

impl ScoreBoard {
    pub fn total(&self) -> f64 {
        let mut sum = 0.0;
        for (_, v) in self.by_page.iter() {
            sum += v;
        }
        sum
    }
}

pub fn wall_clock_ms() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_millis()
}

pub fn fan_out() {
    std::thread::spawn(|| {});
}

pub fn drain_counts() -> u64 {
    let mut m = HashMap::new();
    m.insert(1u32, 2u64);
    let mut total = 0;
    for (_, v) in m {
        total += v;
    }
    total
}

pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn checked_head(xs: &[u32]) -> u32 {
    *xs.first().expect("non-empty")
}

pub fn boom() {
    panic!("fixture");
}

pub fn is_unit(x: f64) -> bool {
    x == 1.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_inside_tests_is_exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        assert!(super::is_unit(1.0));
    }
}
