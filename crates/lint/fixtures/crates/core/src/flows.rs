//! D7 fixtures: a stream handle shared across components, and a registry
//! stream with two construction sites.

pub fn shared_handle(seed: u64) -> u64 {
    // D7: this handle flows into both the server and workload components.
    let mut rng = stream_rng(seed, streams::MUX);
    let a = serve_slot(&mut rng);
    let b = draw_page(&mut rng);
    a + b
}

pub fn first_site(seed: u64) -> Xoshiro256pp {
    stream_rng(seed, streams::MC)
}

pub fn second_site(seed: u64) -> Xoshiro256pp {
    // D7: streams::MC is already constructed in first_site above.
    stream_rng(seed, streams::MC)
}
