//! D10 fixtures: experiment grids, two of them orphaned.

/// Reached from the bench entry point via `fig3_rows` — never flagged.
pub const TTR_GRID: [u32; 3] = [10, 25, 50];

/// D10: no bench binary can reach this grid anymore.
pub const OLD_TTR_GRID: [u32; 2] = [100, 250];

/// D10: the figure this fed was rewired long ago.
pub const ABANDONED_NOISE_GRID: [f64; 2] = [0.15, 0.35];

pub fn fig3_rows() -> Vec<u32> {
    TTR_GRID.to_vec()
}
