//! D9 fixtures: arithmetic mixing broadcast units, counts, and ratios.

pub fn mixed(wait_bu: f64, hits_count: f64, miss_ratio: f64) -> f64 {
    // D9: adding a count to a duration.
    let total = wait_bu + hits_count;
    // D9: comparing a duration against a ratio.
    if wait_bu < miss_ratio {
        return total;
    }
    // Fine: multiplication legitimately changes units.
    let scaled_bu = wait_bu * miss_ratio;
    // Fine: same unit class on both sides.
    total + scaled_bu
}
