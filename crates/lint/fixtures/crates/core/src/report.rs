//! Fixture: a one-sided JSON key rename — `to_json` writes `beta` while
//! `from_json` reads `gamma` — which rule D5 must report as drift.

pub struct Summary {
    alpha: f64,
    beta: f64,
}

impl ToJson for Summary {
    fn to_json(&self) -> Json {
        Json::object([
            ("alpha", self.alpha.to_json()),
            ("beta", self.beta.to_json()),
        ])
    }
}

impl FromJson for Summary {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Summary {
            alpha: field(v, "alpha")?,
            beta: field(v, "gamma")?,
        })
    }
}
