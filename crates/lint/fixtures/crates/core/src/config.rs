//! D8 fixture: a config struct whose fields drift off the
//! serialization/validation/documentation surfaces.
//!
//! `db_size` is fully covered. `zipf_theta` was dropped from `validate()`.
//! `seed` was added to the struct and `to_json` but forgotten in
//! `from_json` (papered over with `..Default::default()`), never
//! validated, and never documented in the fixture DESIGN.md.

pub struct SystemConfig {
    pub db_size: usize,
    pub zipf_theta: f64,
    pub seed: u64,
}

impl SystemConfig {
    pub fn validate(&self) -> Result<(), String> {
        if self.db_size == 0 {
            return Err("db_size must be positive".to_string());
        }
        Ok(())
    }
}

impl ToJson for SystemConfig {
    fn to_json(&self) -> Json {
        Json::object([
            ("db_size", self.db_size.to_json()),
            ("zipf_theta", self.zipf_theta.to_json()),
            ("seed", self.seed.to_json()),
        ])
    }
}

impl FromJson for SystemConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SystemConfig {
            db_size: field(v, "db_size")?,
            zipf_theta: field(v, "zipf_theta")?,
            ..Default::default()
        })
    }
}
