//! D11 fixtures: unit errors the token-level D9 check provably misses —
//! the class flows through a binding, a call boundary, and a return.

/// The alias launders the suffix: `w` carries broadcast units invisibly.
pub fn cross_statement(wait_bu: f64, retry_count: f64) -> f64 {
    let w = wait_bu;
    // D11: adding a count to a duration through the alias.
    w + retry_count
}

/// Callee declaring a unit-suffixed parameter.
pub fn pace(delay_bu: f64) -> f64 {
    delay_bu
}

/// D11: passes a count where the callee declares broadcast units.
pub fn schedule(retry_count: f64) -> f64 {
    pace(retry_count)
}

/// D11: the name promises broadcast units; the body returns a count.
pub fn backoff_bu(attempts_count: f64) -> f64 {
    attempts_count
}
