//! Fixture registry: one undocumented entry and one duplicated stream id,
//! both of which rule D1's registry check must report.

pub mod streams {
    /// 0 -- server bandwidth MUX coin (documented, unique: never flagged).
    pub const MUX: u64 = 0;
    pub const MC: u64 = 1;
    /// 1 -- duplicates `MC` on purpose.
    pub const VC: u64 = 1;
}
