//! D0 fixture: this file does not lex — the string literal never closes.

fn main() {
    let s = "unterminated;
}
