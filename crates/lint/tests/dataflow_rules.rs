//! Acceptance tests for the expression-level dataflow rules (D11–D13)
//! and the `--fix` applier.
//!
//! The differential test uses the retired token-level D9 check as an
//! oracle: everything D9 could see, D11 must still see (at the same file
//! and line), and the committed cross-statement fixture proves D11 sees
//! strictly more.

use bpp_lint::graph::{Analysis, Workspace};
use bpp_lint::lexer::lex;
use bpp_lint::rules::units::d9_unit_discipline;
use bpp_lint::rules::{ledger, reset, unit_infer, Diagnostic, SourceFile};
use bpp_lint::{fix, lint_root, workspace_root};
use std::path::PathBuf;

fn fixture_analysis(rel: &str) -> Analysis {
    let path = workspace_root()
        .join("crates")
        .join("lint")
        .join("fixtures")
        .join(rel.replace('/', std::path::MAIN_SEPARATOR_STR));
    let src = std::fs::read_to_string(&path).expect("fixture must exist");
    Analysis::new(SourceFile::new(
        rel.to_string(),
        lex(&src).expect("fixture must lex"),
    ))
}

fn d11_over(files: &[Analysis]) -> Vec<Diagnostic> {
    let ws = Workspace::build(files, None, Vec::new(), Vec::new());
    let mut out = Vec::new();
    unit_infer::d11_unit_inference(&ws, &mut out);
    out
}

#[test]
fn d11_supersedes_d9_everything_the_oracle_finds() {
    let files = vec![
        fixture_analysis("crates/core/src/units.rs"),
        fixture_analysis("crates/core/src/units_flow.rs"),
    ];
    let mut d9 = Vec::new();
    for a in &files {
        d9_unit_discipline(&a.file, &mut d9);
    }
    assert!(!d9.is_empty(), "the oracle must find the token-level cases");
    let d11 = d11_over(&files);
    for old in &d9 {
        assert!(
            d11.iter()
                .any(|new| new.file == old.file && new.line == old.line),
            "D11 must cover the D9 finding at {}:{}",
            old.file,
            old.line
        );
    }
}

#[test]
fn d11_flags_the_cross_statement_bug_d9_provably_misses() {
    let files = vec![fixture_analysis("crates/core/src/units_flow.rs")];
    let mut d9 = Vec::new();
    d9_unit_discipline(&files[0].file, &mut d9);
    assert!(
        d9.is_empty(),
        "the token-level check must miss the laundered binding: {d9:?}"
    );
    let d11 = d11_over(&files);
    assert!(
        d11.iter()
            .any(|d| d.line == 8 && d.message.contains("`w` is broadcast-units")),
        "D11 must flag `let w = wait_bu; w + retry_count`: {d11:?}"
    );
}

#[test]
fn d12_flags_leaky_and_double_counting_paths() {
    let files = vec![fixture_analysis("crates/server/src/queue.rs")];
    let ws = Workspace::build(&files, None, Vec::new(), Vec::new());
    let mut out = Vec::new();
    ledger::d12_ledger_coverage(&ws, &mut out);
    assert!(
        out.iter().any(|d| d
            .message
            .contains("returns `DroppedFull` without incrementing")),
        "the uncounted drop must be flagged: {out:?}"
    );
    assert!(
        out.iter()
            .any(|d| d.message.contains("2 terminal ledger buckets")),
        "the double-counted path must be flagged: {out:?}"
    );
    assert_eq!(out.len(), 2, "the sound twin must stay clean: {out:?}");
}

#[test]
fn d13_flags_fields_the_restart_forgets() {
    let files = vec![fixture_analysis("crates/server/src/admission.rs")];
    let ws = Workspace::build(&files, None, Vec::new(), Vec::new());
    let mut out = Vec::new();
    reset::d13_reset_coverage(&ws, &mut out);
    let fields: Vec<&str> = out
        .iter()
        .filter_map(|d| d.message.split('`').nth(1))
        .collect();
    assert_eq!(
        fields,
        ["admitted", "backlog"],
        "exactly the two forgotten fields: {out:?}"
    );
}

/// A hermetic scratch tree for the fix tests (no tempfile dependency).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("bpp-lint-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("crates").join("core").join("src"))
            .expect("scratch tree must be creatable");
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn fix_applies_spanned_replaces_and_inserts_then_reaches_a_fixpoint() {
    let scratch = Scratch::new("fix");
    let root = &scratch.0;
    let lib = root.join("crates").join("core").join("src").join("lib.rs");
    std::fs::write(
        &lib,
        "pub fn mixed(wait_bu: f64, hits_count: f64) -> f64 {\n    wait_bu + hits_count\n}\n",
    )
    .expect("scratch source must write");

    let report = lint_root(root, "scratch").expect("scratch tree must lint");
    let fixed = fix::apply_fixes(root, &report.diagnostics).expect("fixes must apply");
    assert_eq!(
        fixed, 2,
        "one D6 header insert + one D11 cast replace: {:?}",
        report.diagnostics
    );
    let after = std::fs::read_to_string(&lib).expect("fixed source must read");
    assert!(after.starts_with("#![forbid(unsafe_code)]\n"));
    assert!(after.contains("wait_bu + (hits_count as _)"));

    // Idempotence: the fixed tree yields no applicable suggestion.
    let report = lint_root(root, "scratch").expect("fixed tree must lint");
    let again = fix::apply_fixes(root, &report.diagnostics).expect("re-fix must run");
    assert_eq!(again, 0, "second --fix must be a no-op");
    assert_eq!(
        std::fs::read_to_string(&lib).expect("source must read"),
        after,
        "the file must be byte-identical after the no-op pass"
    );
}
