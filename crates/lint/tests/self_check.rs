//! `bpp-lint` must run clean on its own workspace — the same invariant
//! `scripts/ci.sh` gates on with `--deny`.

use bpp_lint::{lint_root, workspace_root};

#[test]
fn workspace_lints_clean() {
    let report = lint_root(&workspace_root(), ".").expect("workspace must be walkable");
    assert!(
        report.diagnostics.is_empty(),
        "bpp-lint found diagnostics in its own workspace:\n{}",
        report.render_human()
    );
    // Sanity: the walk actually visited the workspace (every crate has at
    // least a lib.rs or main.rs, so far more than the crate count).
    assert!(
        report.files > 20,
        "suspiciously few files scanned: {}",
        report.files
    );
    // The tree carries justified suppressions; the count must reflect them.
    assert!(
        report.suppressed > 0,
        "expected at least one suppressed diagnostic in the workspace"
    );
}
