//! In-memory acceptance tests for the cross-file semantic rules: seeding
//! a deliberate violation must produce a diagnostic naming the exact
//! file, line, and rule — the contract the CI gate relies on.

use bpp_lint::graph::{Analysis, Workspace};
use bpp_lint::lexer::lex;
use bpp_lint::rules::{config_surface, dead_artifacts, stream_flow, Diagnostic, SourceFile};

fn analysis(rel: &str, src: &str) -> Analysis {
    Analysis::new(SourceFile::new(
        rel.to_string(),
        lex(src).expect("test source must lex"),
    ))
}

fn ws(files: &[Analysis]) -> Workspace<'_> {
    Workspace::build(files, None, Vec::new(), Vec::new())
}

#[test]
fn seeded_shared_stream_handle_fails_with_file_line_rule() {
    let files = vec![
        analysis(
            "crates/core/src/run.rs",
            "pub fn run(seed: u64) {\n\
             \x20   let mut rng = stream_rng(seed, streams::MUX);\n\
             \x20   decide(&mut rng);\n\
             \x20   draw_think(&mut rng);\n\
             }\n",
        ),
        analysis(
            "crates/server/src/lib.rs",
            "pub fn decide(rng: &mut Rng) -> u64 { rng.next_u64() }\n",
        ),
        analysis(
            "crates/client/src/lib.rs",
            "pub fn draw_think(rng: &mut Rng) -> u64 { rng.next_u64() }\n",
        ),
    ];
    let ws = ws(&files);
    let mut out: Vec<Diagnostic> = Vec::new();
    stream_flow::d7_stream_flow(&ws, &mut out);
    assert_eq!(
        out.len(),
        1,
        "exactly the shared handle is flagged: {out:?}"
    );
    assert_eq!(out[0].file, "crates/core/src/run.rs");
    assert_eq!(out[0].line, 2, "flagged at the handle's birth line");
    assert_eq!(out[0].rule, "D7");
    assert!(out[0].message.contains("client") && out[0].message.contains("server"));
}

#[test]
fn handle_confined_to_one_component_is_clean() {
    let files = vec![
        analysis(
            "crates/core/src/run.rs",
            "pub fn run(seed: u64) {\n\
             \x20   let mut rng = stream_rng(seed, streams::MC);\n\
             \x20   draw_think(&mut rng);\n\
             \x20   draw_think(&mut rng);\n\
             }\n",
        ),
        analysis(
            "crates/client/src/lib.rs",
            "pub fn draw_think(rng: &mut Rng) -> u64 { rng.next_u64() }\n",
        ),
    ];
    let ws = ws(&files);
    let mut out = Vec::new();
    stream_flow::d7_stream_flow(&ws, &mut out);
    assert_eq!(out, vec![], "a single-component flow is the architecture");
}

#[test]
fn flow_is_tracked_through_a_helper_fn() {
    // The handle is laundered through a same-component helper whose own
    // Rng parameter forwards into a foreign component.
    let files = vec![
        analysis(
            "crates/core/src/run.rs",
            "pub fn run(seed: u64) {\n\
             \x20   let mut rng = stream_rng(seed, streams::VC);\n\
             \x20   helper(&mut rng);\n\
             \x20   decide(&mut rng);\n\
             }\n\
             pub fn helper(rng: &mut Rng) { draw_think(rng); }\n",
        ),
        analysis(
            "crates/server/src/lib.rs",
            "pub fn decide(rng: &mut Rng) -> u64 { rng.next_u64() }\n",
        ),
        analysis(
            "crates/client/src/lib.rs",
            "pub fn draw_think(rng: &mut Rng) -> u64 { rng.next_u64() }\n",
        ),
    ];
    let ws = ws(&files);
    let mut out = Vec::new();
    stream_flow::d7_stream_flow(&ws, &mut out);
    assert_eq!(out.len(), 1, "transitive flow must be found: {out:?}");
    assert!(out[0].message.contains("client") && out[0].message.contains("server"));
}

#[test]
fn duplicate_construction_sites_name_the_first_site() {
    let files = vec![analysis(
        "crates/core/src/run.rs",
        "pub fn a(seed: u64) -> R { stream_rng(seed, streams::MC) }\n\
         pub fn b(seed: u64) -> R { stream_rng(seed, streams::MC) }\n",
    )];
    let ws = ws(&files);
    let mut out = Vec::new();
    stream_flow::d7_stream_flow(&ws, &mut out);
    assert_eq!(out.len(), 1);
    assert_eq!((out[0].rule, out[0].line), ("D7", 2));
    assert!(out[0].message.contains("crates/core/src/run.rs:1"));
}

#[test]
fn seeded_field_dropped_from_validate_fails_with_file_line_rule() {
    // `noise` is serialized both ways but no longer validated.
    let files = vec![analysis(
        "crates/core/src/config.rs",
        "pub struct FaultConfig {\n\
         \x20   pub loss: f64,\n\
         \x20   pub noise: f64,\n\
         }\n\
         impl FaultConfig {\n\
         \x20   pub fn validate(&self) -> Result<(), String> {\n\
         \x20       if self.loss < 0.0 { return Err(\"loss\".to_string()); }\n\
         \x20       Ok(())\n\
         \x20   }\n\
         }\n\
         impl ToJson for FaultConfig {\n\
         \x20   fn to_json(&self) -> Json {\n\
         \x20       Json::object([(\"loss\", self.loss.to_json()), (\"noise\", self.noise.to_json())])\n\
         \x20   }\n\
         }\n\
         impl FromJson for FaultConfig {\n\
         \x20   fn from_json(v: &Json) -> Result<Self, JsonError> {\n\
         \x20       Ok(FaultConfig { loss: field(v, \"loss\")?, noise: field(v, \"noise\")? })\n\
         \x20   }\n\
         }\n",
    )];
    let ws = ws(&files);
    let mut out = Vec::new();
    config_surface::d8_config_surface(&ws, &mut out);
    assert_eq!(
        out.len(),
        1,
        "exactly the dropped field is flagged: {out:?}"
    );
    assert_eq!(out[0].file, "crates/core/src/config.rs");
    assert_eq!(out[0].line, 3, "flagged at the field's declaration line");
    assert_eq!(out[0].rule, "D8");
    assert!(out[0].message.contains("`noise`"));
    assert!(out[0].message.contains("validate()"));
}

#[test]
fn string_mention_with_word_boundaries_counts_as_coverage() {
    // `"fault.loss"` covers a field named `loss`; `"loss_x"` would not.
    let files = vec![analysis(
        "crates/core/src/config.rs",
        "pub struct C { pub loss: f64 }\n\
         impl C { pub fn validate(&self) { check(\"fault.loss\"); } }\n\
         impl ToJson for C { fn to_json(&self) -> Json { j(\"loss\") } }\n\
         impl FromJson for C { fn from_json(v: &Json) -> R { f(v, \"loss\") } }\n",
    )];
    let ws = ws(&files);
    let mut out = Vec::new();
    config_surface::d8_config_surface(&ws, &mut out);
    assert_eq!(out, vec![], "dotted-path string mention must count");
}

#[test]
fn struct_without_json_impls_is_out_of_d8_scope() {
    let files = vec![analysis(
        "crates/core/src/state.rs",
        "pub struct Internal { pub scratch: f64 }\n",
    )];
    let ws = ws(&files);
    let mut out = Vec::new();
    config_surface::d8_config_surface(&ws, &mut out);
    assert_eq!(
        out,
        vec![],
        "only serialized config/report types are checked"
    );
}

#[test]
fn unreachable_grid_and_orphan_golden_are_flagged() {
    let files = vec![
        analysis(
            "crates/core/src/experiments.rs",
            "pub const LIVE: [u32; 1] = [1];\n\
             pub const DEAD: [u32; 1] = [2];\n\
             pub fn rows() -> Vec<u32> { LIVE.to_vec() }\n",
        ),
        analysis(
            "crates/bench/src/bin/fig.rs",
            "fn main() { write(\"results/fig.csv\", rows()); }\n",
        ),
    ];
    let ws = Workspace::build(
        &files,
        None,
        vec!["fig.csv".to_string(), "stale.csv".to_string()],
        Vec::new(),
    );
    let mut out = Vec::new();
    dead_artifacts::d10_dead_artifacts(&ws, &mut out);
    assert_eq!(out.len(), 2, "one dead grid, one orphan golden: {out:?}");
    assert_eq!(
        (out[0].file.as_str(), out[0].line, out[0].rule),
        ("crates/core/src/experiments.rs", 2, "D10")
    );
    assert!(out[0].message.contains("`DEAD`"));
    assert_eq!(out[1].file, "results/stale.csv");
    assert!(out[1].message.contains("stale.csv"));
}

#[test]
fn script_reference_keeps_a_golden_alive() {
    let files = vec![analysis("crates/core/src/lib.rs", "pub fn noop() {}\n")];
    let ws = Workspace::build(
        &files,
        None,
        vec!["smoke.json".to_string()],
        vec!["cmp results/smoke.json /tmp/out.json\n".to_string()],
    );
    let mut out = Vec::new();
    dead_artifacts::d10_dead_artifacts(&ws, &mut out);
    assert_eq!(out, vec![], "a scripts/ mention must count as a reference");
}
