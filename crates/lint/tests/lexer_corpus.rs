//! Exact-token-stream corpus for the tricky corners of the Rust lexical
//! grammar: nested block comments, raw strings with hash fences, the
//! char-vs-lifetime ambiguity, floats vs. ranges, raw identifiers, and
//! multi-character operators.

use bpp_lint::lexer::{lex, TokenKind};
use TokenKind::{
    BlockComment, ByteChar, ByteStr, Char, Float, Ident, Int, Lifetime, LineComment, Punct,
    RawByteStr, RawStr, Str,
};

fn toks(src: &str) -> Vec<(TokenKind, String)> {
    lex(src)
        .expect("corpus source must lex")
        .into_iter()
        .map(|t| (t.kind, t.text))
        .collect()
}

fn owned(v: &[(TokenKind, &str)]) -> Vec<(TokenKind, String)> {
    v.iter().map(|&(k, s)| (k, s.to_string())).collect()
}

#[test]
fn nested_block_comment_is_one_token() {
    assert_eq!(
        toks("/* outer /* inner */ tail */ fn"),
        owned(&[
            (BlockComment, "/* outer /* inner */ tail */"),
            (Ident, "fn"),
        ])
    );
}

#[test]
fn raw_string_hash_fences_match_exactly() {
    assert_eq!(
        toks(r####"let s = r##"a "b"# c"##;"####),
        owned(&[
            (Ident, "let"),
            (Ident, "s"),
            (Punct, "="),
            (RawStr, r###"r##"a "b"# c"##"###),
            (Punct, ";"),
        ])
    );
}

#[test]
fn byte_and_raw_byte_strings() {
    assert_eq!(
        toks(r###"b"bytes" br#"raw "b""#"###),
        owned(&[(ByteStr, "b\"bytes\""), (RawByteStr, r##"br#"raw "b""#"##)])
    );
}

#[test]
fn escaped_quote_byte_char() {
    assert_eq!(toks(r"b'\''"), owned(&[(ByteChar, r"b'\''")]));
}

#[test]
fn multibyte_char_literal() {
    // `…` is three UTF-8 bytes; the closing quote sits after all of them.
    assert_eq!(
        toks("s.push('…')"),
        owned(&[
            (Ident, "s"),
            (Punct, "."),
            (Ident, "push"),
            (Punct, "("),
            (Char, "'…'"),
            (Punct, ")"),
        ])
    );
}

#[test]
fn char_versus_lifetime_disambiguation() {
    assert_eq!(
        toks("fn f<'a>(x: &'a str) -> char { 'a' }"),
        owned(&[
            (Ident, "fn"),
            (Ident, "f"),
            (Punct, "<"),
            (Lifetime, "'a"),
            (Punct, ">"),
            (Punct, "("),
            (Ident, "x"),
            (Punct, ":"),
            (Punct, "&"),
            (Lifetime, "'a"),
            (Ident, "str"),
            (Punct, ")"),
            (Punct, "->"),
            (Ident, "char"),
            (Punct, "{"),
            (Char, "'a'"),
            (Punct, "}"),
        ])
    );
}

#[test]
fn static_lifetime_and_unicode_escape_char() {
    assert_eq!(
        toks(r"&'static str; '\u{1F600}'"),
        owned(&[
            (Punct, "&"),
            (Lifetime, "'static"),
            (Ident, "str"),
            (Punct, ";"),
            (Char, r"'\u{1F600}'"),
        ])
    );
}

#[test]
fn floats_versus_ranges_and_method_calls() {
    assert_eq!(
        toks("1.0e-3 1..2 1.max(2) 2.5f32 1. 1e9"),
        owned(&[
            (Float, "1.0e-3"),
            (Int, "1"),
            (Punct, ".."),
            (Int, "2"),
            (Int, "1"),
            (Punct, "."),
            (Ident, "max"),
            (Punct, "("),
            (Int, "2"),
            (Punct, ")"),
            (Float, "2.5f32"),
            (Float, "1."),
            (Float, "1e9"),
        ])
    );
}

#[test]
fn integer_prefixes_suffixes_underscores() {
    assert_eq!(
        toks("0xFF_u8 1_000 0b10_10usize 0o77"),
        owned(&[
            (Int, "0xFF_u8"),
            (Int, "1_000"),
            (Int, "0b10_10usize"),
            (Int, "0o77"),
        ])
    );
}

#[test]
fn raw_identifiers_are_idents() {
    assert_eq!(
        toks("r#fn r#struct normal"),
        owned(&[(Ident, "r#fn"), (Ident, "r#struct"), (Ident, "normal")])
    );
}

#[test]
fn every_multichar_operator_is_one_token() {
    let ops = "<<= >>= ..= ... :: -> => == != <= >= && || << >> .. += -= *= /= %= ^= &= |=";
    let expect: Vec<(TokenKind, String)> = ops
        .split_whitespace()
        .map(|o| (Punct, o.to_string()))
        .collect();
    assert_eq!(toks(ops), expect);
}

#[test]
fn comment_styles_keep_exact_text() {
    assert_eq!(
        toks("/// doc\n//! inner\n// plain"),
        owned(&[
            (LineComment, "/// doc"),
            (LineComment, "//! inner"),
            (LineComment, "// plain"),
        ])
    );
}

#[test]
fn string_contents_never_become_code_tokens() {
    // The lexer must keep call-looking text inside literals as one token.
    assert_eq!(
        toks(r#"let s = "stream_rng(seed, 3).unwrap()";"#),
        owned(&[
            (Ident, "let"),
            (Ident, "s"),
            (Punct, "="),
            (Str, r#""stream_rng(seed, 3).unwrap()""#),
            (Punct, ";"),
        ])
    );
}

#[test]
fn token_lines_are_one_based_and_track_newlines() {
    let tokens = lex("a\n\nb /* x\ny */ c").expect("must lex");
    let lines: Vec<(String, u32)> = tokens.into_iter().map(|t| (t.text, t.line)).collect();
    assert_eq!(
        lines,
        vec![
            ("a".to_string(), 1),
            ("b".to_string(), 3),
            ("/* x\ny */".to_string(), 3),
            ("c".to_string(), 4),
        ]
    );
}

#[test]
fn unterminated_block_comment_is_a_lex_error() {
    let err = lex("/* never closed").expect_err("must fail");
    assert_eq!(err.line, 1);
}

#[test]
fn shebang_line_is_a_comment_token() {
    assert_eq!(
        toks("#!/usr/bin/env rust-script\nfn main() {}"),
        owned(&[
            (LineComment, "#!/usr/bin/env rust-script"),
            (Ident, "fn"),
            (Ident, "main"),
            (Punct, "("),
            (Punct, ")"),
            (Punct, "{"),
            (Punct, "}"),
        ])
    );
}

#[test]
fn inner_attribute_is_not_a_shebang() {
    // `#![…]` at file start must stay code tokens, not be swallowed as a
    // shebang comment.
    assert_eq!(
        toks("#![forbid(unsafe_code)]"),
        owned(&[
            (Punct, "#"),
            (Punct, "!"),
            (Punct, "["),
            (Ident, "forbid"),
            (Punct, "("),
            (Ident, "unsafe_code"),
            (Punct, ")"),
            (Punct, "]"),
        ])
    );
}

#[test]
fn raw_identifiers_mixed_with_raw_strings() {
    // `r#fn` (raw ident), `r"…"` (raw string), `r#"…"#` (fenced raw
    // string) all start with `r` and must disambiguate on what follows.
    assert_eq!(
        toks(r##"r#match r"one" r#"two"# r#loop"##),
        owned(&[
            (Ident, "r#match"),
            (RawStr, r#"r"one""#),
            (RawStr, r##"r#"two"#"##),
            (Ident, "r#loop"),
        ])
    );
}

#[test]
fn inner_block_doc_comment_nests() {
    assert_eq!(
        toks("/*! inner doc /* nested */ still one token */ x"),
        owned(&[
            (
                BlockComment,
                "/*! inner doc /* nested */ still one token */"
            ),
            (Ident, "x"),
        ])
    );
}

#[test]
fn inner_line_doc_comments_keep_exact_text() {
    assert_eq!(
        toks("//! first\n//!\n//! //! quoted nested marker\ncode"),
        owned(&[
            (LineComment, "//! first"),
            (LineComment, "//!"),
            (LineComment, "//! //! quoted nested marker"),
            (Ident, "code"),
        ])
    );
}
