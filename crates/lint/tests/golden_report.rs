//! Golden test: linting the committed violation-fixture tree reproduces
//! `results/lint_fixture.json` byte for byte, and the report is stable
//! across consecutive runs.

use bpp_lint::rules::{RULES, RULE_ALIASES};
use bpp_lint::{lint_root, workspace_root};

#[test]
fn fixture_report_matches_golden_byte_for_byte() {
    let root = workspace_root();
    let fixtures = root.join("crates").join("lint").join("fixtures");
    let golden = std::fs::read_to_string(root.join("results").join("lint_fixture.json"))
        .expect("results/lint_fixture.json must be committed");

    let first = lint_root(&fixtures, "crates/lint/fixtures")
        .expect("fixture tree must lint")
        .to_json_string();
    let second = lint_root(&fixtures, "crates/lint/fixtures")
        .expect("fixture tree must lint")
        .to_json_string();

    assert_eq!(first, second, "lint report must be run-to-run stable");
    assert_eq!(
        first, golden,
        "fixture report drifted from results/lint_fixture.json — \
         regenerate with: cargo run -p bpp-lint -- --root crates/lint/fixtures --json"
    );
}

#[test]
fn fixture_tree_exercises_every_rule() {
    let fixtures = workspace_root()
        .join("crates")
        .join("lint")
        .join("fixtures");
    let report = lint_root(&fixtures, "crates/lint/fixtures").expect("fixture tree must lint");
    for (id, _) in RULES {
        // D9 is an alias: its token-level check is superseded by D11's
        // dataflow analysis and no longer emits under its own id.
        if RULE_ALIASES.iter().any(|(old, _)| *old == id) {
            continue;
        }
        assert!(
            report.diagnostics.iter().any(|d| d.rule == id),
            "no fixture diagnostic exercises rule {id}"
        );
    }
    assert!(
        report.suppressed >= 1,
        "the fixture suppression demo must register as suppressed"
    );
}
