//! Suppression-grammar edge cases: directives on the last line of a file,
//! multi-rule `allow(...)` lists, and allowlist entries naming files that
//! no longer exist.

use bpp_lint::lexer::lex;
use bpp_lint::lint_file;
use bpp_lint::rules::{SourceFile, Suppressions};

fn file(rel: &str, src: &str) -> SourceFile {
    SourceFile::new(rel.to_string(), lex(src).expect("test source must lex"))
}

#[test]
fn directive_on_last_line_of_file_covers_its_own_line() {
    // No trailing newline, no line below the directive: the trailing
    // placement must still suppress the violation on the same line.
    let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() } // bpp-lint: allow(D3): fixture";
    let f = file("crates/core/src/x.rs", src);
    let (diags, suppressed) = lint_file(&f);
    assert_eq!(
        diags,
        vec![],
        "trailing directive on the final line must cover it"
    );
    assert_eq!(suppressed, 1);
}

#[test]
fn one_allow_lists_several_rules() {
    let src = "pub fn f(v: Option<f64>) -> f64 {\n    \
               // bpp-lint: allow(D3, D4): fixture covering two rules at once\n    \
               if v.unwrap() == 1.0 { 1.0 } else { 0.0 }\n}\n";
    let f = file("crates/core/src/x.rs", src);
    let (diags, suppressed) = lint_file(&f);
    assert_eq!(diags, vec![], "both rules in the list must be suppressed");
    assert_eq!(suppressed, 2, "one unwrap (D3) plus one float == (D4)");
}

#[test]
fn multi_rule_list_still_rejects_unknown_names() {
    let src = "// bpp-lint: allow(D3, D42, D4)\npub fn f() {}\n";
    let f = file("crates/core/src/x.rs", src);
    let sup = Suppressions::parse(&f);
    assert_eq!(sup.problems.len(), 1, "D42 is not a registry rule");
    assert!(sup.problems[0].1.contains("D42"));
    // The known names around it still engage.
    assert!(sup.covers("D3", 1));
    assert!(sup.covers("D4", 2));
    assert!(!sup.covers("D5", 1));
}

#[test]
fn d0_cannot_be_suppressed() {
    let src = "// bpp-lint: allow(D0): nice try\npub fn f() {}\n";
    let f = file("crates/core/src/x.rs", src);
    let sup = Suppressions::parse(&f);
    assert!(!sup.covers("D0", 1), "D0 must not be suppressible");
    assert_eq!(sup.problems.len(), 1, "naming D0 is itself a problem");
}

#[test]
fn stale_allowlist_entry_is_a_d0_diagnostic() {
    // Linting the committed fixture tree: its lint_allow.txt carries one
    // valid entry (D6 for the server fixture) and one stale path.
    let fixtures = bpp_lint::workspace_root()
        .join("crates")
        .join("lint")
        .join("fixtures");
    let report = bpp_lint::lint_root(&fixtures, "fixtures").expect("fixture tree must lint");
    let stale: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.file == "lint_allow.txt")
        .collect();
    assert_eq!(stale.len(), 1, "exactly the stale entry is reported");
    assert_eq!(stale[0].rule, "D0");
    assert!(stale[0].message.contains("crates/gone/src/lib.rs"));
    // The valid entry suppresses the server fixture's D6 file-wide.
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.file == "crates/server/src/lib.rs"),
        "allowlisted server fixture must produce no surviving diagnostics"
    );
    assert!(
        report.suppressed >= 2,
        "allowlist suppression must be counted"
    );
}
