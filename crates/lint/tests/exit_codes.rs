//! Exit-code contract of the `bpp-lint` binary: 0 clean/report-only,
//! 1 denied diagnostics, 2 usage/IO errors, 3 internal lexer failure
//! under `--deny` (which takes precedence over 1).

use std::path::Path;
use std::process::Command;

fn run(args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bpp-lint"))
        .args(args)
        .output()
        .expect("bpp-lint binary must run");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn fixtures() -> String {
    bpp_lint::workspace_root()
        .join("crates")
        .join("lint")
        .join("fixtures")
        .display()
        .to_string()
}

#[test]
fn report_only_mode_exits_zero_even_with_findings() {
    // The fixture tree is full of violations (and one unlexable file),
    // but without --deny the exit must stay 0 so report pipelines (the
    // CI golden drift guard) compose.
    let (code, stdout) = run(&["--root", &fixtures()]);
    assert_eq!(code, Some(0));
    assert!(stdout.contains("D7"), "report must include the findings");
}

#[test]
fn deny_with_diagnostics_exits_one() {
    // A fixture subtree with violations but nothing unlexable.
    let root = Path::new(&fixtures()).join("crates").join("client");
    let (code, stdout) = run(&["--root", &root.display().to_string(), "--deny"]);
    assert_eq!(code, Some(1));
    assert!(stdout.contains("D1"));
}

#[test]
fn deny_with_internal_lexer_error_exits_three() {
    let root = Path::new(&fixtures()).join("broken");
    let (code, stdout) = run(&["--root", &root.display().to_string(), "--deny"]);
    assert_eq!(
        code,
        Some(3),
        "an unlexable file means the lint is broken there, not the code"
    );
    assert!(stdout.contains("lexer error"));
}

#[test]
fn internal_error_surfaces_in_json_report() {
    // The machine-readable path must carry the same signal as the exit
    // code: a lexer failure shows up as a nonzero `internal_errors`.
    let root = Path::new(&fixtures()).join("broken");
    let (code, stdout) = run(&["--root", &root.display().to_string(), "--json", "--deny"]);
    assert_eq!(code, Some(3));
    assert!(stdout.contains("\"version\": 3"));
    assert!(stdout.contains("\"internal_errors\": 1"));
    assert!(stdout.contains("lexer error"));
}

#[test]
fn internal_error_takes_precedence_over_denied_diagnostics() {
    // The full fixture tree has both surviving diagnostics and a lexer
    // failure; 3 must win so CI distinguishes lint bugs from code bugs.
    let (code, _) = run(&["--root", &fixtures(), "--deny"]);
    assert_eq!(code, Some(3));
}

#[test]
fn bad_root_exits_two() {
    let (code, _) = run(&["--root", "/nonexistent/nowhere", "--deny"]);
    assert_eq!(code, Some(2));
}

#[test]
fn unknown_flag_exits_two() {
    let (code, _) = run(&["--frobnicate"]);
    assert_eq!(code, Some(2));
}
