//! Property-based tests for the workload generators.

use bpp_workload::{AccessPattern, AliasTable, NoisePermutation, ThinkTime, Zipf};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn zipf_always_normalised(n in 1usize..3000, theta in 0.0f64..2.0) {
        let z = Zipf::new(n, theta);
        let sum: f64 = z.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-8);
    }

    #[test]
    fn zipf_head_mass_monotone(n in 2usize..500, theta in 0.0f64..2.0, k in 1usize..499) {
        let z = Zipf::new(n, theta);
        let k = k.min(n - 1);
        prop_assert!(z.head_mass(k) <= z.head_mass(k + 1) + 1e-12);
    }

    #[test]
    fn alias_samples_in_range(weights in prop::collection::vec(0.0f64..10.0, 1..200), seed in any::<u64>()) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let t = AliasTable::new(&weights);
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            let s = t.sample(&mut rng);
            prop_assert!(s < weights.len());
            // Zero-weight outcomes never appear.
            prop_assert!(weights[s] > 0.0);
        }
    }

    #[test]
    fn noise_permutation_is_bijective(n in 1usize..2000, noise in 0.0f64..1.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = NoisePermutation::new(n, noise, &mut rng);
        let mut seen = vec![false; n];
        for r in 0..n {
            let item = p.item_at_rank(r);
            prop_assert!(!seen[item]);
            seen[item] = true;
            prop_assert_eq!(p.rank_of_item(item), r);
        }
    }

    #[test]
    fn access_pattern_conserves_mass(n in 1usize..1000, noise in 0.0f64..1.0, seed in any::<u64>()) {
        let z = Zipf::new(n, 0.95);
        let mut rng = SmallRng::seed_from_u64(seed);
        let p = AccessPattern::new(&z, NoisePermutation::new(n, noise, &mut rng));
        let sum: f64 = p.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-8);
    }

    #[test]
    fn think_time_nonnegative(mean in 0.001f64..1000.0, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = ThinkTime::Exponential { mean };
        for _ in 0..50 {
            let x = t.sample(&mut rng);
            prop_assert!(x >= 0.0 && x.is_finite());
        }
    }
}
