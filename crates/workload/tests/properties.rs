//! Property tests for the workload generators, driven by deterministic
//! generator loops — case `i` derives its inputs from `stream_rng(SEED, i)`,
//! so failures reproduce from the case index alone.

// bpp-lint: allow-file(D1): property cases derive per-case RNG streams from the case index
use bpp_sim::rng::{stream_rng, Rng};
use bpp_workload::{AccessPattern, AliasTable, NoisePermutation, ThinkTime, Zipf};

const SEED: u64 = 0x5EED_B0DC;
const CASES: u64 = 96;

#[test]
fn zipf_always_normalised() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, case);
        let n = 1 + rng.random_range(0..2999);
        let theta = rng.random::<f64>() * 2.0;
        let z = Zipf::new(n, theta);
        let sum: f64 = z.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "case {case}: sum {sum}");
    }
}

#[test]
fn zipf_head_mass_monotone() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, case);
        let n = 2 + rng.random_range(0..498);
        let theta = rng.random::<f64>() * 2.0;
        let k = (1 + rng.random_range(0..498)).min(n - 1);
        let z = Zipf::new(n, theta);
        assert!(
            z.head_mass(k) <= z.head_mass(k + 1) + 1e-12,
            "case {case}: k={k}"
        );
    }
}

#[test]
fn alias_samples_in_range() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, case);
        let len = 1 + rng.random_range(0..199);
        let weights: Vec<f64> = (0..len).map(|_| rng.random::<f64>() * 10.0).collect();
        if weights.iter().sum::<f64>() <= 0.0 {
            continue; // all-zero draw (essentially impossible, but explicit)
        }
        let t = AliasTable::new(&weights);
        for _ in 0..100 {
            let s = t.sample(&mut rng);
            assert!(s < weights.len(), "case {case}");
            // Zero-weight outcomes never appear.
            assert!(weights[s] > 0.0, "case {case}");
        }
    }
}

#[test]
fn noise_permutation_is_bijective() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, case);
        let n = 1 + rng.random_range(0..1999);
        let noise = rng.random::<f64>();
        let p = NoisePermutation::new(n, noise, &mut rng);
        let mut seen = vec![false; n];
        for r in 0..n {
            let item = p.item_at_rank(r);
            assert!(!seen[item], "case {case}: item {item} mapped twice");
            seen[item] = true;
            assert_eq!(p.rank_of_item(item), r, "case {case}");
        }
    }
}

#[test]
fn access_pattern_conserves_mass() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, case);
        let n = 1 + rng.random_range(0..999);
        let noise = rng.random::<f64>();
        let z = Zipf::new(n, 0.95);
        let p = AccessPattern::new(&z, NoisePermutation::new(n, noise, &mut rng));
        let sum: f64 = p.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "case {case}: sum {sum}");
    }
}

#[test]
fn think_time_nonnegative() {
    for case in 0..CASES {
        let mut rng = stream_rng(SEED, case);
        let mean = 0.001 + rng.random::<f64>() * 999.999;
        let t = ThinkTime::Exponential { mean };
        for _ in 0..50 {
            let x = t.sample(&mut rng);
            assert!(x >= 0.0 && x.is_finite(), "case {case}: sample {x}");
        }
    }
}
