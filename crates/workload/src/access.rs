//! Complete access patterns: a rank distribution composed with a rank→item
//! permutation.
//!
//! The Virtual Client's pattern is `Zipf ∘ identity` — the server builds the
//! broadcast program directly from it. The Measured Client's pattern is
//! `Zipf ∘ NoisePermutation`, diverging from the program as `Noise` grows.

use crate::{AliasTable, NoisePermutation, Zipf};
use bpp_sim::rng::Rng;

/// A sampleable access pattern over items `0..n` with known per-item
/// probabilities (needed by the cost-based cache policies).
#[derive(Debug, Clone)]
pub struct AccessPattern {
    perm: NoisePermutation,
    item_prob: Vec<f64>,
    sampler: AliasTable,
}

impl AccessPattern {
    /// Compose a Zipf rank distribution with a permutation.
    ///
    /// # Panics
    /// If the permutation and distribution sizes differ.
    pub fn new(zipf: &Zipf, perm: NoisePermutation) -> Self {
        assert_eq!(
            zipf.len(),
            perm.len(),
            "distribution and permutation must cover the same items"
        );
        let mut item_prob = vec![0.0f64; zipf.len()];
        for r in 0..zipf.len() {
            item_prob[perm.item_at_rank(r)] = zipf.prob(r);
        }
        let sampler = AliasTable::new(&item_prob);
        AccessPattern {
            perm,
            item_prob,
            sampler,
        }
    }

    /// The identity (population / Virtual Client) pattern.
    pub fn population(zipf: &Zipf) -> Self {
        Self::new(zipf, NoisePermutation::identity(zipf.len()))
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.item_prob.len()
    }

    /// True when there are no items.
    pub fn is_empty(&self) -> bool {
        self.item_prob.is_empty()
    }

    /// Draw one item.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        self.sampler.sample(rng)
    }

    /// Probability of accessing `item` on any given request.
    pub fn prob(&self, item: usize) -> f64 {
        self.item_prob[item]
    }

    /// Per-item probabilities (index = item).
    pub fn probs(&self) -> &[f64] {
        &self.item_prob
    }

    /// The underlying rank→item permutation.
    pub fn permutation(&self) -> &NoisePermutation {
        &self.perm
    }

    /// The `k` most popular items under this pattern, hottest first.
    pub fn top_items(&self, k: usize) -> Vec<usize> {
        (0..k.min(self.len()))
            .map(|r| self.perm.item_at_rank(r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpp_sim::rng::Xoshiro256pp;

    #[test]
    fn population_pattern_matches_zipf_directly() {
        let z = Zipf::new(100, 0.95);
        let p = AccessPattern::population(&z);
        for i in 0..100 {
            assert_eq!(p.prob(i), z.prob(i));
        }
        assert_eq!(p.top_items(3), vec![0, 1, 2]);
    }

    #[test]
    fn permuted_pattern_moves_mass_with_items() {
        let z = Zipf::new(10, 1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let perm = NoisePermutation::new(10, 1.0, &mut rng);
        let p = AccessPattern::new(&z, perm);
        // Hottest item must carry the rank-0 probability wherever it moved.
        let hot = p.top_items(1)[0];
        assert_eq!(p.prob(hot), z.prob(0));
        let sum: f64 = p.probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_frequency_tracks_item_probability() {
        let z = Zipf::new(50, 0.95);
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let perm = NoisePermutation::new(50, 0.35, &mut rng);
        let p = AccessPattern::new(&z, perm);
        let mut counts = vec![0usize; 50];
        let draws = 300_000;
        for _ in 0..draws {
            counts[p.sample(&mut rng)] += 1;
        }
        for (item, &count) in counts.iter().enumerate() {
            let emp = count as f64 / draws as f64;
            assert!(
                (emp - p.prob(item)).abs() < 0.01,
                "item {item}: emp {emp} want {}",
                p.prob(item)
            );
        }
    }

    #[test]
    #[should_panic(expected = "same items")]
    fn size_mismatch_panics() {
        let z = Zipf::new(10, 0.95);
        AccessPattern::new(&z, NoisePermutation::identity(5));
    }
}
