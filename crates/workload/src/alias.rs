//! Walker/Vose alias method: O(n) preprocessing, O(1) sampling from an
//! arbitrary finite discrete distribution.
//!
//! The Virtual Client draws up to `ThinkTimeRatio / MC_ThinkTime` accesses
//! per broadcast unit — at the paper's heaviest load that is 12.5 draws per
//! simulated unit over millions of units, so constant-time sampling matters.

use bpp_sim::rng::Rng;

/// Preprocessed alias table for a discrete distribution over `0..n`.
#[derive(Debug, Clone)]
pub struct AliasTable {
    // For bucket i: with probability `accept[i]` return i, else `alias[i]`.
    accept: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from (not necessarily normalised) non-negative weights.
    ///
    /// # Panics
    /// If `weights` is empty, contains a negative/non-finite value, or sums
    /// to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table supports at most 2^32 - 1 outcomes"
        );
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0");
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");

        let n = weights.len();
        let mut accept = vec![0.0f64; n];
        let mut alias = vec![0u32; n];
        // Scaled probabilities: mean 1.0.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            large.pop();
            accept[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers: both queues drain to probability-1 buckets.
        for i in small.into_iter().chain(large) {
            accept[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        AliasTable { accept, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.accept.len()
    }

    /// True when there are no outcomes (never: construction requires ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.accept.is_empty()
    }

    /// Draw one outcome.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.accept.len());
        if rng.random::<f64>() < self.accept[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpp_sim::rng::Xoshiro256pp;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let t = AliasTable::new(weights);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_target_distribution() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let freq = empirical(&weights, 400_000, 1);
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / 10.0;
            assert!(
                (freq[i] - expect).abs() < 0.01,
                "outcome {i}: got {} want {expect}",
                freq[i]
            );
        }
    }

    #[test]
    fn handles_unnormalised_and_zero_weights() {
        let weights = [0.0, 5.0, 0.0, 5.0];
        let freq = empirical(&weights, 200_000, 2);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
        assert!((freq[1] - 0.5).abs() < 0.01);
    }

    #[test]
    fn single_outcome_always_wins() {
        let t = AliasTable::new(&[3.5]);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zipf_tail_is_sampled() {
        // Even rank 999 of Zipf(0.95, 1000) must occasionally appear.
        let z = crate::Zipf::new(1000, 0.95);
        let t = AliasTable::new(z.probs());
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut saw_tail = false;
        for _ in 0..2_000_000 {
            if t.sample(&mut rng) >= 990 {
                saw_tail = true;
                break;
            }
        }
        assert!(saw_tail, "tail never sampled");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_weights_panic() {
        AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_panic() {
        AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_weight_panics() {
        AliasTable::new(&[1.0, -0.5]);
    }
}
