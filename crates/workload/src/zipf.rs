//! The Zipf popularity distribution.
//!
//! Following \[Knut81\] (as cited by the paper), rank `i ∈ 1..=n` has
//! probability proportional to `(1/i)^θ`. θ = 0 is uniform; θ → 1 is the
//! classic Zipf law. The paper fixes θ = 0.95.

/// A Zipf(θ) distribution over `n` ranks, rank 1 being the hottest.
#[derive(Debug, Clone)]
pub struct Zipf {
    theta: f64,
    probs: Vec<f64>,
}

impl Zipf {
    /// Build the distribution for `n ≥ 1` ranks with skew `θ ≥ 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(theta >= 0.0 && theta.is_finite(), "theta must be >= 0");
        let mut probs: Vec<f64> = (1..=n).map(|i| (i as f64).powf(-theta)).collect();
        let h: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= h;
        }
        Zipf { theta, probs }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when the distribution has exactly one rank.
    pub fn is_empty(&self) -> bool {
        false // n >= 1 is enforced at construction
    }

    /// The skew parameter θ.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Probability of the 0-based rank `r` (rank 0 is the hottest).
    pub fn prob(&self, r: usize) -> f64 {
        self.probs[r]
    }

    /// All rank probabilities, hottest first.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Total probability mass of the `k` hottest ranks.
    pub fn head_mass(&self, k: usize) -> f64 {
        self.probs[..k.min(self.probs.len())].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one() {
        for &(n, theta) in &[(1usize, 0.5), (10, 0.0), (1000, 0.95), (5000, 1.2)] {
            let z = Zipf::new(n, theta);
            let sum: f64 = z.probs().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "n={n} theta={theta} sum={sum}");
        }
    }

    #[test]
    fn probabilities_are_monotone_nonincreasing() {
        let z = Zipf::new(1000, 0.95);
        for w in z.probs().windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = Zipf::new(8, 0.0);
        for r in 0..8 {
            assert!((z.prob(r) - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn paper_configuration_head_mass() {
        // θ=0.95 over 1000 pages: the 100 hottest pages carry roughly
        // two-thirds of the access mass. This pins the distribution the
        // whole evaluation depends on.
        let z = Zipf::new(1000, 0.95);
        let m = z.head_mass(100);
        assert!((0.60..0.70).contains(&m), "head mass {m}");
        assert!((z.head_mass(1000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_follows_power_law() {
        let z = Zipf::new(100, 0.95);
        let expected = 2f64.powf(0.95);
        assert!((z.prob(0) / z.prob(1) - expected).abs() < 1e-9);
    }

    #[test]
    fn head_mass_clamps_at_n() {
        let z = Zipf::new(4, 0.5);
        assert!((z.head_mass(100) - 1.0).abs() < 1e-12);
        assert_eq!(z.head_mass(0), 0.0);
    }
}
