//! The *Noise* perturbation of access patterns.
//!
//! The server builds its broadcast program for the aggregate (Virtual
//! Client) pattern, in which rank `r` maps to item `r`. `Noise` measures how
//! far the Measured Client's own pattern diverges from that: per \[Acha95a\],
//! the MC's rank→item mapping is systematically permuted — with probability
//! `noise`, each rank is swapped with another, uniformly chosen rank.
//!
//! `noise = 0` leaves the identity mapping (MC and VC agree exactly);
//! larger values scramble progressively more of the mapping, so the pages
//! the MC wants are no longer the ones the program favours.

use bpp_sim::approx::exactly_zero;
use bpp_sim::rng::Rng;

/// A rank → item permutation produced by the noise process.
#[derive(Debug, Clone)]
pub struct NoisePermutation {
    forward: Vec<u32>, // rank -> item
    inverse: Vec<u32>, // item -> rank
    noise: f64,
}

impl NoisePermutation {
    /// Identity mapping over `n` items (noise = 0).
    pub fn identity(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        let forward: Vec<u32> = (0..n as u32).collect();
        NoisePermutation {
            inverse: forward.clone(),
            forward,
            noise: 0.0,
        }
    }

    /// Build a noisy mapping over `n` items: each rank is, with probability
    /// `noise`, swapped with a uniformly random rank.
    pub fn new<R: Rng + ?Sized>(n: usize, noise: f64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&noise), "noise must be in [0,1]");
        let mut p = Self::identity(n);
        p.noise = noise;
        if exactly_zero(noise) || n < 2 {
            return p;
        }
        for r in 0..n {
            if rng.random::<f64>() < noise {
                let s = rng.random_range(0..n);
                p.forward.swap(r, s);
            }
        }
        for (rank, &item) in p.forward.iter().enumerate() {
            p.inverse[item as usize] = rank as u32;
        }
        p
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// True when the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// The noise level this permutation was built with.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// The item that holds 0-based popularity rank `r`.
    pub fn item_at_rank(&self, r: usize) -> usize {
        self.forward[r] as usize
    }

    /// The 0-based popularity rank of `item`.
    pub fn rank_of_item(&self, item: usize) -> usize {
        self.inverse[item] as usize
    }

    /// Fraction of ranks mapped away from the identity — a direct measure of
    /// MC/VC disagreement.
    pub fn displacement(&self) -> f64 {
        if self.forward.is_empty() {
            return 0.0;
        }
        let moved = self
            .forward
            .iter()
            .enumerate()
            .filter(|&(r, &item)| r as u32 != item)
            .count();
        moved as f64 / self.forward.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpp_sim::rng::Xoshiro256pp;

    #[test]
    fn identity_maps_rank_to_itself() {
        let p = NoisePermutation::identity(100);
        for r in 0..100 {
            assert_eq!(p.item_at_rank(r), r);
            assert_eq!(p.rank_of_item(r), r);
        }
        assert_eq!(p.displacement(), 0.0);
    }

    #[test]
    fn zero_noise_is_identity() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let p = NoisePermutation::new(50, 0.0, &mut rng);
        assert_eq!(p.displacement(), 0.0);
    }

    #[test]
    fn result_is_a_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        for &noise in &[0.15, 0.35, 1.0] {
            let p = NoisePermutation::new(1000, noise, &mut rng);
            let mut seen = vec![false; 1000];
            for r in 0..1000 {
                let item = p.item_at_rank(r);
                assert!(!seen[item], "item {item} mapped twice");
                seen[item] = true;
            }
        }
    }

    #[test]
    fn inverse_is_consistent() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let p = NoisePermutation::new(500, 0.35, &mut rng);
        for r in 0..500 {
            assert_eq!(p.rank_of_item(p.item_at_rank(r)), r);
        }
    }

    #[test]
    fn displacement_grows_with_noise() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let d15 = NoisePermutation::new(1000, 0.15, &mut rng).displacement();
        let d35 = NoisePermutation::new(1000, 0.35, &mut rng).displacement();
        assert!(d15 > 0.1, "noise 15% moved only {d15}");
        assert!(d35 > d15, "d35={d35} d15={d15}");
    }

    #[test]
    fn tiny_domains_are_safe() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let p1 = NoisePermutation::new(1, 0.5, &mut rng);
        assert_eq!(p1.item_at_rank(0), 0);
        let p2 = NoisePermutation::new(2, 1.0, &mut rng);
        assert_eq!(p2.len(), 2);
    }
}
