//! # bpp-workload — access patterns and think times
//!
//! Workload generation for the push/pull broadcast simulator:
//!
//! * [`Zipf`] — the skewed page-popularity distribution used throughout the
//!   paper (θ = 0.95 over 1000 pages in the base configuration);
//! * [`AliasTable`] — O(1) sampling from any finite discrete distribution
//!   (Walker/Vose alias method), so that drawing millions of Virtual-Client
//!   accesses per run is cheap;
//! * [`NoisePermutation`] — the *Noise* perturbation of \[Acha95a\]: a
//!   controlled divergence between the Measured Client's access pattern and
//!   the population pattern the broadcast program was built for;
//! * [`AccessPattern`] — a rank distribution composed with a rank→item
//!   permutation, yielding per-item probabilities and fast sampling;
//! * [`ThinkTime`] — fixed (Measured Client) and exponential (Virtual
//!   Client) inter-request think times.
//!
//! Items are plain `usize` indexes `0..n`; mapping them onto database page
//! identifiers is the caller's concern (see `bpp-client`).

#![forbid(unsafe_code)]

pub mod access;
pub mod alias;
pub mod noise;
pub mod think;
pub mod zipf;

pub use access::AccessPattern;
pub use alias::AliasTable;
pub use noise::NoisePermutation;
pub use think::ThinkTime;
pub use zipf::Zipf;
