//! Inter-request think times.
//!
//! The Measured Client waits a fixed `MC_ThinkTime` (20 broadcast units in
//! the paper) between the completion of one request and the issue of the
//! next. The Virtual Client — standing in for a whole population — draws its
//! think time from an exponential distribution with mean
//! `MC_ThinkTime / ThinkTimeRatio`, so the aggregate arrival process is
//! Poisson-like with intensity proportional to the modelled population.

use bpp_sim::rng::Rng;

/// A think-time distribution, sampled in broadcast units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThinkTime {
    /// Always exactly this long.
    Fixed(f64),
    /// Exponentially distributed with the given mean.
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
}

impl ThinkTime {
    /// Draw one think time.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ThinkTime::Fixed(t) => t,
            ThinkTime::Exponential { mean } => {
                // Inverse CDF; 1-u avoids ln(0).
                let u: f64 = rng.random();
                -mean * (1.0 - u).ln()
            }
        }
    }

    /// The distribution's mean.
    pub fn mean(&self) -> f64 {
        match *self {
            ThinkTime::Fixed(t) => t,
            ThinkTime::Exponential { mean } => mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bpp_sim::rng::Xoshiro256pp;

    #[test]
    fn fixed_is_constant() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let t = ThinkTime::Fixed(20.0);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 20.0);
        }
        assert_eq!(t.mean(), 20.0);
    }

    #[test]
    fn exponential_mean_matches() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let t = ThinkTime::Exponential { mean: 0.08 };
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| t.sample(&mut rng)).sum();
        let emp = sum / f64::from(n);
        assert!((emp - 0.08).abs() < 0.002, "empirical mean {emp}");
    }

    #[test]
    fn exponential_samples_are_positive_and_finite() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let t = ThinkTime::Exponential { mean: 1.0 };
        for _ in 0..100_000 {
            let x = t.sample(&mut rng);
            assert!(x >= 0.0 && x.is_finite());
        }
    }

    #[test]
    fn exponential_is_memorylessly_skewed() {
        // Median of Exp(mean) is mean*ln2 < mean: check the empirical median.
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let t = ThinkTime::Exponential { mean: 10.0 };
        let mut xs: Vec<f64> = (0..10_001).map(|_| t.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[5000];
        assert!(
            (median - 10.0 * std::f64::consts::LN_2).abs() < 0.4,
            "median {median}"
        );
    }
}
