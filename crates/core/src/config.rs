//! System configuration — Tables 1, 2 and 3 of the paper.

use bpp_json::{field, FromJson, Json, JsonError, ToJson};

/// The three data-delivery algorithms compared in the paper (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Broadcast Disk only; `PullBW = 0`, no backchannel.
    PurePush,
    /// Request/response with snooping; `PullBW = 100%`, no periodic
    /// broadcast.
    PurePull,
    /// Interleaved Push and Pull: periodic broadcast plus pull responses,
    /// split by `pull_bw`, with the client threshold filter.
    Ipp,
}

impl Algorithm {
    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::PurePush => "Push",
            Algorithm::PurePull => "Pull",
            Algorithm::Ipp => "IPP",
        }
    }
}

// Unit enum variants serialize as their name, like derived serde did.
impl ToJson for Algorithm {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Algorithm::PurePush => "PurePush",
                Algorithm::PurePull => "PurePull",
                Algorithm::Ipp => "Ipp",
            }
            .to_string(),
        )
    }
}

impl FromJson for Algorithm {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("PurePush") => Ok(Algorithm::PurePush),
            Some("PurePull") => Ok(Algorithm::PurePull),
            Some("Ipp") => Ok(Algorithm::Ipp),
            _ => Err(JsonError::new("expected an Algorithm variant name")),
        }
    }
}

/// Client cache replacement policy.
///
/// The paper uses PIX whenever pages are retrieved from a Broadcast Disk
/// and P under Pure-Pull; LRU/LFU are kept as ablation baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Probability over broadcast frequency (`p/x`).
    Pix,
    /// Plain access probability.
    P,
    /// Least recently used (strawman).
    Lru,
    /// Least frequently used (strawman).
    Lfu,
}

impl ToJson for CachePolicy {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                CachePolicy::Pix => "Pix",
                CachePolicy::P => "P",
                CachePolicy::Lru => "Lru",
                CachePolicy::Lfu => "Lfu",
            }
            .to_string(),
        )
    }
}

impl FromJson for CachePolicy {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("Pix") => Ok(CachePolicy::Pix),
            Some("P") => Ok(CachePolicy::P),
            Some("Lru") => Ok(CachePolicy::Lru),
            Some("Lfu") => Ok(CachePolicy::Lfu),
            _ => Err(JsonError::new("expected a CachePolicy variant name")),
        }
    }
}

/// Server queue service order (see `bpp_server::Discipline`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// First in, first out — the paper's discipline.
    #[default]
    Fifo,
    /// Serve the page with the most coalesced waiters first (extension).
    MostRequested,
}

impl ToJson for QueueDiscipline {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                QueueDiscipline::Fifo => "Fifo",
                QueueDiscipline::MostRequested => "MostRequested",
            }
            .to_string(),
        )
    }
}

impl FromJson for QueueDiscipline {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("Fifo") => Ok(QueueDiscipline::Fifo),
            Some("MostRequested") => Ok(QueueDiscipline::MostRequested),
            _ => Err(JsonError::new("expected a QueueDiscipline variant name")),
        }
    }
}

/// Full parameterisation of one simulated system.
///
/// Defaults ([`SystemConfig::paper_default`]) reproduce Table 3. All
/// percentages are fractions in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Distinct pages at the server (`ServerDBSize`).
    pub db_size: usize,
    /// Client cache size in pages (`CacheSize`).
    pub cache_size: usize,
    /// Measured Client think time in broadcast units (`ThinkTime`).
    pub mc_think_time: f64,
    /// Virtual-Client intensity relative to the MC (`ThinkTimeRatio`):
    /// the VC generates requests this many times more frequently.
    pub think_time_ratio: f64,
    /// Fraction of the VC population in steady state (`SteadyStatePerc`).
    pub steady_state_perc: f64,
    /// MC access-pattern perturbation (`Noise`).
    pub noise: f64,
    /// Zipf skew θ.
    pub zipf_theta: f64,
    /// Pages per disk, fastest first (`DiskSize_i`).
    pub disk_sizes: Vec<usize>,
    /// Relative disk frequencies, fastest first (`RelFreq_i`).
    pub rel_freqs: Vec<u32>,
    /// Apply the Offset transform (all paper results do).
    pub offset: bool,
    /// Backchannel queue capacity in distinct pages (`ServerQSize`).
    pub server_queue_size: usize,
    /// Upper bound on the broadcast slots serving pulls (`PullBW`),
    /// meaningful for [`Algorithm::Ipp`] only (Push forces 0, Pull 1).
    pub pull_bw: f64,
    /// Client threshold as a fraction of the major cycle (`ThresPerc`).
    pub thres_perc: f64,
    /// Pages truncated from the push schedule, slowest disk first
    /// (Experiment 3). 0 = broadcast the whole database.
    pub chop: usize,
    /// Which delivery algorithm to run.
    pub algorithm: Algorithm,
    /// MC cache policy; `None` picks the paper's choice for the algorithm
    /// (PIX for Push/IPP, P for Pure-Pull).
    pub mc_cache_policy: Option<CachePolicy>,
    /// Server queue service discipline (the paper uses FIFO;
    /// most-requested-first is an extension ablation).
    pub queue_discipline: QueueDiscipline,
    /// Opportunistic client prefetching (\[Acha96a\], extension): offer every
    /// page heard on the frontchannel to the MC cache, letting the
    /// value-based admission test decide. The paper's demand-driven
    /// baseline is `false`.
    pub mc_prefetch: bool,
    /// Server update rate in updates per broadcast unit (\[Acha96b\],
    /// extension; this paper assumes read-only data, i.e. 0.0). Updates
    /// pick pages from the same skewed popularity distribution and
    /// invalidate client-cached copies.
    pub update_rate: f64,
    /// Correlation between the update pattern and the access pattern
    /// (\[Acha96b\]): 1.0 means updates hit pages with their access
    /// probability (hot data churns), 0.0 means updates are uniform.
    pub update_access_correlation: f64,
    /// Root seed for every random stream in the run.
    pub seed: u64,
}

impl SystemConfig {
    /// Table 3 defaults: 1000 pages, 3 disks (100/400/500 at 3:2:1),
    /// cache 100, think time 20, queue 100, offset on, θ = 0.95,
    /// `SteadyStatePerc` 95%, IPP at `PullBW` 50% with no threshold.
    pub fn paper_default() -> Self {
        SystemConfig {
            db_size: 1000,
            cache_size: 100,
            mc_think_time: 20.0,
            think_time_ratio: 10.0,
            steady_state_perc: 0.95,
            noise: 0.0,
            zipf_theta: 0.95,
            disk_sizes: vec![100, 400, 500],
            rel_freqs: vec![3, 2, 1],
            offset: true,
            server_queue_size: 100,
            pull_bw: 0.5,
            thres_perc: 0.0,
            chop: 0,
            algorithm: Algorithm::Ipp,
            mc_cache_policy: None,
            queue_discipline: QueueDiscipline::Fifo,
            mc_prefetch: false,
            update_rate: 0.0,
            update_access_correlation: 1.0,
            seed: 0x5EED_B0DC,
        }
    }

    /// Table 3 with the Zipf skew *calibrated to the paper's absolute
    /// numbers* (θ = 0.72 instead of the quoted 0.95).
    ///
    /// The paper states θ = 0.95, but three independent checkpoints of its
    /// text — the Pure-Push flat line at 278 broadcast units, 39.9% of
    /// requests dropped under Pure-Pull at ThinkTimeRatio 50, and 68.8%
    /// under IPP at the same load — are only mutually consistent with a
    /// per-page popularity skew whose 100 hottest pages carry ≈ 47% of the
    /// access mass. The standard `p(i) ∝ 1/i^0.95` convention gives 65%.
    /// θ = 0.72 under the standard convention reproduces all three
    /// checkpoints to within a few percent (see EXPERIMENTS.md); the
    /// difference is presumably a coarser-grained Zipf in the original
    /// (unpublished) workload generator of \[Acha95a\].
    pub fn paper_calibrated() -> Self {
        SystemConfig {
            zipf_theta: 0.72,
            ..Self::paper_default()
        }
    }

    /// A scaled-down configuration for unit/integration tests: 100 pages,
    /// 3 disks (10/40/50), cache 10, queue 10.
    pub fn small() -> Self {
        SystemConfig {
            db_size: 100,
            cache_size: 10,
            disk_sizes: vec![10, 40, 50],
            server_queue_size: 10,
            ..Self::paper_default()
        }
    }

    /// The effective pull bandwidth after the algorithm override.
    pub fn effective_pull_bw(&self) -> f64 {
        match self.algorithm {
            Algorithm::PurePush => 0.0,
            Algorithm::PurePull => 1.0,
            Algorithm::Ipp => self.pull_bw,
        }
    }

    /// The effective MC cache policy.
    pub fn effective_cache_policy(&self) -> CachePolicy {
        self.mc_cache_policy.unwrap_or(match self.algorithm {
            Algorithm::PurePull => CachePolicy::P,
            _ => CachePolicy::Pix,
        })
    }

    /// Mean inter-arrival time of Virtual-Client accesses.
    pub fn vc_mean_interarrival(&self) -> f64 {
        self.mc_think_time / self.think_time_ratio
    }

    /// Validate ranges and cross-field constraints, panicking with a clear
    /// message on violation. Called by the runner before building a world.
    pub fn validate(&self) {
        assert!(self.db_size > 0, "db_size must be positive");
        assert!(
            self.disk_sizes.iter().sum::<usize>() == self.db_size,
            "disk sizes {:?} must sum to db_size {}",
            self.disk_sizes,
            self.db_size
        );
        assert_eq!(
            self.disk_sizes.len(),
            self.rel_freqs.len(),
            "one frequency per disk"
        );
        assert!(
            self.cache_size <= self.db_size,
            "cache larger than database"
        );
        assert!(self.mc_think_time > 0.0, "think time must be positive");
        assert!(
            self.think_time_ratio > 0.0,
            "ThinkTimeRatio must be positive"
        );
        assert!(
            self.update_rate >= 0.0 && self.update_rate.is_finite(),
            "update_rate must be finite and >= 0"
        );
        for (name, v) in [
            ("steady_state_perc", self.steady_state_perc),
            ("noise", self.noise),
            ("pull_bw", self.pull_bw),
            ("thres_perc", self.thres_perc),
            ("update_access_correlation", self.update_access_correlation),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1], got {v}");
        }
        assert!(
            self.chop <= self.db_size,
            "cannot chop more than the database"
        );
        if self.offset && self.algorithm != Algorithm::PurePull {
            let slowest = *self.disk_sizes.last().expect("validated non-empty");
            assert!(
                self.cache_size <= slowest,
                "offset requires cache_size <= slowest disk size"
            );
        }
    }
}

impl ToJson for SystemConfig {
    fn to_json(&self) -> Json {
        Json::object([
            ("db_size", self.db_size.to_json()),
            ("cache_size", self.cache_size.to_json()),
            ("mc_think_time", self.mc_think_time.to_json()),
            ("think_time_ratio", self.think_time_ratio.to_json()),
            ("steady_state_perc", self.steady_state_perc.to_json()),
            ("noise", self.noise.to_json()),
            ("zipf_theta", self.zipf_theta.to_json()),
            ("disk_sizes", self.disk_sizes.to_json()),
            ("rel_freqs", self.rel_freqs.to_json()),
            ("offset", self.offset.to_json()),
            ("server_queue_size", self.server_queue_size.to_json()),
            ("pull_bw", self.pull_bw.to_json()),
            ("thres_perc", self.thres_perc.to_json()),
            ("chop", self.chop.to_json()),
            ("algorithm", self.algorithm.to_json()),
            ("mc_cache_policy", self.mc_cache_policy.to_json()),
            ("queue_discipline", self.queue_discipline.to_json()),
            ("mc_prefetch", self.mc_prefetch.to_json()),
            ("update_rate", self.update_rate.to_json()),
            (
                "update_access_correlation",
                self.update_access_correlation.to_json(),
            ),
            ("seed", self.seed.to_json()),
        ])
    }
}

impl FromJson for SystemConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SystemConfig {
            db_size: field(v, "db_size")?,
            cache_size: field(v, "cache_size")?,
            mc_think_time: field(v, "mc_think_time")?,
            think_time_ratio: field(v, "think_time_ratio")?,
            steady_state_perc: field(v, "steady_state_perc")?,
            noise: field(v, "noise")?,
            zipf_theta: field(v, "zipf_theta")?,
            disk_sizes: field(v, "disk_sizes")?,
            rel_freqs: field(v, "rel_freqs")?,
            offset: field(v, "offset")?,
            server_queue_size: field(v, "server_queue_size")?,
            pull_bw: field(v, "pull_bw")?,
            thres_perc: field(v, "thres_perc")?,
            chop: field(v, "chop")?,
            algorithm: field(v, "algorithm")?,
            mc_cache_policy: field(v, "mc_cache_policy")?,
            queue_discipline: field(v, "queue_discipline")?,
            mc_prefetch: field(v, "mc_prefetch")?,
            update_rate: field(v, "update_rate")?,
            update_access_correlation: field(v, "update_access_correlation")?,
            seed: field(v, "seed")?,
        })
    }
}

/// Measurement protocol for steady-state runs (§4: cache warm-up is
/// excluded, 4000 accesses are skipped, then the run continues "until the
/// response time stabilized").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementProtocol {
    /// MC accesses discarded after the cache first fills.
    pub skip_accesses: u64,
    /// Observations per batch for the batch-means estimator.
    pub batch_size: u64,
    /// Relative 95%-CI half-width at which the run stops.
    pub rel_precision: f64,
    /// Minimum completed batches before convergence is considered.
    pub min_batches: usize,
    /// Hard cap on measured MC accesses (guards pathological configs).
    pub max_accesses: u64,
    /// Cap on MC accesses spent waiting for the cache to fill before
    /// measurement proceeds anyway (under heavy update churn the cache may
    /// never reach capacity).
    pub max_warmup_accesses: u64,
    /// Hard cap on simulated time, in broadcast units.
    pub max_sim_time: f64,
}

impl MeasurementProtocol {
    /// The paper-faithful protocol (slow but precise).
    pub fn paper() -> Self {
        MeasurementProtocol {
            skip_accesses: 4000,
            batch_size: 500,
            rel_precision: 0.015,
            min_batches: 12,
            max_accesses: 200_000,
            max_warmup_accesses: 50_000,
            max_sim_time: 5.0e8,
        }
    }

    /// A fast protocol for tests, doctests and smoke runs.
    pub fn quick() -> Self {
        MeasurementProtocol {
            skip_accesses: 200,
            batch_size: 100,
            rel_precision: 0.10,
            min_batches: 4,
            max_accesses: 4_000,
            max_warmup_accesses: 2_000,
            max_sim_time: 5.0e6,
        }
    }
}

impl ToJson for MeasurementProtocol {
    fn to_json(&self) -> Json {
        Json::object([
            ("skip_accesses", self.skip_accesses.to_json()),
            ("batch_size", self.batch_size.to_json()),
            ("rel_precision", self.rel_precision.to_json()),
            ("min_batches", self.min_batches.to_json()),
            ("max_accesses", self.max_accesses.to_json()),
            ("max_warmup_accesses", self.max_warmup_accesses.to_json()),
            ("max_sim_time", self.max_sim_time.to_json()),
        ])
    }
}

impl FromJson for MeasurementProtocol {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(MeasurementProtocol {
            skip_accesses: field(v, "skip_accesses")?,
            batch_size: field(v, "batch_size")?,
            rel_precision: field(v, "rel_precision")?,
            min_batches: field(v, "min_batches")?,
            max_accesses: field(v, "max_accesses")?,
            max_warmup_accesses: field(v, "max_warmup_accesses")?,
            max_sim_time: field(v, "max_sim_time")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        SystemConfig::paper_default().validate();
        SystemConfig::small().validate();
    }

    #[test]
    fn effective_pull_bw_per_algorithm() {
        let mut c = SystemConfig::paper_default();
        c.pull_bw = 0.3;
        c.algorithm = Algorithm::PurePush;
        assert_eq!(c.effective_pull_bw(), 0.0);
        c.algorithm = Algorithm::PurePull;
        assert_eq!(c.effective_pull_bw(), 1.0);
        c.algorithm = Algorithm::Ipp;
        assert_eq!(c.effective_pull_bw(), 0.3);
    }

    #[test]
    fn default_cache_policy_follows_algorithm() {
        let mut c = SystemConfig::paper_default();
        c.algorithm = Algorithm::PurePull;
        assert_eq!(c.effective_cache_policy(), CachePolicy::P);
        c.algorithm = Algorithm::Ipp;
        assert_eq!(c.effective_cache_policy(), CachePolicy::Pix);
        c.mc_cache_policy = Some(CachePolicy::Lru);
        assert_eq!(c.effective_cache_policy(), CachePolicy::Lru);
    }

    #[test]
    fn vc_interarrival_formula() {
        let mut c = SystemConfig::paper_default();
        c.think_time_ratio = 250.0;
        assert!((c.vc_mean_interarrival() - 0.08).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must sum to db_size")]
    fn mismatched_disks_fail_validation() {
        let mut c = SystemConfig::paper_default();
        c.disk_sizes = vec![100, 400, 400];
        c.validate();
    }

    #[test]
    #[should_panic(expected = "cache larger than database")]
    fn oversized_cache_fails_validation() {
        let mut c = SystemConfig::small();
        c.cache_size = 1000;
        c.validate();
    }

    #[test]
    fn config_round_trips_through_json() {
        let c = SystemConfig::paper_default();
        let s = bpp_json::to_string(&c);
        let back: SystemConfig = bpp_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn every_enum_variant_round_trips_through_json() {
        // Cover each variant of each enum field, the optional policy in
        // both states, and a max-range seed (u64::MAX needs the writer's
        // full integer width).
        let mut variants = Vec::new();
        for algorithm in [Algorithm::PurePush, Algorithm::PurePull, Algorithm::Ipp] {
            for policy in [
                None,
                Some(CachePolicy::Pix),
                Some(CachePolicy::P),
                Some(CachePolicy::Lru),
                Some(CachePolicy::Lfu),
            ] {
                for discipline in [QueueDiscipline::Fifo, QueueDiscipline::MostRequested] {
                    let mut c = SystemConfig::small();
                    c.algorithm = algorithm;
                    c.mc_cache_policy = policy;
                    c.queue_discipline = discipline;
                    c.seed = u64::MAX;
                    variants.push(c);
                }
            }
        }
        for c in variants {
            let s = bpp_json::to_string_pretty(&c);
            let back: SystemConfig = bpp_json::from_str(&s).unwrap();
            assert_eq!(c, back, "variant did not survive the trip: {s}");
        }
    }

    #[test]
    fn protocol_round_trips_through_json() {
        for p in [MeasurementProtocol::paper(), MeasurementProtocol::quick()] {
            let s = bpp_json::to_string(&p);
            let back: MeasurementProtocol = bpp_json::from_str(&s).unwrap();
            assert_eq!(p, back);
        }
    }

    #[test]
    fn unknown_enum_variant_is_rejected() {
        let mut v = SystemConfig::paper_default().to_json();
        if let Json::Obj(members) = &mut v {
            for (k, val) in members.iter_mut() {
                if k == "algorithm" {
                    *val = Json::Str("Hybrid".to_string());
                }
            }
        }
        assert!(SystemConfig::from_json(&v).is_err());
    }
}
