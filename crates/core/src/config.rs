//! System configuration — Tables 1, 2 and 3 of the paper, plus the fault
//! model (lossy channels, brownouts, retry/degradation policies) layered on
//! top for the robustness extension.

use bpp_client::RetryPolicy;
use bpp_json::{field, opt_field, FromJson, Json, JsonError, ToJson};
use bpp_obs::ObsConfig;
use bpp_server::{AdmissionConfig, OverflowPolicy, SaturationPolicy};

/// The three data-delivery algorithms compared in the paper (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Broadcast Disk only; `PullBW = 0`, no backchannel.
    PurePush,
    /// Request/response with snooping; `PullBW = 100%`, no periodic
    /// broadcast.
    PurePull,
    /// Interleaved Push and Pull: periodic broadcast plus pull responses,
    /// split by `pull_bw`, with the client threshold filter.
    Ipp,
}

impl Algorithm {
    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::PurePush => "Push",
            Algorithm::PurePull => "Pull",
            Algorithm::Ipp => "IPP",
        }
    }
}

// Unit enum variants serialize as their name, like derived serde did.
impl ToJson for Algorithm {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                Algorithm::PurePush => "PurePush",
                Algorithm::PurePull => "PurePull",
                Algorithm::Ipp => "Ipp",
            }
            .to_string(),
        )
    }
}

impl FromJson for Algorithm {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("PurePush") => Ok(Algorithm::PurePush),
            Some("PurePull") => Ok(Algorithm::PurePull),
            Some("Ipp") => Ok(Algorithm::Ipp),
            _ => Err(JsonError::new("expected an Algorithm variant name")),
        }
    }
}

/// Client cache replacement policy.
///
/// The paper uses PIX whenever pages are retrieved from a Broadcast Disk
/// and P under Pure-Pull; LRU/LFU are kept as ablation baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicy {
    /// Probability over broadcast frequency (`p/x`).
    Pix,
    /// Plain access probability.
    P,
    /// Least recently used (strawman).
    Lru,
    /// Least frequently used (strawman).
    Lfu,
}

impl ToJson for CachePolicy {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                CachePolicy::Pix => "Pix",
                CachePolicy::P => "P",
                CachePolicy::Lru => "Lru",
                CachePolicy::Lfu => "Lfu",
            }
            .to_string(),
        )
    }
}

impl FromJson for CachePolicy {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("Pix") => Ok(CachePolicy::Pix),
            Some("P") => Ok(CachePolicy::P),
            Some("Lru") => Ok(CachePolicy::Lru),
            Some("Lfu") => Ok(CachePolicy::Lfu),
            _ => Err(JsonError::new("expected a CachePolicy variant name")),
        }
    }
}

/// Server queue service order (see `bpp_server::Discipline`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueDiscipline {
    /// First in, first out — the paper's discipline.
    #[default]
    Fifo,
    /// Serve the page with the most coalesced waiters first (extension).
    MostRequested,
}

impl ToJson for QueueDiscipline {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                QueueDiscipline::Fifo => "Fifo",
                QueueDiscipline::MostRequested => "MostRequested",
            }
            .to_string(),
        )
    }
}

impl FromJson for QueueDiscipline {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v.as_str() {
            Some("Fifo") => Ok(QueueDiscipline::Fifo),
            Some("MostRequested") => Ok(QueueDiscipline::MostRequested),
            _ => Err(JsonError::new("expected a QueueDiscipline variant name")),
        }
    }
}

/// Server crash–recovery model (robustness extension).
///
/// A crash makes the server lose all volatile state: the request queue is
/// drained (every pending request becomes *orphaned*), the saturation
/// detector's EWMA and the adaptive controller's learning are reset, and
/// broadcast slots go silent for `downtime` broadcast units. Crash times
/// come from one of two mutually exclusive sources:
///
/// * `mtbf` — an exponential inter-crash distribution drawn on the
///   dedicated `CRASH` RNG stream (mean time between failures, measured
///   restart-to-crash);
/// * `schedule` — an explicit, strictly increasing list of crash times for
///   deterministic chaos scenarios.
///
/// Recovery is *cold*: clients rediscover the server through their retry
/// timers, stretched by `reconnect_jitter` to decorrelate the reconnect
/// herd. A crash counts as recovered when the Measured Client's
/// response-time EWMA returns to within `recovery_epsilon` (relative) of
/// its pre-crash level.
///
/// [`CrashConfig::none`] (the default) disables the whole domain: no crash
/// state is constructed, the `CRASH` stream is never seeded, and runs are
/// bitwise identical to a build without it.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashConfig {
    /// Mean time between failures in broadcast units (exponential draw on
    /// the `CRASH` stream). `0` disables random crashes.
    pub mtbf: f64,
    /// How long the server stays down after each crash, in broadcast
    /// units. Must be positive when crashes are configured.
    pub downtime: f64,
    /// Explicit crash times (broadcast units, strictly increasing).
    /// Mutually exclusive with `mtbf`; empty means none.
    pub schedule: Vec<f64>,
    /// Reconnect-jitter fraction in `[0, 1]`: a client whose send was
    /// refused or admission-rejected stretches its next retry delay by a
    /// uniform factor in `[1, 1 + reconnect_jitter)` (drawn on the same
    /// stream as its ordinary retry jitter).
    pub reconnect_jitter: f64,
    /// Relative tolerance for the recovery detector: recovered when the
    /// response EWMA is `<= (1 + recovery_epsilon) ×` its pre-crash level.
    pub recovery_epsilon: f64,
}

impl Default for CrashConfig {
    fn default() -> Self {
        CrashConfig::none()
    }
}

impl CrashConfig {
    /// No crashes ever: the strict no-op configuration.
    pub fn none() -> Self {
        CrashConfig {
            mtbf: 0.0,
            downtime: 0.0,
            schedule: Vec::new(),
            reconnect_jitter: 0.0,
            recovery_epsilon: 0.0,
        }
    }

    /// Whether any crash source is configured.
    pub fn enabled(&self) -> bool {
        self.mtbf > 0.0 || !self.schedule.is_empty()
    }

    /// Check the parameters, returning a human-readable description of the
    /// first problem found. A disabled config is always valid.
    pub fn validate(&self) -> Result<(), String> {
        let CrashConfig {
            mtbf,
            downtime,
            ref schedule,
            reconnect_jitter,
            recovery_epsilon,
        } = *self;
        if !mtbf.is_finite() || mtbf < 0.0 {
            return Err(format!("crash mtbf must be finite and >= 0, got {mtbf}"));
        }
        if mtbf > 0.0 && !schedule.is_empty() {
            return Err("crash mtbf and an explicit schedule are mutually exclusive".to_string());
        }
        for w in schedule.windows(2) {
            // partial_cmp so NaN (incomparable) also fails the check.
            if !matches!(w[1].partial_cmp(&w[0]), Some(std::cmp::Ordering::Greater)) {
                return Err(format!(
                    "crash schedule must be strictly increasing, got {} then {}",
                    w[0], w[1]
                ));
            }
        }
        if let Some(&t) = schedule.first() {
            if !t.is_finite() || t < 0.0 {
                return Err(format!(
                    "crash schedule times must be finite and >= 0, got {t}"
                ));
            }
        }
        if !reconnect_jitter.is_finite() || !(0.0..=1.0).contains(&reconnect_jitter) {
            return Err(format!(
                "crash reconnect_jitter must be in [0,1], got {reconnect_jitter}"
            ));
        }
        if !recovery_epsilon.is_finite() || recovery_epsilon < 0.0 {
            return Err(format!(
                "crash recovery_epsilon must be finite and >= 0, got {recovery_epsilon}"
            ));
        }
        if self.enabled() && !(downtime.is_finite() && downtime > 0.0) {
            return Err(format!(
                "crash downtime must be finite and positive when crashes are configured, got {downtime}"
            ));
        }
        Ok(())
    }
}

impl ToJson for CrashConfig {
    fn to_json(&self) -> Json {
        Json::object([
            ("mtbf", self.mtbf.to_json()),
            ("downtime", self.downtime.to_json()),
            ("schedule", self.schedule.to_json()),
            ("reconnect_jitter", self.reconnect_jitter.to_json()),
            ("recovery_epsilon", self.recovery_epsilon.to_json()),
        ])
    }
}

impl FromJson for CrashConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(CrashConfig {
            mtbf: field(v, "mtbf")?,
            downtime: field(v, "downtime")?,
            schedule: field(v, "schedule")?,
            reconnect_jitter: field(v, "reconnect_jitter")?,
            recovery_epsilon: field(v, "recovery_epsilon")?,
        })
    }
}

/// The deterministic unreliability model layered over the paper's perfect
/// channels.
///
/// All four failure mechanisms are independent and individually zeroable:
///
/// * `broadcast_loss` — each page-carrying slot is corrupted/lost for *all*
///   listeners with this probability (one coin per slot on the
///   `FAULT_LOSS` RNG stream);
/// * `request_loss` — each backchannel request vanishes in transit with
///   this probability (one coin per send on the `FAULT_REQ` stream);
/// * brownouts — a deterministic periodic window (`brownout_duration` out
///   of every `brownout_period` broadcast units, starting at time 0)
///   during which the server discards every arriving request;
/// * `overflow` / `retry` / `degrade` — how the queue, the client, and the
///   multiplexer *respond* to the above;
/// * `crash` / `admission` — the crash–recovery fault domain: server
///   crashes that lose volatile state ([`CrashConfig`]) and the
///   token-bucket admission layer that paces the resulting reconnect herd
///   ([`AdmissionConfig`]).
///
/// [`FaultConfig::none`] (the default) disables everything; the simulation
/// then constructs no fault state, draws from no fault streams, and is
/// bitwise-identical to a build without the fault layer.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that a page-carrying broadcast slot is lost (`[0,1]`).
    pub broadcast_loss: f64,
    /// Probability that a backchannel request is dropped in transit
    /// (`[0,1]`).
    pub request_loss: f64,
    /// Brownout cycle length in broadcast units; `0` disables brownouts.
    pub brownout_period: f64,
    /// Portion at the start of each cycle during which the server drops
    /// all arriving requests. Must be `<= brownout_period`.
    pub brownout_duration: f64,
    /// What the server queue does with a new page at capacity.
    pub overflow: OverflowPolicy,
    /// Client-side timeout/backoff behavior for pull requests.
    pub retry: RetryPolicy,
    /// Server-side saturation detection / pull-bandwidth shedding.
    pub degrade: SaturationPolicy,
    /// Server crash–recovery model (disabled by default).
    pub crash: CrashConfig,
    /// Token-bucket admission control on the backchannel (disabled by
    /// default).
    pub admission: AdmissionConfig,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

impl FaultConfig {
    /// No faults: perfect channels, paper-faithful queue behavior, no
    /// retries, no degradation. The strict no-op configuration.
    pub fn none() -> Self {
        FaultConfig {
            broadcast_loss: 0.0,
            request_loss: 0.0,
            brownout_period: 0.0,
            brownout_duration: 0.0,
            overflow: OverflowPolicy::DropNewest,
            retry: RetryPolicy::disabled(),
            degrade: SaturationPolicy::disabled(),
            crash: CrashConfig::none(),
            admission: AdmissionConfig::disabled(),
        }
    }

    /// A symmetric lossy-channel preset: both channels lose at rate
    /// `loss`, clients retry with the standard backoff policy, and the
    /// server degrades toward push-only under sustained queue pressure.
    pub fn lossy(loss: f64) -> Self {
        FaultConfig {
            broadcast_loss: loss,
            request_loss: loss,
            retry: RetryPolicy::standard(),
            degrade: SaturationPolicy::standard(),
            ..FaultConfig::none()
        }
    }

    /// Whether any part of the fault model deviates from [`none`].
    ///
    /// [`none`]: FaultConfig::none
    pub fn enabled(&self) -> bool {
        *self != FaultConfig::none()
    }

    /// Whether brownout windows are configured.
    pub fn has_brownouts(&self) -> bool {
        self.brownout_period > 0.0 && self.brownout_duration > 0.0
    }

    /// True when `now` falls inside a brownout window.
    pub fn in_brownout(&self, now: f64) -> bool {
        self.has_brownouts() && now % self.brownout_period < self.brownout_duration
    }
}

impl ToJson for FaultConfig {
    fn to_json(&self) -> Json {
        let mut obj = Json::object([
            ("broadcast_loss", self.broadcast_loss.to_json()),
            ("request_loss", self.request_loss.to_json()),
            ("brownout_period", self.brownout_period.to_json()),
            ("brownout_duration", self.brownout_duration.to_json()),
            ("overflow", self.overflow.to_json()),
            ("retry", self.retry.to_json()),
            ("degrade", self.degrade.to_json()),
        ]);
        // Crash/admission keys appear only when their sub-model is live, so
        // pre-existing configs serialize byte-identically.
        if let Json::Obj(members) = &mut obj {
            if self.crash.enabled() {
                members.push(("crash".to_string(), self.crash.to_json()));
            }
            if self.admission.enabled() {
                members.push(("admission".to_string(), self.admission.to_json()));
            }
        }
        obj
    }
}

impl FromJson for FaultConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(FaultConfig {
            broadcast_loss: field(v, "broadcast_loss")?,
            request_loss: field(v, "request_loss")?,
            brownout_period: field(v, "brownout_period")?,
            brownout_duration: field(v, "brownout_duration")?,
            overflow: field(v, "overflow")?,
            retry: field(v, "retry")?,
            degrade: field(v, "degrade")?,
            crash: opt_field(v, "crash")?.unwrap_or_default(),
            admission: opt_field(v, "admission")?.unwrap_or_default(),
        })
    }
}

/// One violated constraint in a [`SystemConfig`].
///
/// [`SystemConfig::validate`] reports *every* violation at once (as a
/// [`ConfigErrors`]) rather than panicking at the first, so a sweep driver
/// or config-file user sees the complete damage in one pass.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `db_size` is zero.
    EmptyDatabase,
    /// `disk_sizes` is empty — the broadcast program needs at least one
    /// disk.
    NoDisks,
    /// The disk sizes do not sum to the database size.
    DiskSizeSum {
        /// The configured per-disk page counts.
        disk_sizes: Vec<usize>,
        /// The configured database size they should sum to.
        db_size: usize,
    },
    /// `disk_sizes` and `rel_freqs` have different lengths.
    DiskFreqArity {
        /// Number of disks.
        disks: usize,
        /// Number of relative frequencies.
        freqs: usize,
    },
    /// The client cache is larger than the database.
    CacheTooLarge {
        /// The configured cache size.
        cache_size: usize,
        /// The database size it must not exceed.
        db_size: usize,
    },
    /// `mc_think_time` is not strictly positive.
    NonPositiveThinkTime(
        /// The offending value.
        f64,
    ),
    /// `think_time_ratio` is not strictly positive.
    NonPositiveThinkTimeRatio(
        /// The offending value.
        f64,
    ),
    /// `zipf_theta` is negative or non-finite (θ = 0 is uniform access,
    /// valid; a negative skew inverts the popularity order).
    InvalidZipfTheta(
        /// The offending value.
        f64,
    ),
    /// `server_queue_size` is zero — the backchannel needs somewhere to
    /// queue at least one request (Pure-Push simply never enqueues).
    EmptyQueue,
    /// `num_channels` is zero — the broadcast needs at least one channel
    /// (`1` is the paper's single-channel system).
    NoChannels,
    /// `update_rate` is negative or non-finite.
    InvalidUpdateRate(
        /// The offending value.
        f64,
    ),
    /// A fractional parameter fell outside `[0, 1]`.
    FractionOutOfRange {
        /// Which config field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `chop` exceeds the database size.
    ChopTooLarge {
        /// The configured chop count.
        chop: usize,
        /// The database size it must not exceed.
        db_size: usize,
    },
    /// The Offset transform requires the cache to fit in the slowest disk.
    OffsetCacheTooLarge {
        /// The configured cache size.
        cache_size: usize,
        /// The slowest disk's page count.
        slowest: usize,
    },
    /// A brownout window parameter is negative or non-finite.
    InvalidBrownout {
        /// Which brownout field.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `brownout_duration` exceeds `brownout_period`.
    BrownoutDurationExceedsPeriod {
        /// The configured window length.
        duration: f64,
        /// The cycle it must fit inside.
        period: f64,
    },
    /// The retry policy is malformed (message from
    /// `RetryPolicy::validate`).
    InvalidRetry(
        /// The underlying description.
        String,
    ),
    /// The degradation policy is malformed (message from
    /// `SaturationPolicy::validate`).
    InvalidDegrade(
        /// The underlying description.
        String,
    ),
    /// The observability configuration is malformed (message from
    /// `ObsConfig::validate`).
    InvalidObs(
        /// The underlying description.
        String,
    ),
    /// The client population is malformed (message from
    /// `ClientPopulation::validate`).
    InvalidPopulation(
        /// The underlying description.
        String,
    ),
    /// The crash model is malformed (message from `CrashConfig::validate`).
    InvalidCrash(
        /// The underlying description.
        String,
    ),
    /// The admission layer is malformed (message from
    /// `AdmissionConfig::validate`).
    InvalidAdmission(
        /// The underlying description.
        String,
    ),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EmptyDatabase => write!(f, "db_size must be positive"),
            ConfigError::NoDisks => write!(f, "at least one broadcast disk is required"),
            ConfigError::DiskSizeSum {
                disk_sizes,
                db_size,
            } => write!(f, "disk sizes {disk_sizes:?} must sum to db_size {db_size}"),
            ConfigError::DiskFreqArity { disks, freqs } => write!(
                f,
                "one frequency per disk ({disks} disks, {freqs} frequencies)"
            ),
            ConfigError::CacheTooLarge {
                cache_size,
                db_size,
            } => write!(f, "cache larger than database ({cache_size} > {db_size})"),
            ConfigError::NonPositiveThinkTime(v) => {
                write!(f, "think time must be positive, got {v}")
            }
            ConfigError::NonPositiveThinkTimeRatio(v) => {
                write!(f, "ThinkTimeRatio must be positive, got {v}")
            }
            ConfigError::InvalidZipfTheta(v) => {
                write!(f, "zipf_theta must be finite and >= 0, got {v}")
            }
            ConfigError::EmptyQueue => write!(f, "server_queue_size must be positive"),
            ConfigError::NoChannels => write!(f, "num_channels must be positive"),
            ConfigError::InvalidUpdateRate(v) => {
                write!(f, "update_rate must be finite and >= 0, got {v}")
            }
            ConfigError::FractionOutOfRange { field, value } => {
                write!(f, "{field} must be in [0,1], got {value}")
            }
            ConfigError::ChopTooLarge { chop, db_size } => {
                write!(f, "cannot chop more than the database ({chop} > {db_size})")
            }
            ConfigError::OffsetCacheTooLarge {
                cache_size,
                slowest,
            } => write!(
                f,
                "offset requires cache_size <= slowest disk size ({cache_size} > {slowest})"
            ),
            ConfigError::InvalidBrownout { field, value } => {
                write!(f, "{field} must be finite and >= 0, got {value}")
            }
            ConfigError::BrownoutDurationExceedsPeriod { duration, period } => write!(
                f,
                "brownout_duration {duration} exceeds brownout_period {period}"
            ),
            ConfigError::InvalidRetry(msg)
            | ConfigError::InvalidDegrade(msg)
            | ConfigError::InvalidObs(msg)
            | ConfigError::InvalidPopulation(msg)
            | ConfigError::InvalidCrash(msg)
            | ConfigError::InvalidAdmission(msg) => {
                write!(f, "{msg}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Every constraint a [`SystemConfig`] violated, in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigErrors(
    /// The individual violations (never empty when returned).
    pub Vec<ConfigError>,
);

impl std::fmt::Display for ConfigErrors {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ConfigErrors {}

/// Client population model: the paper's aggregate (one Measured Client
/// plus the open-loop Virtual-Client aggregate) or a real closed-loop
/// fleet of arena-backed clients (see `bpp_client::ClientArena`).
///
/// In fleet mode the Virtual Client is replaced by `fleet_clients` real
/// clients, each running the full closed loop — think, access, cache
/// check, threshold-filtered request, retry — with the same think time as
/// the Measured Client. A fleet of `n` clients therefore offers the same
/// aggregate access rate as the paper's aggregate at `ThinkTimeRatio = n`,
/// which is exactly the convergence check the population-sweep figure
/// plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClientPopulation {
    /// Number of real closed-loop fleet clients replacing the Virtual
    /// Client aggregate. `0` (the default) keeps the paper's MC + VC
    /// aggregate model.
    pub fleet_clients: usize,
}

impl ClientPopulation {
    /// The paper's model: one Measured Client plus the VC aggregate.
    pub fn aggregate() -> Self {
        Self::default()
    }

    /// A real fleet of `n` closed-loop clients.
    pub fn fleet(n: usize) -> Self {
        ClientPopulation { fleet_clients: n }
    }

    /// True when a real fleet replaces the Virtual-Client aggregate.
    pub fn is_fleet(&self) -> bool {
        self.fleet_clients > 0
    }

    /// Range check; fleet indices are stored as `u32` in the arena slabs.
    pub fn validate(&self) -> Result<(), String> {
        if self.fleet_clients > u32::MAX as usize {
            return Err(format!(
                "fleet_clients must fit in u32, got {}",
                self.fleet_clients
            ));
        }
        Ok(())
    }
}

impl ToJson for ClientPopulation {
    fn to_json(&self) -> Json {
        Json::object([("fleet_clients", self.fleet_clients.to_json())])
    }
}

impl FromJson for ClientPopulation {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(ClientPopulation {
            fleet_clients: field(v, "fleet_clients")?,
        })
    }
}

/// Full parameterisation of one simulated system.
///
/// Defaults ([`SystemConfig::paper_default`]) reproduce Table 3. All
/// percentages are fractions in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Distinct pages at the server (`ServerDBSize`).
    pub db_size: usize,
    /// Client cache size in pages (`CacheSize`).
    pub cache_size: usize,
    /// Measured Client think time in broadcast units (`ThinkTime`).
    pub mc_think_time: f64,
    /// Virtual-Client intensity relative to the MC (`ThinkTimeRatio`):
    /// the VC generates requests this many times more frequently.
    pub think_time_ratio: f64,
    /// Fraction of the VC population in steady state (`SteadyStatePerc`).
    pub steady_state_perc: f64,
    /// MC access-pattern perturbation (`Noise`).
    pub noise: f64,
    /// Zipf skew θ.
    pub zipf_theta: f64,
    /// Pages per disk, fastest first (`DiskSize_i`).
    pub disk_sizes: Vec<usize>,
    /// Relative disk frequencies, fastest first (`RelFreq_i`).
    pub rel_freqs: Vec<u32>,
    /// Apply the Offset transform (all paper results do).
    pub offset: bool,
    /// Backchannel queue capacity in distinct pages (`ServerQSize`).
    pub server_queue_size: usize,
    /// Upper bound on the broadcast slots serving pulls (`PullBW`),
    /// meaningful for [`Algorithm::Ipp`] only (Push forces 0, Pull 1).
    pub pull_bw: f64,
    /// Client threshold as a fraction of the major cycle (`ThresPerc`).
    pub thres_perc: f64,
    /// Pages truncated from the push schedule, slowest disk first
    /// (Experiment 3). 0 = broadcast the whole database.
    pub chop: usize,
    /// Which delivery algorithm to run.
    pub algorithm: Algorithm,
    /// MC cache policy; `None` picks the paper's choice for the algorithm
    /// (PIX for Push/IPP, P for Pure-Pull).
    pub mc_cache_policy: Option<CachePolicy>,
    /// Server queue service discipline (the paper uses FIFO;
    /// most-requested-first is an extension ablation).
    pub queue_discipline: QueueDiscipline,
    /// Opportunistic client prefetching (\[Acha96a\], extension): offer every
    /// page heard on the frontchannel to the MC cache, letting the
    /// value-based admission test decide. The paper's demand-driven
    /// baseline is `false`.
    pub mc_prefetch: bool,
    /// Server update rate in updates per broadcast unit (\[Acha96b\],
    /// extension; this paper assumes read-only data, i.e. 0.0). Updates
    /// pick pages from the same skewed popularity distribution and
    /// invalidate client-cached copies.
    pub update_rate: f64,
    /// Correlation between the update pattern and the access pattern
    /// (\[Acha96b\]): 1.0 means updates hit pages with their access
    /// probability (hot data churns), 0.0 means updates are uniform.
    pub update_access_correlation: f64,
    /// Root seed for every random stream in the run.
    pub seed: u64,
    /// Number of parallel broadcast channels (K-channel extension). `1`,
    /// the default, is the paper's single channel and leaves every config
    /// document and simulation result byte-identical to a build without
    /// the extension. `K > 1` splits the push schedule across `K`
    /// lock-step channels (conflict-free by construction, verified by
    /// bpp-verify rule V6), gives clients a channel-tuning policy, and
    /// shards the backchannel into per-channel queues.
    pub num_channels: usize,
    /// The unreliability model (robustness extension; the paper's perfect
    /// channels are [`FaultConfig::none`], the default).
    pub fault: FaultConfig,
    /// The observability layer (off by default: a disabled `obs` block
    /// allocates no instrumentation state and leaves every result and
    /// config document byte-identical to a build without the layer).
    pub obs: ObsConfig,
    /// The client population model (million-client extension; the paper's
    /// MC + VC aggregate is [`ClientPopulation::aggregate`], the default,
    /// which leaves every config document byte-identical to a build
    /// without the fleet).
    pub population: ClientPopulation,
}

impl SystemConfig {
    /// Table 3 defaults: 1000 pages, 3 disks (100/400/500 at 3:2:1),
    /// cache 100, think time 20, queue 100, offset on, θ = 0.95,
    /// `SteadyStatePerc` 95%, IPP at `PullBW` 50% with no threshold.
    pub fn paper_default() -> Self {
        SystemConfig {
            db_size: 1000,
            cache_size: 100,
            mc_think_time: 20.0,
            think_time_ratio: 10.0,
            steady_state_perc: 0.95,
            noise: 0.0,
            zipf_theta: 0.95,
            disk_sizes: vec![100, 400, 500],
            rel_freqs: vec![3, 2, 1],
            offset: true,
            server_queue_size: 100,
            pull_bw: 0.5,
            thres_perc: 0.0,
            chop: 0,
            algorithm: Algorithm::Ipp,
            mc_cache_policy: None,
            queue_discipline: QueueDiscipline::Fifo,
            mc_prefetch: false,
            update_rate: 0.0,
            update_access_correlation: 1.0,
            seed: 0x5EED_B0DC,
            num_channels: 1,
            fault: FaultConfig::none(),
            obs: ObsConfig::default(),
            population: ClientPopulation::aggregate(),
        }
    }

    /// Table 3 with the Zipf skew *calibrated to the paper's absolute
    /// numbers* (θ = 0.72 instead of the quoted 0.95).
    ///
    /// The paper states θ = 0.95, but three independent checkpoints of its
    /// text — the Pure-Push flat line at 278 broadcast units, 39.9% of
    /// requests dropped under Pure-Pull at ThinkTimeRatio 50, and 68.8%
    /// under IPP at the same load — are only mutually consistent with a
    /// per-page popularity skew whose 100 hottest pages carry ≈ 47% of the
    /// access mass. The standard `p(i) ∝ 1/i^0.95` convention gives 65%.
    /// θ = 0.72 under the standard convention reproduces all three
    /// checkpoints to within a few percent (see EXPERIMENTS.md); the
    /// difference is presumably a coarser-grained Zipf in the original
    /// (unpublished) workload generator of \[Acha95a\].
    pub fn paper_calibrated() -> Self {
        SystemConfig {
            zipf_theta: 0.72,
            ..Self::paper_default()
        }
    }

    /// A scaled-down configuration for unit/integration tests: 100 pages,
    /// 3 disks (10/40/50), cache 10, queue 10.
    pub fn small() -> Self {
        SystemConfig {
            db_size: 100,
            cache_size: 10,
            disk_sizes: vec![10, 40, 50],
            server_queue_size: 10,
            ..Self::paper_default()
        }
    }

    /// The effective pull bandwidth after the algorithm override.
    pub fn effective_pull_bw(&self) -> f64 {
        match self.algorithm {
            Algorithm::PurePush => 0.0,
            Algorithm::PurePull => 1.0,
            Algorithm::Ipp => self.pull_bw,
        }
    }

    /// The effective MC cache policy.
    pub fn effective_cache_policy(&self) -> CachePolicy {
        self.mc_cache_policy.unwrap_or(match self.algorithm {
            Algorithm::PurePull => CachePolicy::P,
            _ => CachePolicy::Pix,
        })
    }

    /// Mean inter-arrival time of Virtual-Client accesses.
    pub fn vc_mean_interarrival(&self) -> f64 {
        self.mc_think_time / self.think_time_ratio
    }

    /// Check every range and cross-field constraint, returning *all*
    /// violations at once (a sweep driver or config-file user sees the
    /// complete damage in one pass instead of fixing panics one by one).
    pub fn validate(&self) -> Result<(), ConfigErrors> {
        // Knobs with no invalid values — enums, flags, and the seed — are
        // named here so that every field of the struct is either checked
        // below or visibly declared check-free (rule D8 keeps this in
        // sync: dropping a field from validate() is a lint error, not a
        // silent hole).
        let SystemConfig {
            mc_cache_policy: _,
            queue_discipline: _,
            mc_prefetch: _,
            seed: _,
            ..
        } = self;
        let FaultConfig { overflow: _, .. } = &self.fault;
        let mut errs = Vec::new();
        if self.db_size == 0 {
            errs.push(ConfigError::EmptyDatabase);
        }
        if self.disk_sizes.is_empty() {
            errs.push(ConfigError::NoDisks);
        } else if self.disk_sizes.iter().sum::<usize>() != self.db_size {
            errs.push(ConfigError::DiskSizeSum {
                disk_sizes: self.disk_sizes.clone(),
                db_size: self.db_size,
            });
        }
        if self.disk_sizes.len() != self.rel_freqs.len() {
            errs.push(ConfigError::DiskFreqArity {
                disks: self.disk_sizes.len(),
                freqs: self.rel_freqs.len(),
            });
        }
        if self.cache_size > self.db_size {
            errs.push(ConfigError::CacheTooLarge {
                cache_size: self.cache_size,
                db_size: self.db_size,
            });
        }
        if self.mc_think_time.is_nan() || self.mc_think_time <= 0.0 {
            errs.push(ConfigError::NonPositiveThinkTime(self.mc_think_time));
        }
        if self.think_time_ratio.is_nan() || self.think_time_ratio <= 0.0 {
            errs.push(ConfigError::NonPositiveThinkTimeRatio(
                self.think_time_ratio,
            ));
        }
        if !(self.update_rate >= 0.0 && self.update_rate.is_finite()) {
            errs.push(ConfigError::InvalidUpdateRate(self.update_rate));
        }
        if !(self.zipf_theta >= 0.0 && self.zipf_theta.is_finite()) {
            errs.push(ConfigError::InvalidZipfTheta(self.zipf_theta));
        }
        if self.server_queue_size == 0 {
            errs.push(ConfigError::EmptyQueue);
        }
        if self.num_channels == 0 {
            errs.push(ConfigError::NoChannels);
        }
        for (field, value) in [
            ("steady_state_perc", self.steady_state_perc),
            ("noise", self.noise),
            ("pull_bw", self.pull_bw),
            ("thres_perc", self.thres_perc),
            ("update_access_correlation", self.update_access_correlation),
            ("fault.broadcast_loss", self.fault.broadcast_loss),
            ("fault.request_loss", self.fault.request_loss),
        ] {
            if !(0.0..=1.0).contains(&value) {
                errs.push(ConfigError::FractionOutOfRange { field, value });
            }
        }
        if self.chop > self.db_size {
            errs.push(ConfigError::ChopTooLarge {
                chop: self.chop,
                db_size: self.db_size,
            });
        }
        if self.offset && self.algorithm != Algorithm::PurePull {
            if let Some(&slowest) = self.disk_sizes.last() {
                if self.cache_size > slowest {
                    errs.push(ConfigError::OffsetCacheTooLarge {
                        cache_size: self.cache_size,
                        slowest,
                    });
                }
            }
        }
        for (field, value) in [
            ("fault.brownout_period", self.fault.brownout_period),
            ("fault.brownout_duration", self.fault.brownout_duration),
        ] {
            if !(value.is_finite() && value >= 0.0) {
                errs.push(ConfigError::InvalidBrownout { field, value });
            }
        }
        if self.fault.brownout_duration > self.fault.brownout_period {
            errs.push(ConfigError::BrownoutDurationExceedsPeriod {
                duration: self.fault.brownout_duration,
                period: self.fault.brownout_period,
            });
        }
        if let Err(msg) = self.fault.retry.validate() {
            errs.push(ConfigError::InvalidRetry(msg));
        }
        if let Err(msg) = self.fault.degrade.validate() {
            errs.push(ConfigError::InvalidDegrade(msg));
        }
        if let Err(msg) = self.obs.validate() {
            errs.push(ConfigError::InvalidObs(msg));
        }
        if let Err(msg) = self.population.validate() {
            errs.push(ConfigError::InvalidPopulation(msg));
        }
        if let Err(msg) = self.fault.crash.validate() {
            errs.push(ConfigError::InvalidCrash(msg));
        }
        if let Err(msg) = self.fault.admission.validate() {
            errs.push(ConfigError::InvalidAdmission(msg));
        }
        if errs.is_empty() {
            Ok(())
        } else {
            Err(ConfigErrors(errs))
        }
    }

    /// [`validate`](SystemConfig::validate), but panic with the joined
    /// violation list. For internal call sites (e.g. `World::build`) whose
    /// contract is "caller passes a valid config".
    pub fn assert_valid(&self) {
        if let Err(errs) = self.validate() {
            // bpp-lint: allow(D3): assert_valid is the documented panicking twin of validate()
            panic!("invalid SystemConfig: {errs}");
        }
    }
}

impl ToJson for SystemConfig {
    fn to_json(&self) -> Json {
        let mut obj = Json::object([
            ("db_size", self.db_size.to_json()),
            ("cache_size", self.cache_size.to_json()),
            ("mc_think_time", self.mc_think_time.to_json()),
            ("think_time_ratio", self.think_time_ratio.to_json()),
            ("steady_state_perc", self.steady_state_perc.to_json()),
            ("noise", self.noise.to_json()),
            ("zipf_theta", self.zipf_theta.to_json()),
            ("disk_sizes", self.disk_sizes.to_json()),
            ("rel_freqs", self.rel_freqs.to_json()),
            ("offset", self.offset.to_json()),
            ("server_queue_size", self.server_queue_size.to_json()),
            ("pull_bw", self.pull_bw.to_json()),
            ("thres_perc", self.thres_perc.to_json()),
            ("chop", self.chop.to_json()),
            ("algorithm", self.algorithm.to_json()),
            ("mc_cache_policy", self.mc_cache_policy.to_json()),
            ("queue_discipline", self.queue_discipline.to_json()),
            ("mc_prefetch", self.mc_prefetch.to_json()),
            ("update_rate", self.update_rate.to_json()),
            (
                "update_access_correlation",
                self.update_access_correlation.to_json(),
            ),
            ("seed", self.seed.to_json()),
        ]);
        // The K-channel member appears only when the broadcast is actually
        // split: single-channel configs serialize byte-for-byte as they
        // did before the extension existed.
        if self.num_channels != 1 {
            if let Json::Obj(members) = &mut obj {
                members.push(("num_channels".to_string(), self.num_channels.to_json()));
            }
        }
        // The fault member is emitted only when the fault model deviates
        // from none(): configs that don't use it serialize byte-for-byte
        // as they did before the robustness extension existed.
        if self.fault.enabled() {
            if let Json::Obj(members) = &mut obj {
                members.push(("fault".to_string(), self.fault.to_json()));
            }
        }
        // Same contract for the observability block: the obs member appears
        // only when the layer is switched on.
        if self.obs.enabled {
            if let Json::Obj(members) = &mut obj {
                members.push(("obs".to_string(), self.obs.to_json()));
            }
        }
        // And for the population model: aggregate-population configs stay
        // byte-identical to the pre-fleet serialization.
        if self.population.is_fleet() {
            if let Json::Obj(members) = &mut obj {
                members.push(("population".to_string(), self.population.to_json()));
            }
        }
        obj
    }
}

impl FromJson for SystemConfig {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(SystemConfig {
            db_size: field(v, "db_size")?,
            cache_size: field(v, "cache_size")?,
            mc_think_time: field(v, "mc_think_time")?,
            think_time_ratio: field(v, "think_time_ratio")?,
            steady_state_perc: field(v, "steady_state_perc")?,
            noise: field(v, "noise")?,
            zipf_theta: field(v, "zipf_theta")?,
            disk_sizes: field(v, "disk_sizes")?,
            rel_freqs: field(v, "rel_freqs")?,
            offset: field(v, "offset")?,
            server_queue_size: field(v, "server_queue_size")?,
            pull_bw: field(v, "pull_bw")?,
            thres_perc: field(v, "thres_perc")?,
            chop: field(v, "chop")?,
            algorithm: field(v, "algorithm")?,
            mc_cache_policy: field(v, "mc_cache_policy")?,
            queue_discipline: field(v, "queue_discipline")?,
            mc_prefetch: field(v, "mc_prefetch")?,
            update_rate: field(v, "update_rate")?,
            update_access_correlation: field(v, "update_access_correlation")?,
            seed: field(v, "seed")?,
            num_channels: opt_field(v, "num_channels")?.unwrap_or(1),
            fault: opt_field(v, "fault")?.unwrap_or_default(),
            obs: opt_field(v, "obs")?.unwrap_or_default(),
            population: opt_field(v, "population")?.unwrap_or_default(),
        })
    }
}

/// Measurement protocol for steady-state runs (§4: cache warm-up is
/// excluded, 4000 accesses are skipped, then the run continues "until the
/// response time stabilized").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasurementProtocol {
    /// MC accesses discarded after the cache first fills.
    pub skip_accesses: u64,
    /// Observations per batch for the batch-means estimator.
    pub batch_size: u64,
    /// Relative 95%-CI half-width at which the run stops.
    pub rel_precision: f64,
    /// Minimum completed batches before convergence is considered.
    pub min_batches: usize,
    /// Hard cap on measured MC accesses (guards pathological configs).
    pub max_accesses: u64,
    /// Cap on MC accesses spent waiting for the cache to fill before
    /// measurement proceeds anyway (under heavy update churn the cache may
    /// never reach capacity).
    pub max_warmup_accesses: u64,
    /// Hard cap on simulated time, in broadcast units.
    pub max_sim_time: f64,
}

impl MeasurementProtocol {
    /// The paper-faithful protocol (slow but precise).
    pub fn paper() -> Self {
        MeasurementProtocol {
            skip_accesses: 4000,
            batch_size: 500,
            rel_precision: 0.015,
            min_batches: 12,
            max_accesses: 200_000,
            max_warmup_accesses: 50_000,
            max_sim_time: 5.0e8,
        }
    }

    /// A fast protocol for tests, doctests and smoke runs.
    pub fn quick() -> Self {
        MeasurementProtocol {
            skip_accesses: 200,
            batch_size: 100,
            rel_precision: 0.10,
            min_batches: 4,
            max_accesses: 4_000,
            max_warmup_accesses: 2_000,
            max_sim_time: 5.0e6,
        }
    }

    /// Check the protocol's parameters, returning a description of the
    /// first problem found. The caps (`skip_accesses`,
    /// `max_warmup_accesses`) accept any value including 0 and are named
    /// here check-free.
    pub fn validate(&self) -> Result<(), String> {
        let MeasurementProtocol {
            skip_accesses: _,
            max_warmup_accesses: _,
            ..
        } = self;
        if self.batch_size == 0 {
            return Err("batch_size must be positive".to_string());
        }
        if self.min_batches == 0 {
            return Err("min_batches must be positive".to_string());
        }
        if !self.rel_precision.is_finite() || self.rel_precision <= 0.0 {
            return Err(format!(
                "rel_precision must be finite and positive, got {}",
                self.rel_precision
            ));
        }
        if self.max_accesses == 0 {
            return Err("max_accesses must be positive".to_string());
        }
        if !self.max_sim_time.is_finite() || self.max_sim_time <= 0.0 {
            return Err(format!(
                "max_sim_time must be finite and positive, got {}",
                self.max_sim_time
            ));
        }
        Ok(())
    }
}

impl ToJson for MeasurementProtocol {
    fn to_json(&self) -> Json {
        Json::object([
            ("skip_accesses", self.skip_accesses.to_json()),
            ("batch_size", self.batch_size.to_json()),
            ("rel_precision", self.rel_precision.to_json()),
            ("min_batches", self.min_batches.to_json()),
            ("max_accesses", self.max_accesses.to_json()),
            ("max_warmup_accesses", self.max_warmup_accesses.to_json()),
            ("max_sim_time", self.max_sim_time.to_json()),
        ])
    }
}

impl FromJson for MeasurementProtocol {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(MeasurementProtocol {
            skip_accesses: field(v, "skip_accesses")?,
            batch_size: field(v, "batch_size")?,
            rel_precision: field(v, "rel_precision")?,
            min_batches: field(v, "min_batches")?,
            max_accesses: field(v, "max_accesses")?,
            max_warmup_accesses: field(v, "max_warmup_accesses")?,
            max_sim_time: field(v, "max_sim_time")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn errors_of(c: &SystemConfig) -> Vec<ConfigError> {
        c.validate().unwrap_err().0
    }

    #[test]
    fn paper_default_validates() {
        SystemConfig::paper_default().validate().unwrap();
        SystemConfig::small().validate().unwrap();
    }

    #[test]
    fn effective_pull_bw_per_algorithm() {
        let mut c = SystemConfig::paper_default();
        c.pull_bw = 0.3;
        c.algorithm = Algorithm::PurePush;
        assert_eq!(c.effective_pull_bw(), 0.0);
        c.algorithm = Algorithm::PurePull;
        assert_eq!(c.effective_pull_bw(), 1.0);
        c.algorithm = Algorithm::Ipp;
        assert_eq!(c.effective_pull_bw(), 0.3);
    }

    #[test]
    fn default_cache_policy_follows_algorithm() {
        let mut c = SystemConfig::paper_default();
        c.algorithm = Algorithm::PurePull;
        assert_eq!(c.effective_cache_policy(), CachePolicy::P);
        c.algorithm = Algorithm::Ipp;
        assert_eq!(c.effective_cache_policy(), CachePolicy::Pix);
        c.mc_cache_policy = Some(CachePolicy::Lru);
        assert_eq!(c.effective_cache_policy(), CachePolicy::Lru);
    }

    #[test]
    fn vc_interarrival_formula() {
        let mut c = SystemConfig::paper_default();
        c.think_time_ratio = 250.0;
        assert!((c.vc_mean_interarrival() - 0.08).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must sum to db_size")]
    fn mismatched_disks_fail_validation() {
        let mut c = SystemConfig::paper_default();
        c.disk_sizes = vec![100, 400, 400];
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "cache larger than database")]
    fn oversized_cache_fails_validation() {
        let mut c = SystemConfig::small();
        c.cache_size = 1000;
        c.assert_valid();
    }

    // One test per ConfigError variant: the right variant is reported, with
    // the offending values attached.

    #[test]
    fn empty_database_is_reported() {
        let mut c = SystemConfig::small();
        c.db_size = 0;
        c.disk_sizes = vec![];
        c.rel_freqs = vec![];
        c.cache_size = 0;
        c.chop = 0;
        let errs = errors_of(&c);
        assert!(errs.contains(&ConfigError::EmptyDatabase));
        assert!(errs.contains(&ConfigError::NoDisks));
    }

    #[test]
    fn disk_size_sum_mismatch_is_reported() {
        let mut c = SystemConfig::small();
        c.disk_sizes = vec![10, 40, 40];
        assert_eq!(
            errors_of(&c),
            vec![ConfigError::DiskSizeSum {
                disk_sizes: vec![10, 40, 40],
                db_size: 100
            }]
        );
    }

    #[test]
    fn invalid_zipf_theta_is_reported() {
        let mut c = SystemConfig::small();
        c.zipf_theta = -0.5;
        assert_eq!(errors_of(&c), vec![ConfigError::InvalidZipfTheta(-0.5)]);
        c.zipf_theta = f64::NAN;
        assert_eq!(errors_of(&c).len(), 1);
        c.zipf_theta = 0.0; // uniform access is valid
        c.validate().unwrap();
    }

    #[test]
    fn empty_server_queue_is_reported() {
        let mut c = SystemConfig::small();
        c.server_queue_size = 0;
        assert_eq!(errors_of(&c), vec![ConfigError::EmptyQueue]);
    }

    #[test]
    fn measurement_protocol_bounds() {
        MeasurementProtocol::paper().validate().unwrap();
        MeasurementProtocol::quick().validate().unwrap();
        let mut p = MeasurementProtocol::quick();
        p.batch_size = 0;
        assert!(p.validate().unwrap_err().contains("batch_size"));
        p = MeasurementProtocol::quick();
        p.rel_precision = 0.0;
        assert!(p.validate().unwrap_err().contains("rel_precision"));
        p = MeasurementProtocol::quick();
        p.max_sim_time = f64::INFINITY;
        assert!(p.validate().unwrap_err().contains("max_sim_time"));
        p = MeasurementProtocol::quick();
        p.min_batches = 0;
        assert!(p.validate().unwrap_err().contains("min_batches"));
        p = MeasurementProtocol::quick();
        p.max_accesses = 0;
        assert!(p.validate().unwrap_err().contains("max_accesses"));
    }

    #[test]
    fn disk_freq_arity_mismatch_is_reported() {
        let mut c = SystemConfig::small();
        c.rel_freqs = vec![3, 2];
        assert_eq!(
            errors_of(&c),
            vec![ConfigError::DiskFreqArity { disks: 3, freqs: 2 }]
        );
    }

    #[test]
    fn oversized_cache_is_reported() {
        let mut c = SystemConfig::small();
        c.cache_size = 1000;
        let errs = errors_of(&c);
        assert!(errs.contains(&ConfigError::CacheTooLarge {
            cache_size: 1000,
            db_size: 100
        }));
        // The offset cross-check fires too (cache > slowest disk).
        assert!(errs.contains(&ConfigError::OffsetCacheTooLarge {
            cache_size: 1000,
            slowest: 50
        }));
    }

    #[test]
    fn non_positive_think_time_is_reported() {
        let mut c = SystemConfig::small();
        c.mc_think_time = 0.0;
        assert_eq!(errors_of(&c), vec![ConfigError::NonPositiveThinkTime(0.0)]);
    }

    #[test]
    fn non_positive_think_time_ratio_is_reported() {
        let mut c = SystemConfig::small();
        c.think_time_ratio = -1.0;
        assert_eq!(
            errors_of(&c),
            vec![ConfigError::NonPositiveThinkTimeRatio(-1.0)]
        );
    }

    #[test]
    fn invalid_update_rate_is_reported() {
        let mut c = SystemConfig::small();
        c.update_rate = f64::INFINITY;
        assert_eq!(
            errors_of(&c),
            vec![ConfigError::InvalidUpdateRate(f64::INFINITY)]
        );
    }

    #[test]
    fn fraction_out_of_range_is_reported_per_field() {
        let mut c = SystemConfig::small();
        c.pull_bw = 1.5;
        c.noise = -0.25;
        assert_eq!(
            errors_of(&c),
            vec![
                ConfigError::FractionOutOfRange {
                    field: "noise",
                    value: -0.25
                },
                ConfigError::FractionOutOfRange {
                    field: "pull_bw",
                    value: 1.5
                },
            ]
        );
    }

    #[test]
    fn chop_too_large_is_reported() {
        let mut c = SystemConfig::small();
        c.chop = 101;
        assert_eq!(
            errors_of(&c),
            vec![ConfigError::ChopTooLarge {
                chop: 101,
                db_size: 100
            }]
        );
    }

    #[test]
    fn offset_cache_constraint_is_reported() {
        let mut c = SystemConfig::small();
        c.cache_size = 60; // fits the 100-page database, not the 50-page slowest disk
        assert_eq!(
            errors_of(&c),
            vec![ConfigError::OffsetCacheTooLarge {
                cache_size: 60,
                slowest: 50
            }]
        );
        // Pure-Pull has no broadcast program, so the constraint vanishes.
        c.algorithm = Algorithm::PurePull;
        c.validate().unwrap();
    }

    #[test]
    fn invalid_brownout_window_is_reported() {
        let mut c = SystemConfig::small();
        c.fault.brownout_period = -5.0;
        let errs = errors_of(&c);
        assert!(errs.contains(&ConfigError::InvalidBrownout {
            field: "fault.brownout_period",
            value: -5.0
        }));
    }

    #[test]
    fn brownout_duration_exceeding_period_is_reported() {
        let mut c = SystemConfig::small();
        c.fault.brownout_period = 10.0;
        c.fault.brownout_duration = 11.0;
        assert_eq!(
            errors_of(&c),
            vec![ConfigError::BrownoutDurationExceedsPeriod {
                duration: 11.0,
                period: 10.0
            }]
        );
    }

    #[test]
    fn fault_loss_probabilities_are_range_checked() {
        let mut c = SystemConfig::small();
        c.fault.broadcast_loss = 1.5;
        c.fault.request_loss = -0.5;
        assert_eq!(
            errors_of(&c),
            vec![
                ConfigError::FractionOutOfRange {
                    field: "fault.broadcast_loss",
                    value: 1.5
                },
                ConfigError::FractionOutOfRange {
                    field: "fault.request_loss",
                    value: -0.5
                },
            ]
        );
    }

    #[test]
    fn invalid_retry_policy_is_reported() {
        let mut c = SystemConfig::small();
        c.fault.retry = RetryPolicy {
            backoff_factor: 0.5,
            ..RetryPolicy::standard()
        };
        let errs = errors_of(&c);
        assert_eq!(errs.len(), 1);
        assert!(matches!(&errs[0], ConfigError::InvalidRetry(m) if m.contains("backoff_factor")));
    }

    #[test]
    fn invalid_degrade_policy_is_reported() {
        let mut c = SystemConfig::small();
        c.fault.degrade = SaturationPolicy {
            on_occupancy: 0.5,
            off_occupancy: 0.9,
            ..SaturationPolicy::standard()
        };
        let errs = errors_of(&c);
        assert_eq!(errs.len(), 1);
        assert!(matches!(&errs[0], ConfigError::InvalidDegrade(m) if m.contains("off_occupancy")));
    }

    #[test]
    fn all_violations_are_reported_at_once() {
        let mut c = SystemConfig::small();
        c.disk_sizes = vec![10, 40, 40];
        c.mc_think_time = -1.0;
        c.pull_bw = 2.0;
        c.fault.broadcast_loss = 3.0;
        let errs = errors_of(&c);
        assert_eq!(errs.len(), 4, "expected every violation listed: {errs:?}");
        // And the joined message reads like the old panic strings.
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("must sum to db_size"));
        assert!(msg.contains("; "), "violations joined into one message");
    }

    #[test]
    fn config_round_trips_through_json() {
        let c = SystemConfig::paper_default();
        let s = bpp_json::to_string(&c);
        let back: SystemConfig = bpp_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn every_enum_variant_round_trips_through_json() {
        // Cover each variant of each enum field, the optional policy in
        // both states, and a max-range seed (u64::MAX needs the writer's
        // full integer width).
        let mut variants = Vec::new();
        for algorithm in [Algorithm::PurePush, Algorithm::PurePull, Algorithm::Ipp] {
            for policy in [
                None,
                Some(CachePolicy::Pix),
                Some(CachePolicy::P),
                Some(CachePolicy::Lru),
                Some(CachePolicy::Lfu),
            ] {
                for discipline in [QueueDiscipline::Fifo, QueueDiscipline::MostRequested] {
                    let mut c = SystemConfig::small();
                    c.algorithm = algorithm;
                    c.mc_cache_policy = policy;
                    c.queue_discipline = discipline;
                    c.seed = u64::MAX;
                    variants.push(c);
                }
            }
        }
        for c in variants {
            let s = bpp_json::to_string_pretty(&c);
            let back: SystemConfig = bpp_json::from_str(&s).unwrap();
            assert_eq!(c, back, "variant did not survive the trip: {s}");
        }
    }

    #[test]
    fn protocol_round_trips_through_json() {
        for p in [MeasurementProtocol::paper(), MeasurementProtocol::quick()] {
            let s = bpp_json::to_string(&p);
            let back: MeasurementProtocol = bpp_json::from_str(&s).unwrap();
            assert_eq!(p, back);
        }
    }

    #[test]
    fn disabled_fault_model_is_invisible_in_json() {
        let c = SystemConfig::paper_default();
        assert!(!c.fault.enabled());
        let s = bpp_json::to_string(&c);
        assert!(!s.contains("fault"), "no-op fault model leaked into JSON");
        // And a pre-extension document (no `fault` key) parses to none().
        let back: SystemConfig = bpp_json::from_str(&s).unwrap();
        assert_eq!(back.fault, FaultConfig::none());
    }

    #[test]
    fn enabled_fault_model_round_trips_through_json() {
        let mut c = SystemConfig::small();
        c.fault = FaultConfig::lossy(0.1);
        c.fault.brownout_period = 500.0;
        c.fault.brownout_duration = 50.0;
        c.fault.overflow = OverflowPolicy::DropOldest;
        c.validate().unwrap();
        let s = bpp_json::to_string_pretty(&c);
        assert!(s.contains("\"fault\""));
        let back: SystemConfig = bpp_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn disabled_obs_block_is_invisible_in_json() {
        let c = SystemConfig::paper_default();
        assert!(!c.obs.enabled);
        let s = bpp_json::to_string(&c);
        assert!(!s.contains("obs"), "no-op obs block leaked into JSON");
        // And a pre-obs document parses to the disabled default.
        let back: SystemConfig = bpp_json::from_str(&s).unwrap();
        assert_eq!(back.obs, ObsConfig::default());
    }

    #[test]
    fn enabled_obs_block_round_trips_through_json() {
        let mut c = SystemConfig::small();
        c.obs.enabled = true;
        c.obs.timeline_stride = 25.0;
        c.obs.trace_capacity = 64;
        c.validate().unwrap();
        let s = bpp_json::to_string_pretty(&c);
        assert!(s.contains("\"obs\""));
        let back: SystemConfig = bpp_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn invalid_obs_config_is_reported() {
        let mut c = SystemConfig::small();
        c.obs.timeline_stride = -1.0;
        let errs = errors_of(&c);
        assert_eq!(errs.len(), 1);
        assert!(matches!(&errs[0], ConfigError::InvalidObs(m) if m.contains("timeline_stride")));
    }

    #[test]
    fn aggregate_population_is_invisible_in_json() {
        let c = SystemConfig::paper_default();
        assert!(!c.population.is_fleet());
        let s = bpp_json::to_string(&c);
        assert!(
            !s.contains("population"),
            "aggregate population leaked into JSON"
        );
        // And a pre-fleet document parses to the aggregate default.
        let back: SystemConfig = bpp_json::from_str(&s).unwrap();
        assert_eq!(back.population, ClientPopulation::aggregate());
    }

    #[test]
    fn fleet_population_round_trips_through_json() {
        let mut c = SystemConfig::small();
        c.population = ClientPopulation::fleet(500);
        c.validate().unwrap();
        let s = bpp_json::to_string_pretty(&c);
        assert!(s.contains("\"population\""));
        assert!(s.contains("\"fleet_clients\""));
        let back: SystemConfig = bpp_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn single_channel_is_invisible_in_json() {
        let c = SystemConfig::paper_default();
        assert_eq!(c.num_channels, 1);
        let s = bpp_json::to_string_pretty(&c);
        assert!(
            !s.contains("num_channels"),
            "K=1 must serialize byte-identically to the pre-extension form"
        );
        let back: SystemConfig = bpp_json::from_str(&s).unwrap();
        assert_eq!(back.num_channels, 1);
        assert_eq!(c, back);
    }

    #[test]
    fn multi_channel_round_trips_through_json() {
        let mut c = SystemConfig::small();
        c.num_channels = 4;
        c.validate().unwrap();
        let s = bpp_json::to_string_pretty(&c);
        assert!(s.contains("\"num_channels\": 4"));
        let back: SystemConfig = bpp_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn zero_channels_is_reported() {
        let mut c = SystemConfig::small();
        c.num_channels = 0;
        let errs = errors_of(&c);
        assert_eq!(errs, vec![ConfigError::NoChannels]);
        assert!(errs[0].to_string().contains("num_channels"));
    }

    #[test]
    fn oversized_fleet_is_reported() {
        let mut c = SystemConfig::small();
        c.population = ClientPopulation::fleet(u32::MAX as usize + 1);
        let errs = errors_of(&c);
        assert_eq!(errs.len(), 1);
        assert!(
            matches!(&errs[0], ConfigError::InvalidPopulation(m) if m.contains("fleet_clients"))
        );
    }

    #[test]
    fn lossy_preset_is_enabled_and_valid() {
        assert!(!FaultConfig::none().enabled());
        let f = FaultConfig::lossy(0.2);
        assert!(f.enabled());
        let mut c = SystemConfig::small();
        c.fault = f;
        c.validate().unwrap();
    }

    #[test]
    fn brownout_window_membership() {
        let f = FaultConfig {
            brownout_period: 100.0,
            brownout_duration: 10.0,
            ..FaultConfig::none()
        };
        assert!(f.in_brownout(0.0));
        assert!(f.in_brownout(9.9));
        assert!(!f.in_brownout(10.0));
        assert!(!f.in_brownout(99.0));
        assert!(f.in_brownout(105.0));
        assert!(!FaultConfig::none().in_brownout(0.0));
    }

    #[test]
    fn disabled_crash_model_is_invisible_in_json() {
        // A fault model with loss but no crashes must serialize exactly as
        // it did before the crash domain existed: no crash/admission keys.
        let mut c = SystemConfig::small();
        c.fault = FaultConfig::lossy(0.1);
        assert!(!c.fault.crash.enabled());
        assert!(!c.fault.admission.enabled());
        let s = bpp_json::to_string(&c);
        assert!(!s.contains("crash"), "no-op crash model leaked into JSON");
        assert!(!s.contains("admission"), "no-op admission leaked into JSON");
        // And a pre-crash-domain document parses to the disabled defaults.
        let back: SystemConfig = bpp_json::from_str(&s).unwrap();
        assert_eq!(back.fault.crash, CrashConfig::none());
        assert_eq!(back.fault.admission, AdmissionConfig::disabled());
    }

    #[test]
    fn enabled_crash_model_round_trips_through_json() {
        let mut c = SystemConfig::small();
        c.fault.crash = CrashConfig {
            mtbf: 2000.0,
            downtime: 64.0,
            schedule: Vec::new(),
            reconnect_jitter: 0.5,
            recovery_epsilon: 0.05,
        };
        c.fault.admission = AdmissionConfig::standard();
        c.validate().unwrap();
        let s = bpp_json::to_string_pretty(&c);
        assert!(s.contains("\"crash\""));
        assert!(s.contains("\"admission\""));
        let back: SystemConfig = bpp_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn explicit_crash_schedule_round_trips_through_json() {
        let mut c = SystemConfig::small();
        c.fault.crash = CrashConfig {
            schedule: vec![100.0, 450.5, 900.0],
            downtime: 32.0,
            ..CrashConfig::none()
        };
        c.validate().unwrap();
        let back: SystemConfig = bpp_json::from_str(&bpp_json::to_string(&c)).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn crash_validation_rejects_malformed_models() {
        // mtbf and an explicit schedule are alternative crash sources.
        let mut c = SystemConfig::small();
        c.fault.crash = CrashConfig {
            mtbf: 1000.0,
            schedule: vec![50.0],
            downtime: 10.0,
            ..CrashConfig::none()
        };
        let errs = errors_of(&c);
        assert!(
            matches!(&errs[0], ConfigError::InvalidCrash(m) if m.contains("mutually exclusive"))
        );
        // Crashes without downtime make no sense.
        c.fault.crash = CrashConfig {
            mtbf: 1000.0,
            downtime: 0.0,
            ..CrashConfig::none()
        };
        let errs = errors_of(&c);
        assert!(matches!(&errs[0], ConfigError::InvalidCrash(m) if m.contains("downtime")));
        // Schedules must be strictly increasing.
        c.fault.crash = CrashConfig {
            schedule: vec![100.0, 100.0],
            downtime: 10.0,
            ..CrashConfig::none()
        };
        let errs = errors_of(&c);
        assert!(
            matches!(&errs[0], ConfigError::InvalidCrash(m) if m.contains("strictly increasing"))
        );
        // Jitter is a fraction.
        c.fault.crash = CrashConfig {
            mtbf: 1000.0,
            downtime: 10.0,
            reconnect_jitter: 1.5,
            ..CrashConfig::none()
        };
        let errs = errors_of(&c);
        assert!(matches!(&errs[0], ConfigError::InvalidCrash(m) if m.contains("reconnect_jitter")));
    }

    #[test]
    fn admission_validation_is_surfaced() {
        let mut c = SystemConfig::small();
        c.fault.admission = AdmissionConfig {
            rate: 1.0,
            burst: 0.0,
            retry_after: 8.0,
        };
        let errs = errors_of(&c);
        assert!(matches!(&errs[0], ConfigError::InvalidAdmission(m) if m.contains("burst")));
    }

    #[test]
    fn unknown_enum_variant_is_rejected() {
        let mut v = SystemConfig::paper_default().to_json();
        if let Json::Obj(members) = &mut v {
            for (k, val) in members.iter_mut() {
                if k == "algorithm" {
                    *val = Json::Str("Hybrid".to_string());
                }
            }
        }
        assert!(SystemConfig::from_json(&v).is_err());
    }
}
