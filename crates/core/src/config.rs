//! System configuration — Tables 1, 2 and 3 of the paper.

use serde::{Deserialize, Serialize};

/// The three data-delivery algorithms compared in the paper (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Broadcast Disk only; `PullBW = 0`, no backchannel.
    PurePush,
    /// Request/response with snooping; `PullBW = 100%`, no periodic
    /// broadcast.
    PurePull,
    /// Interleaved Push and Pull: periodic broadcast plus pull responses,
    /// split by `pull_bw`, with the client threshold filter.
    Ipp,
}

impl Algorithm {
    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::PurePush => "Push",
            Algorithm::PurePull => "Pull",
            Algorithm::Ipp => "IPP",
        }
    }
}

/// Client cache replacement policy.
///
/// The paper uses PIX whenever pages are retrieved from a Broadcast Disk
/// and P under Pure-Pull; LRU/LFU are kept as ablation baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CachePolicy {
    /// Probability over broadcast frequency (`p/x`).
    Pix,
    /// Plain access probability.
    P,
    /// Least recently used (strawman).
    Lru,
    /// Least frequently used (strawman).
    Lfu,
}

/// Server queue service order (see `bpp_server::Discipline`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// First in, first out — the paper's discipline.
    #[default]
    Fifo,
    /// Serve the page with the most coalesced waiters first (extension).
    MostRequested,
}

/// Full parameterisation of one simulated system.
///
/// Defaults ([`SystemConfig::paper_default`]) reproduce Table 3. All
/// percentages are fractions in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Distinct pages at the server (`ServerDBSize`).
    pub db_size: usize,
    /// Client cache size in pages (`CacheSize`).
    pub cache_size: usize,
    /// Measured Client think time in broadcast units (`ThinkTime`).
    pub mc_think_time: f64,
    /// Virtual-Client intensity relative to the MC (`ThinkTimeRatio`):
    /// the VC generates requests this many times more frequently.
    pub think_time_ratio: f64,
    /// Fraction of the VC population in steady state (`SteadyStatePerc`).
    pub steady_state_perc: f64,
    /// MC access-pattern perturbation (`Noise`).
    pub noise: f64,
    /// Zipf skew θ.
    pub zipf_theta: f64,
    /// Pages per disk, fastest first (`DiskSize_i`).
    pub disk_sizes: Vec<usize>,
    /// Relative disk frequencies, fastest first (`RelFreq_i`).
    pub rel_freqs: Vec<u32>,
    /// Apply the Offset transform (all paper results do).
    pub offset: bool,
    /// Backchannel queue capacity in distinct pages (`ServerQSize`).
    pub server_queue_size: usize,
    /// Upper bound on the broadcast slots serving pulls (`PullBW`),
    /// meaningful for [`Algorithm::Ipp`] only (Push forces 0, Pull 1).
    pub pull_bw: f64,
    /// Client threshold as a fraction of the major cycle (`ThresPerc`).
    pub thres_perc: f64,
    /// Pages truncated from the push schedule, slowest disk first
    /// (Experiment 3). 0 = broadcast the whole database.
    pub chop: usize,
    /// Which delivery algorithm to run.
    pub algorithm: Algorithm,
    /// MC cache policy; `None` picks the paper's choice for the algorithm
    /// (PIX for Push/IPP, P for Pure-Pull).
    pub mc_cache_policy: Option<CachePolicy>,
    /// Server queue service discipline (the paper uses FIFO;
    /// most-requested-first is an extension ablation).
    pub queue_discipline: QueueDiscipline,
    /// Opportunistic client prefetching (\[Acha96a\], extension): offer every
    /// page heard on the frontchannel to the MC cache, letting the
    /// value-based admission test decide. The paper's demand-driven
    /// baseline is `false`.
    pub mc_prefetch: bool,
    /// Server update rate in updates per broadcast unit (\[Acha96b\],
    /// extension; this paper assumes read-only data, i.e. 0.0). Updates
    /// pick pages from the same skewed popularity distribution and
    /// invalidate client-cached copies.
    pub update_rate: f64,
    /// Correlation between the update pattern and the access pattern
    /// (\[Acha96b\]): 1.0 means updates hit pages with their access
    /// probability (hot data churns), 0.0 means updates are uniform.
    pub update_access_correlation: f64,
    /// Root seed for every random stream in the run.
    pub seed: u64,
}

impl SystemConfig {
    /// Table 3 defaults: 1000 pages, 3 disks (100/400/500 at 3:2:1),
    /// cache 100, think time 20, queue 100, offset on, θ = 0.95,
    /// `SteadyStatePerc` 95%, IPP at `PullBW` 50% with no threshold.
    pub fn paper_default() -> Self {
        SystemConfig {
            db_size: 1000,
            cache_size: 100,
            mc_think_time: 20.0,
            think_time_ratio: 10.0,
            steady_state_perc: 0.95,
            noise: 0.0,
            zipf_theta: 0.95,
            disk_sizes: vec![100, 400, 500],
            rel_freqs: vec![3, 2, 1],
            offset: true,
            server_queue_size: 100,
            pull_bw: 0.5,
            thres_perc: 0.0,
            chop: 0,
            algorithm: Algorithm::Ipp,
            mc_cache_policy: None,
            queue_discipline: QueueDiscipline::Fifo,
            mc_prefetch: false,
            update_rate: 0.0,
            update_access_correlation: 1.0,
            seed: 0x5EED_B0DC,
        }
    }

    /// Table 3 with the Zipf skew *calibrated to the paper's absolute
    /// numbers* (θ = 0.72 instead of the quoted 0.95).
    ///
    /// The paper states θ = 0.95, but three independent checkpoints of its
    /// text — the Pure-Push flat line at 278 broadcast units, 39.9% of
    /// requests dropped under Pure-Pull at ThinkTimeRatio 50, and 68.8%
    /// under IPP at the same load — are only mutually consistent with a
    /// per-page popularity skew whose 100 hottest pages carry ≈ 47% of the
    /// access mass. The standard `p(i) ∝ 1/i^0.95` convention gives 65%.
    /// θ = 0.72 under the standard convention reproduces all three
    /// checkpoints to within a few percent (see EXPERIMENTS.md); the
    /// difference is presumably a coarser-grained Zipf in the original
    /// (unpublished) workload generator of \[Acha95a\].
    pub fn paper_calibrated() -> Self {
        SystemConfig {
            zipf_theta: 0.72,
            ..Self::paper_default()
        }
    }

    /// A scaled-down configuration for unit/integration tests: 100 pages,
    /// 3 disks (10/40/50), cache 10, queue 10.
    pub fn small() -> Self {
        SystemConfig {
            db_size: 100,
            cache_size: 10,
            disk_sizes: vec![10, 40, 50],
            server_queue_size: 10,
            ..Self::paper_default()
        }
    }

    /// The effective pull bandwidth after the algorithm override.
    pub fn effective_pull_bw(&self) -> f64 {
        match self.algorithm {
            Algorithm::PurePush => 0.0,
            Algorithm::PurePull => 1.0,
            Algorithm::Ipp => self.pull_bw,
        }
    }

    /// The effective MC cache policy.
    pub fn effective_cache_policy(&self) -> CachePolicy {
        self.mc_cache_policy.unwrap_or(match self.algorithm {
            Algorithm::PurePull => CachePolicy::P,
            _ => CachePolicy::Pix,
        })
    }

    /// Mean inter-arrival time of Virtual-Client accesses.
    pub fn vc_mean_interarrival(&self) -> f64 {
        self.mc_think_time / self.think_time_ratio
    }

    /// Validate ranges and cross-field constraints, panicking with a clear
    /// message on violation. Called by the runner before building a world.
    pub fn validate(&self) {
        assert!(self.db_size > 0, "db_size must be positive");
        assert!(
            self.disk_sizes.iter().sum::<usize>() == self.db_size,
            "disk sizes {:?} must sum to db_size {}",
            self.disk_sizes,
            self.db_size
        );
        assert_eq!(
            self.disk_sizes.len(),
            self.rel_freqs.len(),
            "one frequency per disk"
        );
        assert!(self.cache_size <= self.db_size, "cache larger than database");
        assert!(self.mc_think_time > 0.0, "think time must be positive");
        assert!(self.think_time_ratio > 0.0, "ThinkTimeRatio must be positive");
        assert!(
            self.update_rate >= 0.0 && self.update_rate.is_finite(),
            "update_rate must be finite and >= 0"
        );
        for (name, v) in [
            ("steady_state_perc", self.steady_state_perc),
            ("noise", self.noise),
            ("pull_bw", self.pull_bw),
            ("thres_perc", self.thres_perc),
            ("update_access_correlation", self.update_access_correlation),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name} must be in [0,1], got {v}");
        }
        assert!(self.chop <= self.db_size, "cannot chop more than the database");
        if self.offset && self.algorithm != Algorithm::PurePull {
            let slowest = *self.disk_sizes.last().expect("validated non-empty");
            assert!(
                self.cache_size <= slowest,
                "offset requires cache_size <= slowest disk size"
            );
        }
    }
}

/// Measurement protocol for steady-state runs (§4: cache warm-up is
/// excluded, 4000 accesses are skipped, then the run continues "until the
/// response time stabilized").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasurementProtocol {
    /// MC accesses discarded after the cache first fills.
    pub skip_accesses: u64,
    /// Observations per batch for the batch-means estimator.
    pub batch_size: u64,
    /// Relative 95%-CI half-width at which the run stops.
    pub rel_precision: f64,
    /// Minimum completed batches before convergence is considered.
    pub min_batches: usize,
    /// Hard cap on measured MC accesses (guards pathological configs).
    pub max_accesses: u64,
    /// Cap on MC accesses spent waiting for the cache to fill before
    /// measurement proceeds anyway (under heavy update churn the cache may
    /// never reach capacity).
    pub max_warmup_accesses: u64,
    /// Hard cap on simulated time, in broadcast units.
    pub max_sim_time: f64,
}

impl MeasurementProtocol {
    /// The paper-faithful protocol (slow but precise).
    pub fn paper() -> Self {
        MeasurementProtocol {
            skip_accesses: 4000,
            batch_size: 500,
            rel_precision: 0.015,
            min_batches: 12,
            max_accesses: 200_000,
            max_warmup_accesses: 50_000,
            max_sim_time: 5.0e8,
        }
    }

    /// A fast protocol for tests, doctests and smoke runs.
    pub fn quick() -> Self {
        MeasurementProtocol {
            skip_accesses: 200,
            batch_size: 100,
            rel_precision: 0.10,
            min_batches: 4,
            max_accesses: 4_000,
            max_warmup_accesses: 2_000,
            max_sim_time: 5.0e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_validates() {
        SystemConfig::paper_default().validate();
        SystemConfig::small().validate();
    }

    #[test]
    fn effective_pull_bw_per_algorithm() {
        let mut c = SystemConfig::paper_default();
        c.pull_bw = 0.3;
        c.algorithm = Algorithm::PurePush;
        assert_eq!(c.effective_pull_bw(), 0.0);
        c.algorithm = Algorithm::PurePull;
        assert_eq!(c.effective_pull_bw(), 1.0);
        c.algorithm = Algorithm::Ipp;
        assert_eq!(c.effective_pull_bw(), 0.3);
    }

    #[test]
    fn default_cache_policy_follows_algorithm() {
        let mut c = SystemConfig::paper_default();
        c.algorithm = Algorithm::PurePull;
        assert_eq!(c.effective_cache_policy(), CachePolicy::P);
        c.algorithm = Algorithm::Ipp;
        assert_eq!(c.effective_cache_policy(), CachePolicy::Pix);
        c.mc_cache_policy = Some(CachePolicy::Lru);
        assert_eq!(c.effective_cache_policy(), CachePolicy::Lru);
    }

    #[test]
    fn vc_interarrival_formula() {
        let mut c = SystemConfig::paper_default();
        c.think_time_ratio = 250.0;
        assert!((c.vc_mean_interarrival() - 0.08).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must sum to db_size")]
    fn mismatched_disks_fail_validation() {
        let mut c = SystemConfig::paper_default();
        c.disk_sizes = vec![100, 400, 400];
        c.validate();
    }

    #[test]
    #[should_panic(expected = "cache larger than database")]
    fn oversized_cache_fails_validation() {
        let mut c = SystemConfig::small();
        c.cache_size = 1000;
        c.validate();
    }

    #[test]
    fn config_round_trips_through_json() {
        let c = SystemConfig::paper_default();
        let s = serde_json::to_string(&c).unwrap();
        let back: SystemConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(c, back);
    }
}
