//! Deterministic chaos harness: a phased fault timeline over one run,
//! followed by a hard conservation audit.
//!
//! A [`FaultSchedule`] is a JSON-configurable sequence of [`FaultPhase`]s;
//! each phase holds the channel loss rates and brownout window for its
//! duration and may crash the server at a fixed offset into the phase.
//! [`run_chaos`] compiles the crash offsets into an explicit
//! [`CrashConfig`] schedule (so the timeline is reproducible bit for bit,
//! independent of any MTBF draw), drives the engine phase by phase, and
//! finishes by asserting the run's [`ConservationLedger`] — every
//! backchannel request sent must be accounted for by exactly one outcome.
//!
//! Phase transitions touch no RNG stream: loss coins keep drawing from
//! wherever they were, brownouts are a clock check, and crash times are
//! data. Two chaos runs with the same config, protocol and schedule are
//! therefore byte-identical.
//!
//! [`CrashConfig`]: crate::config::CrashConfig

use crate::config::{MeasurementProtocol, SystemConfig};
use crate::fault::ConservationLedger;
use crate::runner::{collect_steady_state, SteadyStateResult};
use crate::simulation::{Phase, World};
use bpp_json::{field, opt_field, FromJson, Json, JsonError, ToJson};
use bpp_sim::Confidence;

/// One segment of a chaos timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPhase {
    /// Phase length in broadcast units (finite, positive).
    pub duration: f64,
    /// Frontchannel loss rate during this phase (`[0,1]`).
    pub broadcast_loss: f64,
    /// Backchannel transit loss rate during this phase (`[0,1]`).
    pub request_loss: f64,
    /// Brownout cycle length during this phase; `0` disables brownouts.
    pub brownout_period: f64,
    /// Leading portion of each brownout cycle during which the server
    /// drops every arriving request.
    pub brownout_duration: f64,
    /// Crash the server this far into the phase (`None` = no crash here).
    pub crash_offset: Option<f64>,
}

impl FaultPhase {
    /// A calm segment: perfect channels, no brownouts, no crash.
    pub fn calm(duration: f64) -> Self {
        FaultPhase {
            duration,
            broadcast_loss: 0.0,
            request_loss: 0.0,
            brownout_period: 0.0,
            brownout_duration: 0.0,
            crash_offset: None,
        }
    }

    fn validate(&self, i: usize) -> Result<(), String> {
        if !(self.duration.is_finite() && self.duration > 0.0) {
            return Err(format!(
                "phase {i}: duration must be finite and positive, got {}",
                self.duration
            ));
        }
        for (name, rate) in [
            ("broadcast_loss", self.broadcast_loss),
            ("request_loss", self.request_loss),
        ] {
            if !(rate.is_finite() && (0.0..=1.0).contains(&rate)) {
                return Err(format!("phase {i}: {name} must be in [0,1], got {rate}"));
            }
        }
        if !(self.brownout_period.is_finite() && self.brownout_period >= 0.0) {
            return Err(format!(
                "phase {i}: brownout_period must be finite and non-negative, got {}",
                self.brownout_period
            ));
        }
        if !(self.brownout_duration.is_finite()
            && (0.0..=self.brownout_period).contains(&self.brownout_duration))
        {
            return Err(format!(
                "phase {i}: brownout_duration must be in [0, brownout_period], got {}",
                self.brownout_duration
            ));
        }
        if let Some(off) = self.crash_offset {
            if !(off.is_finite() && 0.0 <= off && off < self.duration) {
                return Err(format!(
                    "phase {i}: crash_offset must be in [0, duration), got {off}"
                ));
            }
        }
        Ok(())
    }
}

impl ToJson for FaultPhase {
    fn to_json(&self) -> Json {
        let mut obj = Json::object([
            ("duration", self.duration.to_json()),
            ("broadcast_loss", self.broadcast_loss.to_json()),
            ("request_loss", self.request_loss.to_json()),
            ("brownout_period", self.brownout_period.to_json()),
            ("brownout_duration", self.brownout_duration.to_json()),
        ]);
        if let Some(off) = self.crash_offset {
            if let Json::Obj(members) = &mut obj {
                members.push(("crash_offset".to_string(), off.to_json()));
            }
        }
        obj
    }
}

impl FromJson for FaultPhase {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(FaultPhase {
            duration: field(v, "duration")?,
            broadcast_loss: field(v, "broadcast_loss")?,
            request_loss: field(v, "request_loss")?,
            brownout_period: field(v, "brownout_period")?,
            brownout_duration: field(v, "brownout_duration")?,
            crash_offset: opt_field(v, "crash_offset")?,
        })
    }
}

/// A chaos timeline: consecutive [`FaultPhase`]s starting at time 0.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    /// The segments, in timeline order.
    pub phases: Vec<FaultPhase>,
}

impl FaultSchedule {
    /// Check the timeline for internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("schedule must have at least one phase".to_string());
        }
        for (i, p) in self.phases.iter().enumerate() {
            p.validate(i)?;
        }
        Ok(())
    }

    /// Total timeline length in broadcast units.
    pub fn total_duration(&self) -> f64 {
        self.phases.iter().map(|p| p.duration).sum()
    }

    /// Absolute crash times compiled from the per-phase offsets.
    pub fn crash_times(&self) -> Vec<f64> {
        let mut start = 0.0;
        let mut times = Vec::new();
        for p in &self.phases {
            if let Some(off) = p.crash_offset {
                times.push(start + off);
            }
            start += p.duration;
        }
        times
    }

    /// The worst loss rates anywhere on the timeline — the run is *built*
    /// with these so the channel-fault layer (and its RNG streams) exists
    /// whenever any phase needs it; per-phase transitions then re-point
    /// the live rates.
    fn max_loss(&self) -> (f64, f64) {
        let b = self
            .phases
            .iter()
            .fold(0.0, |m: f64, p| m.max(p.broadcast_loss));
        let r = self
            .phases
            .iter()
            .fold(0.0, |m: f64, p| m.max(p.request_loss));
        (b, r)
    }
}

impl ToJson for FaultSchedule {
    fn to_json(&self) -> Json {
        Json::object([("phases", self.phases.to_json())])
    }
}

impl FromJson for FaultSchedule {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(FaultSchedule {
            phases: field(v, "phases")?,
        })
    }
}

/// What a chaos run produces: the ordinary steady-state result (with its
/// `fault`/`crash` sections) plus the conservation ledger the auditor
/// already verified.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// The run's metrics, exactly as a plain steady-state run reports them.
    pub result: SteadyStateResult,
    /// The audited request-conservation ledger (clean by construction:
    /// [`run_chaos`] panics before returning a dirty one).
    pub ledger: ConservationLedger,
}

impl ToJson for ChaosResult {
    fn to_json(&self) -> Json {
        Json::object([
            ("result", self.result.to_json()),
            ("ledger", self.ledger.to_json()),
        ])
    }
}

/// Run one chaos timeline and audit it.
///
/// `cfg.fault.crash` supplies the crash *dynamics* (downtime, reconnect
/// jitter, recovery epsilon); the schedule supplies the crash *times*,
/// compiled into `crash.schedule`. A config arriving with an MTBF and a
/// schedule with crash offsets is rejected by config validation (the two
/// crash sources are mutually exclusive); an MTBF with an offset-free
/// schedule is fine — the timeline then only modulates the channels.
///
/// Panics on an invalid schedule/config, and — the auditor — on any
/// conservation violation at the end of the run.
pub fn run_chaos(
    cfg: &SystemConfig,
    proto: &MeasurementProtocol,
    schedule: &FaultSchedule,
) -> ChaosResult {
    if let Err(e) = schedule.validate() {
        // bpp-lint: allow(D3): the documented panicking contract, matching assert_valid
        panic!("invalid FaultSchedule: {e}");
    }
    let mut cfg = cfg.clone();
    let crash_times = schedule.crash_times();
    if !crash_times.is_empty() {
        cfg.fault.crash.schedule = crash_times;
    }
    let (max_b, max_r) = schedule.max_loss();
    let has_brownouts = schedule
        .phases
        .iter()
        .any(|p| p.brownout_period > 0.0 && p.brownout_duration > 0.0);
    cfg.fault.broadcast_loss = cfg.fault.broadcast_loss.max(max_b);
    cfg.fault.request_loss = cfg.fault.request_loss.max(max_r);
    if has_brownouts && !cfg.fault.has_brownouts() {
        // Placeholder so the channel-fault layer (and, in K-channel mode,
        // the per-channel brownout-state timelines) is constructed; a zero
        // duration would fail `has_brownouts()` and skip the layer
        // entirely. The values never bite: the first phase transition
        // below re-points the live window before any event runs.
        cfg.fault.brownout_period = schedule.total_duration();
        cfg.fault.brownout_duration = schedule.total_duration();
    }
    cfg.assert_valid();

    let mut engine = World::steady_state(&cfg, proto).into_engine();
    let mut t = 0.0;
    for p in &schedule.phases {
        {
            let w = engine.model_mut();
            w.set_channel_loss(p.broadcast_loss, p.request_loss);
            w.set_brownout(p.brownout_period, p.brownout_duration);
        }
        t += p.duration;
        engine.run_until(t);
    }

    let w = engine.model();
    let bm = w.responses();
    let converged = w.phase() == Phase::Measure
        && bm.count() < proto.max_accesses
        && bm.converged(Confidence::P95, proto.rel_precision, proto.min_batches);
    let result = collect_steady_state(w, engine.obs(), engine.now(), converged);
    let ledger = w.conservation_ledger();
    ledger.assert_clean();
    ChaosResult { result, ledger }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;

    fn base_cfg() -> SystemConfig {
        let mut cfg = SystemConfig::small();
        cfg.algorithm = Algorithm::Ipp;
        cfg.fault.crash.downtime = 20.0;
        cfg.fault.crash.recovery_epsilon = 0.25;
        cfg
    }

    fn stormy_schedule() -> FaultSchedule {
        FaultSchedule {
            phases: vec![
                FaultPhase::calm(300.0),
                FaultPhase {
                    duration: 400.0,
                    broadcast_loss: 0.1,
                    request_loss: 0.1,
                    crash_offset: Some(50.0),
                    ..FaultPhase::calm(400.0)
                },
                FaultPhase {
                    duration: 300.0,
                    brownout_period: 100.0,
                    brownout_duration: 20.0,
                    ..FaultPhase::calm(300.0)
                },
            ],
        }
    }

    #[test]
    fn schedule_round_trips_through_json() {
        let s = stormy_schedule();
        let text = bpp_json::to_string(&s);
        let back: FaultSchedule = bpp_json::from_str(&text).expect("round trip"); // bpp-lint: allow(D3): test asserts parse success
        assert_eq!(back, s);
        // Offset-free phases must not serialize a crash_offset key at all.
        let calm = bpp_json::to_string(&FaultPhase::calm(10.0));
        assert!(!calm.contains("crash_offset"));
    }

    #[test]
    fn schedule_validation_rejects_malformed_timelines() {
        let empty = FaultSchedule { phases: vec![] };
        assert!(empty.validate().is_err());
        let mut bad = stormy_schedule();
        bad.phases[1].crash_offset = Some(400.0); // == duration
        assert!(bad.validate().unwrap_err().contains("crash_offset"));
        let mut bad = stormy_schedule();
        bad.phases[0].broadcast_loss = 1.5;
        assert!(bad.validate().unwrap_err().contains("broadcast_loss"));
        let mut bad = stormy_schedule();
        bad.phases[2].brownout_duration = 200.0; // > period
        assert!(bad.validate().unwrap_err().contains("brownout_duration"));
    }

    #[test]
    fn crash_times_are_compiled_to_absolute_offsets() {
        let s = stormy_schedule();
        assert_eq!(s.crash_times(), vec![350.0]);
        assert_eq!(s.total_duration(), 1000.0);
    }

    #[test]
    fn chaos_run_is_deterministic_and_audited() {
        let cfg = base_cfg();
        let proto = MeasurementProtocol::quick();
        let schedule = stormy_schedule();
        let a = run_chaos(&cfg, &proto, &schedule);
        let b = run_chaos(&cfg, &proto, &schedule);
        assert_eq!(bpp_json::to_string(&a), bpp_json::to_string(&b));
        // The crash happened exactly where the timeline put it.
        let crash = a
            .result
            .fault
            .as_ref()
            .and_then(|f| f.crash.as_ref())
            .expect("crash section present");
        assert_eq!(crash.crashes, 1);
        assert_eq!(crash.first_crash_at, Some(350.0));
        assert!(crash.down_slots > 0);
        // The auditor balanced every request (it would have panicked
        // otherwise); spot-check the ledger is non-trivial.
        assert!(a.ledger.sent > 0);
        assert_eq!(a.ledger.accounted(), a.ledger.sent);
    }

    #[test]
    fn fleet_with_admission_and_crash_keeps_the_ledger_balanced() {
        // The hardest conservation case: every per-client request path
        // (real fleet, not the VC aggregate) crosses the token bucket,
        // and the mid-run crash both orphans queued requests and sends a
        // reconnect herd into a deliberately tight bucket.
        let mut cfg = base_cfg();
        cfg.population = crate::config::ClientPopulation::fleet(24);
        cfg.fault.admission = bpp_server::AdmissionConfig {
            rate: 0.25,
            burst: 2.0,
            retry_after: 16.0,
        };
        let r = run_chaos(&cfg, &MeasurementProtocol::quick(), &stormy_schedule());
        // `run_chaos` already asserted the ledger clean; re-state the
        // balance and check the interesting buckets actually moved.
        assert_eq!(r.ledger.accounted(), r.ledger.sent);
        assert!(r.ledger.sent > 0);
        assert!(
            r.ledger.orphaned > 0,
            "the scheduled crash must orphan in-flight work: {:?}",
            r.ledger
        );
        assert!(
            r.ledger.admission_rejected > 0,
            "the reconnect herd must hit the tight bucket: {:?}",
            r.ledger
        );
    }

    #[test]
    fn phase_losses_apply_only_inside_their_phase() {
        let mut cfg = base_cfg();
        cfg.fault.crash = crate::config::CrashConfig::none();
        let proto = MeasurementProtocol::quick();
        // 100% request loss in the middle phase only: the run still makes
        // progress (calm phases are lossless) and the ledger attributes
        // the losses to transit.
        let schedule = FaultSchedule {
            phases: vec![
                FaultPhase::calm(200.0),
                FaultPhase {
                    duration: 200.0,
                    request_loss: 1.0,
                    ..FaultPhase::calm(200.0)
                },
                FaultPhase::calm(200.0),
            ],
        };
        let r = run_chaos(&cfg, &proto, &schedule);
        assert!(r.ledger.lost_in_transit > 0);
        assert!(r.ledger.served > 0);
    }
}
