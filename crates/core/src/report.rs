//! Plain-text tables and CSV output for the experiment harness.

use std::fmt::Write as _;

/// A rectangular table with a title and column headers.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the column count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        line(&mut out, &self.columns);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Render as CSV (title omitted; RFC-4180 quoting for commas/quotes).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| field(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// A terminal line chart: x values are treated as ordered categories (the
/// paper's ThinkTimeRatio axis is log-spaced, so positional spacing reads
/// better than linear), y is linear from zero. Each series is drawn with
/// its own glyph; a legend follows the plot.
pub fn ascii_chart(title: &str, series: &[(String, Vec<(f64, f64)>)], height: usize) -> String {
    const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&', '$', '~'];
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let Some(first) = series.first() else {
        out.push_str("(no series)\n");
        return out;
    };
    let xs: Vec<f64> = first.1.iter().map(|&(x, _)| x).collect();
    if xs.is_empty() {
        out.push_str("(no points)\n");
        return out;
    }
    let y_max = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(_, y)| y))
        .filter(|y| y.is_finite())
        .fold(0.0f64, f64::max)
        .max(1e-9);
    let height = height.max(4);
    let col_w = 6usize;
    let width = xs.len() * col_w;
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for (xi, &(_, y)) in pts.iter().enumerate() {
            if !y.is_finite() {
                continue;
            }
            let row = ((1.0 - y / y_max) * (height - 1) as f64).round() as usize;
            let col = xi * col_w + col_w / 2;
            let cell = &mut grid[row.min(height - 1)][col];
            // Overlapping points show the later series' glyph.
            *cell = glyph;
        }
    }
    for (r, row) in grid.iter().enumerate() {
        let y_label = if r == 0 {
            format!("{y_max:>8.0} |")
        } else if r == height - 1 {
            format!("{:>8.0} |", 0.0)
        } else {
            format!("{:>8} |", "")
        };
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{y_label}{}", line.trim_end());
    }
    let _ = write!(out, "{:>8} +", "");
    let _ = writeln!(out, "{}", "-".repeat(width));
    let _ = write!(out, "{:>9}", "");
    for &x in &xs {
        let _ = write!(out, "{:>col_w$}", fmt_units(x), col_w = col_w);
    }
    out.push('\n');
    for (si, (label, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "{:>10} {label}", GLYPHS[si % GLYPHS.len()]);
    }
    out
}

/// Format a response time the way the paper's text does (whole broadcast
/// units for values ≥ 10, one decimal below).
pub fn fmt_units(x: f64) -> String {
    if !x.is_finite() {
        "inf".to_string()
    } else if x >= 10.0 {
        format!("{x:.0}")
    } else {
        format!("{x:.1}")
    }
}

/// Format a rate as a percentage with one decimal.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["ttr", "response"]);
        t.push_row(vec!["10".into(), "2".into()]);
        t.push_row(vec!["250".into(), "702".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("ttr"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + rule + 2 rows + title.
        assert_eq!(lines.len(), 5);
        // Right-aligned: the "10" row ends with spaces before digits.
        assert!(lines[3].ends_with('2'));
    }

    #[test]
    fn csv_quotes_special_fields() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn ascii_chart_renders_axes_and_legend() {
        let series = vec![
            ("Push".to_string(), vec![(10.0, 278.0), (250.0, 278.0)]),
            ("Pull".to_string(), vec![(10.0, 2.0), (250.0, 700.0)]),
        ];
        let s = ascii_chart("fig", &series, 10);
        assert!(s.contains("== fig =="));
        assert!(s.contains('*') && s.contains('o'));
        assert!(s.contains("Push") && s.contains("Pull"));
        assert!(s.contains("700 |")); // y max label
        assert!(s.contains("0 |")); // y zero label
        assert!(s.contains("250")); // x tick
    }

    #[test]
    fn ascii_chart_empty_series_is_graceful() {
        let s = ascii_chart("empty", &[], 10);
        assert!(s.contains("no series"));
        let s = ascii_chart("nopts", &[("a".into(), vec![])], 10);
        assert!(s.contains("no points"));
    }

    #[test]
    fn ascii_chart_handles_infinite_points() {
        let series = vec![("a".to_string(), vec![(1.0, f64::INFINITY), (2.0, 5.0)])];
        let s = ascii_chart("inf", &series, 8);
        assert!(s.contains('*'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_units(278.4), "278");
        assert_eq!(fmt_units(2.04), "2.0");
        assert_eq!(fmt_units(f64::INFINITY), "inf");
        assert_eq!(fmt_pct(0.688), "68.8%");
    }
}
