//! Parameter grids regenerating every figure of the paper's evaluation.
//!
//! Each `figN*` function returns a [`Figure`]: labelled series of (x, y)
//! points matching the corresponding plot in the paper. The `bpp-bench`
//! binaries render these as tables/CSV. All functions take a *base*
//! configuration (usually [`SystemConfig::paper_default`]) so tests can run
//! the same grids on a scaled-down system.
//!
//! Runs within a figure are independent and execute on a thread pool
//! ([`par_run`]); every run derives its seed deterministically from the
//! base seed, so figures are reproducible end to end.

use crate::config::{
    Algorithm, ClientPopulation, CrashConfig, FaultConfig, MeasurementProtocol, SystemConfig,
};
use crate::fault::CrashReport;
use crate::runner::{run_steady_state, run_warmup, SteadyStateResult};
use bpp_client::RetryPolicy;
use bpp_server::AdmissionConfig;
use bpp_sim::approx::exactly_zero;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The ThinkTimeRatio sweep of Figures 3, 5 and 8.
pub const TTR_GRID: [f64; 5] = [10.0, 25.0, 50.0, 100.0, 250.0];

/// The finer sweep of Figure 6.
pub const TTR_GRID_FINE: [f64; 7] = [10.0, 25.0, 35.0, 50.0, 75.0, 100.0, 250.0];

/// The truncation sweep of Figure 7 (pages removed from the push schedule).
pub const CHOP_GRID: [usize; 8] = [0, 100, 200, 300, 400, 500, 600, 700];

/// Channel loss rates swept by the robustness scenario ([`loss_sweep`]).
pub const LOSS_GRID: [f64; 4] = [0.0, 0.05, 0.10, 0.20];

/// Population sizes swept by the million-client scenario ([`fleet_sweep`]):
/// the arena fleet must converge to the aggregate Virtual Client as the
/// population grows (per-client think times scale with the population, so
/// the offered aggregate rate is constant along the sweep).
pub const FLEET_GRID: [usize; 5] = [10, 50, 200, 1_000, 5_000];

/// ThinkTimeRatio grid for the robustness scenario — denser at the loaded
/// end (TTR=1 is the acceptance point for bounded degradation under loss).
pub const LOSS_TTR_GRID: [f64; 5] = [1.0, 10.0, 25.0, 50.0, 100.0];

/// Population sizes swept by the crash–recovery scenario ([`crash_sweep`]):
/// the restart herd scales with the number of clients blocked during the
/// outage, so the admission layer's value shows at the large end.
pub const CRASH_GRID: [usize; 3] = [100, 1_000, 10_000];

/// Channel counts swept by the K-channel scenario ([`channel_sweep`]): K
/// lock-step channels carry K-fold aggregate bandwidth, so response time
/// must fall with K at any fixed load.
pub const CHANNEL_GRID: [usize; 4] = [1, 2, 4, 8];

/// ThinkTimeRatio points at which [`channel_sweep`] draws its curves — one
/// series per load level, lightest first (VC intensity grows with TTR).
pub const CHANNEL_TTR_GRID: [f64; 3] = [10.0, 50.0, 250.0];

/// One labelled curve.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (matches the paper's curve names).
    pub label: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
    /// Companion per-point results (same order), for drop rates etc.
    pub results: Vec<SteadyStateResult>,
}

/// One reproduced figure.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier, e.g. "3a".
    pub id: String,
    /// Human title.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

/// Extract a human-readable message from a payload caught by
/// `catch_unwind`.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run `configs` on `available_parallelism` worker threads, preserving
/// order. Deterministic: each config carries its own seed.
///
/// Panic-safe: a cell that panics (e.g. an invalid configuration slipping
/// into a sweep) yields [`SteadyStateResult::failed`] with the panic
/// message in its `error` field, and the rest of the sweep completes
/// normally.
pub fn par_run(configs: &[SystemConfig], proto: &MeasurementProtocol) -> Vec<SteadyStateResult> {
    let n = configs.len();
    let results: Mutex<Vec<Option<SteadyStateResult>>> = Mutex::new(vec![None; n]);
    let next = AtomicUsize::new(0);
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(n.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            // bpp-lint: allow(D2): deterministic fan-out over independent seeded cells; results are joined in input order
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_steady_state(&configs[i], proto)
                }))
                .unwrap_or_else(|payload| {
                    SteadyStateResult::failed(panic_message(payload.as_ref()), &configs[i])
                });
                // bpp-lint: allow(D3): lock poisoning is impossible: worker closures catch_unwind around the only panic source
                results.lock().expect("no panics hold the lock")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        // bpp-lint: allow(D3): thread::scope joins every worker before returning, so the Mutex is free
        .expect("scope joined all workers")
        .into_iter()
        // bpp-lint: allow(D3): the work-stealing loop covers every index exactly once
        .map(|r| r.expect("every index was filled"))
        .collect()
}

/// Derive a per-run seed so that every point of every figure is an
/// independent but reproducible sample.
///
/// The mix is the splitmix64 finalizer (full avalanche). The previous
/// `base ^ tag·K` mix was linear in `tag`, so the tag families used by
/// different figures (`tag * 1000 + i` for sweeps vs. small literals like
/// `50 + tag`) could collide and hand two distinct cells the same RNG
/// streams. The finalizer is a bijection on `u64`, hence injective in
/// `tag` for any fixed `base`.
fn derive_seed(base: u64, tag: u64) -> u64 {
    let mut z = base.wrapping_add(tag.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn sweep_ttr(
    base: &SystemConfig,
    proto: &MeasurementProtocol,
    grid: &[f64],
    label: &str,
    tag: u64,
    tweak: impl Fn(&mut SystemConfig),
) -> Series {
    let configs: Vec<SystemConfig> = grid
        .iter()
        .enumerate()
        .map(|(i, &ttr)| {
            let mut c = base.clone();
            c.think_time_ratio = ttr;
            c.seed = derive_seed(base.seed, tag * 1000 + i as u64);
            tweak(&mut c);
            c
        })
        .collect();
    let results = par_run(&configs, proto);
    Series {
        label: label.to_string(),
        points: grid
            .iter()
            .zip(&results)
            .map(|(&x, r)| (x, r.mean_response))
            .collect(),
        results,
    }
}

/// Pure-Push is independent of the client population; run it once and
/// replicate the value across the grid (exactly how the paper plots its
/// flat line).
fn push_flat_series(
    base: &SystemConfig,
    proto: &MeasurementProtocol,
    grid: &[f64],
    label: &str,
    tag: u64,
    tweak: impl Fn(&mut SystemConfig),
) -> Series {
    let mut c = base.clone();
    c.algorithm = Algorithm::PurePush;
    c.seed = derive_seed(base.seed, tag);
    tweak(&mut c);
    let r = run_steady_state(&c, proto);
    Series {
        label: label.to_string(),
        points: grid.iter().map(|&x| (x, r.mean_response)).collect(),
        results: vec![r; grid.len()],
    }
}

/// Figure 3(a): steady-state response time vs. ThinkTimeRatio for
/// Pure-Push, Pure-Pull and IPP (PullBW 50%), at SteadyStatePerc 0% / 95%.
pub fn fig3a(base: &SystemConfig, proto: &MeasurementProtocol) -> Figure {
    let mut series = vec![push_flat_series(base, proto, &TTR_GRID, "Push", 30, |_| {})];
    for (k, ssp) in [0.0, 0.95].into_iter().enumerate() {
        series.push(sweep_ttr(
            base,
            proto,
            &TTR_GRID,
            &format!("Pull {:.0}%", ssp * 100.0),
            31 + k as u64,
            move |c| {
                c.algorithm = Algorithm::PurePull;
                c.steady_state_perc = ssp;
            },
        ));
    }
    for (k, ssp) in [0.0, 0.95].into_iter().enumerate() {
        series.push(sweep_ttr(
            base,
            proto,
            &TTR_GRID,
            &format!("IPP {:.0}%", ssp * 100.0),
            33 + k as u64,
            move |c| {
                c.algorithm = Algorithm::Ipp;
                c.pull_bw = 0.5;
                c.thres_perc = 0.0;
                c.steady_state_perc = ssp;
            },
        ));
    }
    Figure {
        id: "3a".into(),
        title: "Steady state client performance, IPP PullBW=50%, SteadyStatePerc varied".into(),
        x_label: "Think Time Ratio".into(),
        y_label: "Response Time (Broadcast Units)".into(),
        series,
    }
}

/// Figure 3(b): IPP PullBW ∈ {10, 30, 50}%, SteadyStatePerc 95%.
pub fn fig3b(base: &SystemConfig, proto: &MeasurementProtocol) -> Figure {
    let mut series = vec![push_flat_series(base, proto, &TTR_GRID, "Push", 40, |_| {})];
    series.push(sweep_ttr(base, proto, &TTR_GRID, "Pull", 41, |c| {
        c.algorithm = Algorithm::PurePull;
        c.steady_state_perc = 0.95;
    }));
    for (k, bw) in [0.5, 0.3, 0.1].into_iter().enumerate() {
        series.push(sweep_ttr(
            base,
            proto,
            &TTR_GRID,
            &format!("IPP PullBW {:.0}%", bw * 100.0),
            42 + k as u64,
            move |c| {
                c.algorithm = Algorithm::Ipp;
                c.pull_bw = bw;
                c.thres_perc = 0.0;
                c.steady_state_perc = 0.95;
            },
        ));
    }
    Figure {
        id: "3b".into(),
        title: "Steady state client performance, IPP PullBW varied, SteadyStatePerc=95%".into(),
        x_label: "Think Time Ratio".into(),
        y_label: "Response Time (Broadcast Units)".into(),
        series,
    }
}

/// Figures 4(a)/4(b): cache warm-up time vs. fraction of the ideal cache
/// acquired, at the given ThinkTimeRatio (25 = light, 250 = heavy),
/// IPP PullBW 50%.
pub fn fig4(base: &SystemConfig, proto: &MeasurementProtocol, ttr: f64) -> Figure {
    let mut series = Vec::new();
    let mut mk = |label: String, tag: u64, tweak: &dyn Fn(&mut SystemConfig)| {
        let mut c = base.clone();
        c.think_time_ratio = ttr;
        c.seed = derive_seed(base.seed, 50 + tag);
        tweak(&mut c);
        let r = run_warmup(&c, proto);
        series.push(Series {
            label,
            points: r
                .fractions
                .iter()
                .zip(&r.times)
                .map(|(&f, t)| (f * 100.0, t.unwrap_or(f64::INFINITY)))
                .collect(),
            results: Vec::new(),
        });
    };
    mk("Push".into(), 0, &|c: &mut SystemConfig| {
        c.algorithm = Algorithm::PurePush;
    });
    for (k, ssp) in [0.0, 0.95].into_iter().enumerate() {
        mk(
            format!("Pull {:.0}%", ssp * 100.0),
            1 + k as u64,
            &move |c: &mut SystemConfig| {
                c.algorithm = Algorithm::PurePull;
                c.steady_state_perc = ssp;
            },
        );
    }
    for (k, ssp) in [0.0, 0.95].into_iter().enumerate() {
        mk(
            format!("IPP {:.0}%", ssp * 100.0),
            3 + k as u64,
            &move |c: &mut SystemConfig| {
                c.algorithm = Algorithm::Ipp;
                c.pull_bw = 0.5;
                c.thres_perc = 0.0;
                c.steady_state_perc = ssp;
            },
        );
    }
    Figure {
        id: if ttr <= 100.0 { "4a" } else { "4b" }.into(),
        title: format!("Client cache warm-up time, ThinkTimeRatio={ttr}, IPP PullBW=50%"),
        x_label: "Cache Warm Up %".into(),
        y_label: "Time (Broadcast Units)".into(),
        series,
    }
}

/// Figure 5(a): Noise sensitivity of Pure-Pull vs. Pure-Push.
pub fn fig5a(base: &SystemConfig, proto: &MeasurementProtocol) -> Figure {
    noise_figure(base, proto, Algorithm::PurePull, "5a", "Pull")
}

/// Figure 5(b): Noise sensitivity of IPP (PullBW 50%) vs. Pure-Push.
pub fn fig5b(base: &SystemConfig, proto: &MeasurementProtocol) -> Figure {
    noise_figure(base, proto, Algorithm::Ipp, "5b", "IPP")
}

fn noise_figure(
    base: &SystemConfig,
    proto: &MeasurementProtocol,
    algo: Algorithm,
    id: &str,
    name: &str,
) -> Figure {
    let mut series = Vec::new();
    for (k, noise) in [0.0, 0.15, 0.35].into_iter().enumerate() {
        series.push(push_flat_series(
            base,
            proto,
            &TTR_GRID,
            &format!("Push Noise {:.0}%", noise * 100.0),
            60 + k as u64,
            move |c| c.noise = noise,
        ));
    }
    for (k, noise) in [0.0, 0.15, 0.35].into_iter().enumerate() {
        series.push(sweep_ttr(
            base,
            proto,
            &TTR_GRID,
            &format!("{name} Noise {:.0}%", noise * 100.0),
            63 + k as u64,
            move |c| {
                c.algorithm = algo;
                c.noise = noise;
                c.pull_bw = 0.5;
                c.thres_perc = 0.0;
                c.steady_state_perc = 0.95;
            },
        ));
    }
    Figure {
        id: id.into(),
        title: format!("Noise sensitivity, {name} vs Push, IPP PullBW=50%"),
        x_label: "Think Time Ratio".into(),
        y_label: "Response Time (Broadcast Units)".into(),
        series,
    }
}

/// Figures 6(a)/6(b): influence of the threshold on response time at the
/// given PullBW (50% for 6a, 30% for 6b).
pub fn fig6(base: &SystemConfig, proto: &MeasurementProtocol, pull_bw: f64) -> Figure {
    let mut series = vec![push_flat_series(
        base,
        proto,
        &TTR_GRID_FINE,
        "Push",
        70,
        |_| {},
    )];
    series.push(sweep_ttr(base, proto, &TTR_GRID_FINE, "Pull", 71, |c| {
        c.algorithm = Algorithm::PurePull;
        c.steady_state_perc = 0.95;
    }));
    for (k, thres) in [0.35, 0.25, 0.10, 0.0].into_iter().enumerate() {
        series.push(sweep_ttr(
            base,
            proto,
            &TTR_GRID_FINE,
            &format!("IPP ThresPerc {:.0}%", thres * 100.0),
            72 + k as u64,
            move |c| {
                c.algorithm = Algorithm::Ipp;
                c.pull_bw = pull_bw;
                c.thres_perc = thres;
                c.steady_state_perc = 0.95;
            },
        ));
    }
    Figure {
        id: if (pull_bw - 0.5).abs() < 1e-9 {
            "6a"
        } else {
            "6b"
        }
        .into(),
        title: format!(
            "Influence of threshold on response time, PullBW = {:.0}%",
            pull_bw * 100.0
        ),
        x_label: "Think Time Ratio".into(),
        y_label: "Response Time (Broadcast Units)".into(),
        series,
    }
}

/// Figures 7(a)/7(b): restricting the push schedule at ThinkTimeRatio 25,
/// with the given threshold (0% for 7a, 35% for 7b). X axis: pages removed
/// from the broadcast.
pub fn fig7(base: &SystemConfig, proto: &MeasurementProtocol, thres: f64) -> Figure {
    let ttr = 25.0;
    let chop_grid: Vec<usize> = CHOP_GRID
        .iter()
        .copied()
        .filter(|&c| c <= base.db_size.saturating_sub(base.disk_sizes[0]))
        .collect();
    let xs: Vec<f64> = chop_grid.iter().map(|&c| c as f64).collect();
    let mut series = vec![push_flat_series(base, proto, &xs, "Push", 80, |c| {
        c.think_time_ratio = ttr;
    })];
    // Pure-Pull ignores the push schedule: one run, flat.
    {
        let mut c = base.clone();
        c.algorithm = Algorithm::PurePull;
        c.steady_state_perc = 0.95;
        c.think_time_ratio = ttr;
        c.seed = derive_seed(base.seed, 81);
        let r = run_steady_state(&c, proto);
        series.push(Series {
            label: "Pull".into(),
            points: xs.iter().map(|&x| (x, r.mean_response)).collect(),
            results: vec![r; xs.len()],
        });
    }
    for (k, bw) in [0.1, 0.3, 0.5].into_iter().enumerate() {
        let configs: Vec<SystemConfig> = chop_grid
            .iter()
            .enumerate()
            .map(|(i, &chop)| {
                let mut c = base.clone();
                c.algorithm = Algorithm::Ipp;
                c.pull_bw = bw;
                c.thres_perc = thres;
                c.steady_state_perc = 0.95;
                c.think_time_ratio = ttr;
                c.chop = chop;
                c.seed = derive_seed(base.seed, (82 + k as u64) * 1000 + i as u64);
                c
            })
            .collect();
        let results = par_run(&configs, proto);
        series.push(Series {
            label: format!("IPP PullBW {:.0}%", bw * 100.0),
            points: xs
                .iter()
                .zip(&results)
                .map(|(&x, r)| (x, r.mean_response))
                .collect(),
            results,
        });
    }
    Figure {
        id: if exactly_zero(thres) { "7a" } else { "7b" }.into(),
        title: format!(
            "Restricting push contents, ThinkTimeRatio=25, ThresPerc={:.0}%",
            thres * 100.0
        ),
        x_label: "Number of Non-Broadcast Pages".into(),
        y_label: "Response Time (Broadcast Units)".into(),
        series,
    }
}

/// Figure 8: server-load sensitivity of the restricted push schedule
/// (IPP PullBW 30%, ThresPerc 35%, chop ∈ {0, 200, 300, 500, 700}).
pub fn fig8(base: &SystemConfig, proto: &MeasurementProtocol) -> Figure {
    let mut series = vec![push_flat_series(base, proto, &TTR_GRID, "Push", 90, |_| {})];
    series.push(sweep_ttr(base, proto, &TTR_GRID, "Pull", 91, |c| {
        c.algorithm = Algorithm::PurePull;
        c.steady_state_perc = 0.95;
    }));
    let max_chop = base.db_size.saturating_sub(base.disk_sizes[0]);
    for (k, chop) in [0usize, 200, 300, 500, 700]
        .into_iter()
        .filter(|&c| c <= max_chop)
        .enumerate()
    {
        let label = if chop == 0 {
            "IPP Full DB".to_string()
        } else {
            format!("IPP -{chop}")
        };
        series.push(sweep_ttr(
            base,
            proto,
            &TTR_GRID,
            &label,
            92 + k as u64,
            move |c| {
                c.algorithm = Algorithm::Ipp;
                c.pull_bw = 0.3;
                c.thres_perc = 0.35;
                c.steady_state_perc = 0.95;
                c.chop = chop;
            },
        ));
    }
    Figure {
        id: "8".into(),
        title: "Server load sensitivity for restricted push, PullBW=30%, ThresPerc=35%".into(),
        x_label: "Think Time Ratio".into(),
        y_label: "Response Time (Broadcast Units)".into(),
        series,
    }
}

/// Robustness scenario: IPP (PullBW 50%) under channel loss. One curve per
/// loss rate in [`LOSS_GRID`], swept over [`LOSS_TTR_GRID`]. The zero-loss
/// curve runs with the fault model fully disabled and anchors the family at
/// exact paper behavior; lossy curves enable the full fault stack
/// ([`FaultConfig::lossy`]: symmetric channel loss, standard client retry
/// policy, standard server degradation policy).
pub fn loss_sweep(base: &SystemConfig, proto: &MeasurementProtocol) -> Figure {
    let mut series = Vec::new();
    for (k, loss) in LOSS_GRID.into_iter().enumerate() {
        series.push(sweep_ttr(
            base,
            proto,
            &LOSS_TTR_GRID,
            &format!("IPP loss {:.0}%", loss * 100.0),
            100 + k as u64,
            move |c| {
                c.algorithm = Algorithm::Ipp;
                c.pull_bw = 0.5;
                c.thres_perc = 0.0;
                c.steady_state_perc = 0.95;
                c.fault = if loss > 0.0 {
                    FaultConfig::lossy(loss)
                } else {
                    FaultConfig::none()
                };
            },
        ));
    }
    Figure {
        id: "L1".into(),
        title: "Response time under channel loss, IPP PullBW=50%, retries+degradation on".into(),
        x_label: "Think Time Ratio".into(),
        y_label: "Response Time (Broadcast Units)".into(),
        series,
    }
}

/// Million-client scenario: replace the open-loop aggregate Virtual Client
/// with an arena fleet of real closed-loop clients and sweep the population
/// size ([`FLEET_GRID`]). Four curves over one set of runs:
///
/// * **VC aggregate** — the Measured Client's response time under the
///   open-loop VC (flat reference line; the convergence target);
/// * **Fleet MC response** — the MC's response time with the fleet standing
///   in for the VC (must approach the reference as the population grows);
/// * **Fleet mean flow** — mean per-request flow time across fleet clients
///   (= mean stretch, pages being unit-sized);
/// * **Fleet max stretch** — the worst per-request stretch observed.
///
/// Operating point: IPP, PullBW 50%, no threshold, SteadyStatePerc 95%,
/// ThinkTimeRatio 25 (mid-load, where closed-loop damping is visible).
pub fn fleet_sweep(base: &SystemConfig, proto: &MeasurementProtocol) -> Figure {
    fn operating_point(c: &mut SystemConfig) {
        c.algorithm = Algorithm::Ipp;
        c.pull_bw = 0.5;
        c.thres_perc = 0.0;
        c.steady_state_perc = 0.95;
        c.think_time_ratio = 25.0;
    }
    // Reference cell: the aggregate VC at the same operating point.
    let mut vc = base.clone();
    operating_point(&mut vc);
    vc.seed = derive_seed(base.seed, 104);
    let vc_r = run_steady_state(&vc, proto);

    let configs: Vec<SystemConfig> = FLEET_GRID
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let mut c = base.clone();
            operating_point(&mut c);
            c.population = ClientPopulation::fleet(n);
            c.seed = derive_seed(base.seed, 105 * 1000 + i as u64);
            c
        })
        .collect();
    let results = par_run(&configs, proto);

    let xs: Vec<f64> = FLEET_GRID.iter().map(|&n| n as f64).collect();
    let fleet_series = |label: &str, pick: fn(&crate::runner::FleetResult) -> f64| Series {
        label: label.to_string(),
        points: xs
            .iter()
            .zip(&results)
            .map(|(&x, r)| (x, r.fleet.as_ref().map_or(f64::NAN, pick)))
            .collect(),
        results: results.clone(),
    };
    let series = vec![
        Series {
            label: "VC aggregate".to_string(),
            points: xs.iter().map(|&x| (x, vc_r.mean_response)).collect(),
            results: vec![vc_r; xs.len()],
        },
        Series {
            label: "Fleet MC response".to_string(),
            points: xs
                .iter()
                .zip(&results)
                .map(|(&x, r)| (x, r.mean_response))
                .collect(),
            results: results.clone(),
        },
        fleet_series("Fleet mean flow", |f| f.mean_flow),
        fleet_series("Fleet max stretch", |f| f.max_stretch),
    ];
    Figure {
        id: "P1".into(),
        title: "Population sweep: arena fleet vs aggregate VC, IPP PullBW=50%, TTR=25".into(),
        x_label: "Fleet Clients".into(),
        y_label: "Broadcast Units".into(),
        series,
    }
}

/// Crash–recovery scenario: one deterministic mid-run server crash over a
/// fleet-population sweep ([`CRASH_GRID`]), with the admission layer off
/// vs. on. Four curves over two sets of runs:
///
/// * **MTTR off/on** — mean time-to-recover (response EWMA back within
///   `recovery_epsilon` of its pre-crash level) without and with
///   admission control;
/// * **Herd peak off/on** — the largest request-grain queue depth during
///   recovery, the thundering-herd signature.
///
/// Operating point: IPP, PullBW 50%, no threshold, TTR 25, a roomy server
/// queue (the paper-faithful bound would clip the herd signal), a fast
/// retry policy so blocked clients re-pull promptly after the restart,
/// and a crash at t=5000 with a 100-slot outage. The admission bucket is
/// tuned to the operating point: the fleet offers ~1.4 requests/slot in
/// steady state, so `rate` 2.0 keeps the bucket transparent outside the
/// herd, while the small `burst` rejects the restart spike into a
/// 32-slot retry-after spread. Both arms share reconnect jitter, so the
/// delta isolates the server-side pacing.
pub fn crash_sweep(base: &SystemConfig, proto: &MeasurementProtocol) -> Figure {
    fn operating_point(c: &mut SystemConfig) {
        c.algorithm = Algorithm::Ipp;
        c.pull_bw = 0.5;
        c.thres_perc = 0.0;
        c.steady_state_perc = 0.95;
        c.think_time_ratio = 25.0;
        c.server_queue_size = 1_000;
        c.fault.retry = RetryPolicy {
            max_retries: 6,
            base_timeout: 8.0,
            backoff_factor: 2.0,
            max_backoff: 64.0,
            jitter: 0.0,
        };
        // Three spaced crashes: MTTR is a mean over the recoveries the run
        // reaches, which damps the sample noise of a single crossing.
        c.fault.crash = CrashConfig {
            mtbf: 0.0,
            downtime: 100.0,
            schedule: vec![5_000.0, 12_000.0, 19_000.0],
            reconnect_jitter: 0.5,
            recovery_epsilon: 0.5,
        };
    }
    let arms = [
        AdmissionConfig::disabled(),
        AdmissionConfig {
            rate: 2.0,
            burst: 2.0,
            retry_after: 32.0,
        },
    ];
    let configs: Vec<SystemConfig> = arms
        .iter()
        .enumerate()
        .flat_map(|(k, &admission)| {
            CRASH_GRID
                .iter()
                .enumerate()
                .map(move |(i, &n)| (k, i, n, admission))
        })
        .map(|(k, i, n, admission)| {
            let mut c = base.clone();
            operating_point(&mut c);
            c.population = ClientPopulation::fleet(n);
            c.fault.admission = admission;
            c.seed = derive_seed(base.seed, (107 + k as u64) * 1000 + i as u64);
            c
        })
        .collect();
    let results = par_run(&configs, proto);
    let (off, on) = results.split_at(CRASH_GRID.len());

    let xs: Vec<f64> = CRASH_GRID.iter().map(|&n| n as f64).collect();
    let crash_series =
        |label: &str, rs: &[SteadyStateResult], pick: fn(&CrashReport) -> f64| Series {
            label: label.to_string(),
            points: xs
                .iter()
                .zip(rs)
                .map(|(&x, r)| {
                    let y = r
                        .fault
                        .as_ref()
                        .and_then(|f| f.crash)
                        .map_or(f64::NAN, |c| pick(&c));
                    (x, y)
                })
                .collect(),
            results: rs.to_vec(),
        };
    let series = vec![
        crash_series("MTTR, admission off", off, |c| c.mean_time_to_recover),
        crash_series("MTTR, admission on", on, |c| c.mean_time_to_recover),
        crash_series("Herd peak, admission off", off, |c| {
            c.herd_peak_depth as f64
        }),
        crash_series("Herd peak, admission on", on, |c| c.herd_peak_depth as f64),
    ];
    Figure {
        id: "C1".into(),
        title:
            "Restart herd vs population: 3 crashes from t=5000, 100-slot outages, admission off/on"
                .into(),
        x_label: "Fleet Clients".into(),
        y_label: "Broadcast Units / Pending Requests".into(),
        series,
    }
}

/// K-channel scenario: sweep the channel count ([`CHANNEL_GRID`]) at a few
/// load levels ([`CHANNEL_TTR_GRID`]), one curve per ThinkTimeRatio. Each
/// channel carries one slot per broadcast unit, so K channels are K-fold
/// aggregate bandwidth: the conflict-free generator splits the push
/// schedule across channels, clients tune to the channel minimising their
/// expected wait, and the pull service shards per channel. Mean response
/// must fall (or stay flat once the system is idle) as K grows.
///
/// Operating point: IPP, PullBW 50%, no threshold, SteadyStatePerc 95% —
/// the same cell as the robustness scenarios, so the K=1 column is
/// directly comparable to the single-channel figures.
pub fn channel_sweep(base: &SystemConfig, proto: &MeasurementProtocol) -> Figure {
    let mut series = Vec::new();
    for (s, &ttr) in CHANNEL_TTR_GRID.iter().enumerate() {
        let configs: Vec<SystemConfig> = CHANNEL_GRID
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let mut c = base.clone();
                c.algorithm = Algorithm::Ipp;
                c.pull_bw = 0.5;
                c.thres_perc = 0.0;
                c.steady_state_perc = 0.95;
                c.think_time_ratio = ttr;
                c.num_channels = k;
                c.seed = derive_seed(base.seed, (110 + s as u64) * 1000 + i as u64);
                c
            })
            .collect();
        let results = par_run(&configs, proto);
        series.push(Series {
            label: format!("IPP-50 TTR={ttr:.0}"),
            points: CHANNEL_GRID
                .iter()
                .zip(&results)
                .map(|(&k, r)| (k as f64, r.mean_response))
                .collect(),
            results,
        });
    }
    Figure {
        id: "K1".into(),
        title: "Channel-count sweep: conflict-free K-channel broadcast, IPP PullBW=50%".into(),
        x_label: "Broadcast Channels".into(),
        y_label: "Response Time (Broadcast Units)".into(),
        series,
    }
}

/// Every broadcast-program-bearing configuration shape the figure grids
/// run, labelled `fig<id>/<series>` — the target list of the `bpp-verify`
/// static gate (`scripts/ci.sh` runs `verify --deny` over it).
///
/// Parameters that influence neither the generated program, the bandwidth
/// split, nor the analytic cross-check (think-time ratio, steady-state
/// warmth, loss rate, population size) are collapsed to one representative
/// per figure series, so each entry is a distinct
/// (algorithm, PullBW, ThresPerc, Noise, chop) cell of its figure. Kept in
/// sync with the `fig*`/`*_sweep` functions above by
/// `verify_targets_cover_every_figure`.
pub fn verify_targets(base: &SystemConfig) -> Vec<(String, SystemConfig)> {
    let mut out: Vec<(String, SystemConfig)> = Vec::new();
    let mut push = |label: String, tweak: &dyn Fn(&mut SystemConfig)| {
        let mut c = base.clone();
        tweak(&mut c);
        out.push((label, c));
    };
    let ipp = |c: &mut SystemConfig, bw: f64, thres: f64| {
        c.algorithm = Algorithm::Ipp;
        c.pull_bw = bw;
        c.thres_perc = thres;
        c.steady_state_perc = 0.95;
    };

    // Figure 3: the three algorithms; 3b varies the IPP bandwidth split.
    push("fig3a/Push".into(), &|c| c.algorithm = Algorithm::PurePush);
    push("fig3a/Pull".into(), &|c| {
        c.algorithm = Algorithm::PurePull;
        c.steady_state_perc = 0.95;
    });
    push("fig3a/IPP-50".into(), &|c| ipp(c, 0.5, 0.0));
    for bw in [0.1, 0.3, 0.5] {
        push(format!("fig3b/IPP-{:.0}", bw * 100.0), &|c| ipp(c, bw, 0.0));
    }
    // Figure 4: warm-up runs of the same three algorithms at TTR 25 / 250.
    for (id, ttr) in [("4a", 25.0), ("4b", 250.0)] {
        push(format!("fig{id}/Push"), &|c| {
            c.algorithm = Algorithm::PurePush;
            c.think_time_ratio = ttr;
        });
        push(format!("fig{id}/IPP-50"), &|c| {
            ipp(c, 0.5, 0.0);
            c.think_time_ratio = ttr;
        });
    }
    // Figure 5: noise sensitivity (program and cross-check are Noise-0
    // ranked, but each published cell is still verified as configured).
    for noise in [0.0, 0.15, 0.35] {
        push(format!("fig5a/Pull-noise{:.0}", noise * 100.0), &|c| {
            c.algorithm = Algorithm::PurePull;
            c.steady_state_perc = 0.95;
            c.noise = noise;
        });
        push(format!("fig5b/IPP-noise{:.0}", noise * 100.0), &|c| {
            ipp(c, 0.5, 0.0);
            c.noise = noise;
        });
    }
    // Figure 6: threshold sweep at PullBW 50% (6a) and 30% (6b).
    for (id, bw) in [("6a", 0.5), ("6b", 0.3)] {
        for thres in [0.35, 0.25, 0.10, 0.0] {
            push(format!("fig{id}/IPP-thres{:.0}", thres * 100.0), &|c| {
                ipp(c, bw, thres)
            });
        }
    }
    // Figures 7 and 8: chopped programs (the cap mirrors fig7/fig8).
    let max_chop = base.db_size.saturating_sub(base.disk_sizes[0]);
    for (id, thres) in [("7a", 0.0), ("7b", 0.35)] {
        for bw in [0.1, 0.3, 0.5] {
            for chop in CHOP_GRID.into_iter().filter(|&ch| ch <= max_chop) {
                push(format!("fig{id}/IPP-{:.0}-chop{chop}", bw * 100.0), &|c| {
                    ipp(c, bw, thres);
                    c.think_time_ratio = 25.0;
                    c.chop = chop;
                });
            }
        }
    }
    for chop in [0usize, 200, 300, 500, 700]
        .into_iter()
        .filter(|&ch| ch <= max_chop)
    {
        push(format!("fig8/IPP-chop{chop}"), &|c| {
            ipp(c, 0.3, 0.35);
            c.chop = chop;
        });
    }
    // Robustness / population / crash scenarios all run the IPP-50
    // operating point; loss, fleet size and crash schedule do not touch
    // the program, so one representative each.
    push("L1/IPP-loss10".into(), &|c| {
        ipp(c, 0.5, 0.0);
        c.fault = FaultConfig::lossy(0.10);
    });
    push("P1/IPP-fleet".into(), &|c| {
        ipp(c, 0.5, 0.0);
        c.think_time_ratio = 25.0;
        c.population = ClientPopulation::fleet(1_000);
    });
    push("C1/IPP-crash".into(), &|c| {
        ipp(c, 0.5, 0.0);
        c.think_time_ratio = 25.0;
        c.server_queue_size = 1_000;
    });
    // K-channel scenario: every multi-channel count the sweep runs gets a
    // verify target, so the static gate checks each generated K-channel
    // placement (conflict rule V6 included) before the figures ship.
    for k in CHANNEL_GRID.into_iter().filter(|&k| k > 1) {
        push(format!("K1/IPP-ch{k}"), &|c| {
            ipp(c, 0.5, 0.0);
            c.num_channels = k;
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_targets_cover_every_figure() {
        let targets = verify_targets(&SystemConfig::paper_default());
        for fig in [
            "fig3a", "fig3b", "fig4a", "fig4b", "fig5a", "fig5b", "fig6a", "fig6b", "fig7a",
            "fig7b", "fig8", "L1", "P1", "C1", "K1",
        ] {
            assert!(
                targets.iter().any(|(l, _)| l.starts_with(fig)),
                "{fig} has no verify target"
            );
        }
        for (label, cfg) in &targets {
            assert!(cfg.validate().is_ok(), "{label} is not a valid config");
        }
        let mut labels: Vec<&str> = targets.iter().map(|(l, _)| l.as_str()).collect();
        let n = labels.len();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), n, "verify target labels must be unique");
        // The paper grid caps no chop cells (700 <= 900), so every figure-7
        // bandwidth series carries the full CHOP_GRID.
        assert!(n > 60, "expected the full grid, got {n} targets");
    }

    #[test]
    fn verify_targets_respect_small_system_chop_cap() {
        // small(): db 100, fastest disk 10 -> only chop 0 survives the cap.
        let targets = verify_targets(&SystemConfig::small());
        assert!(targets
            .iter()
            .all(|(_, c)| c.chop <= 100usize.saturating_sub(10)));
        for (label, cfg) in &targets {
            assert!(cfg.validate().is_ok(), "{label} invalid for small()");
        }
    }

    fn small_base() -> SystemConfig {
        SystemConfig::small()
    }

    #[test]
    fn derive_seed_is_injective_over_every_experiment_tag() {
        // Tag families in use: bare literals (30, 40, 60..66, 70, 80, 81,
        // 90, 104), `50 + tag` (fig4), `tag * 1000 + i` (every sweep_ttr
        // call, tags up to 103, plus 105 for fleet_sweep), `(82 + k) *
        // 1000 + i` (fig7), `(107 + k) * 1000 + i` (crash_sweep), and
        // `(110 + s) * 1000 + i` (channel_sweep). The range below is a
        // superset of all of them; the old linear mix collided inside it
        // (e.g. families `tag*1000 + i` vs. small literals).
        let mut seen = std::collections::BTreeSet::new();
        for tag in 0..=120_000u64 {
            assert!(
                seen.insert(derive_seed(0xB99_5EED, tag)),
                "derive_seed collision at tag {tag}"
            );
        }
    }

    #[test]
    fn derive_seed_decorrelates_across_bases_too() {
        // Distinct bases must not collide over the tag family either (the
        // calibrated and quick protocols run from different base seeds).
        let mut seen = std::collections::BTreeSet::new();
        for base in [7u64, 42, 0xB99_5EED] {
            for tag in 0..=2_000u64 {
                assert!(
                    seen.insert(derive_seed(base, tag)),
                    "collision at base {base}, tag {tag}"
                );
            }
        }
    }

    #[test]
    fn par_run_survives_a_panicking_cell() {
        let base = small_base();
        let mut bad = base.clone();
        bad.db_size = 0; // assert_valid() panics inside World::build
        let mut good = base.clone();
        good.algorithm = Algorithm::Ipp;
        let configs = vec![good.clone(), bad, good];
        let proto = MeasurementProtocol::quick();
        let results = par_run(&configs, &proto);
        assert_eq!(results.len(), 3);
        assert!(results[0].error.is_none());
        assert!(results[2].error.is_none());
        let failed = &results[1];
        let err = failed.error.as_ref().unwrap();
        assert!(err.message.contains("invalid SystemConfig"));
        // The structured error pins the failed cell: seed and a config
        // snapshot that reproduces it (db_size = 0 was the poison).
        assert_eq!(err.seed, configs[1].seed);
        assert_eq!(err.config.db_size, 0);
        let json = bpp_json::to_string(failed);
        assert!(json.contains("\"error\""));
        assert!(json.contains("\"config\""));
        assert!(failed.mean_response.is_nan());
        // The healthy cells are unaffected by their crashed neighbour.
        assert_eq!(results[0].mean_response, results[2].mean_response);
    }

    #[test]
    fn loss_sweep_zero_loss_curve_matches_paper_behavior() {
        let fig = loss_sweep(&small_base(), &MeasurementProtocol::quick());
        assert_eq!(fig.series.len(), LOSS_GRID.len());
        let zero = &fig.series[0];
        // The zero-loss curve runs with the fault model off: no report.
        assert!(zero.results.iter().all(|r| r.fault.is_none()));
        // Lossy curves carry one, and actually lost something.
        for s in &fig.series[1..] {
            assert!(s.results.iter().all(|r| r.fault.is_some()));
            assert!(s
                .results
                .iter()
                .any(|r| r.fault.as_ref().unwrap().channel.pages_lost > 0));
        }
        // Every cell completed with a finite response time: degradation is
        // bounded even at 20% loss.
        for s in &fig.series {
            assert!(s.points.iter().all(|&(_, y)| y.is_finite() && y > 0.0));
        }
    }

    #[test]
    fn par_run_preserves_order_and_determinism() {
        let base = small_base();
        let configs: Vec<SystemConfig> = (0..6)
            .map(|i| {
                let mut c = base.clone();
                c.algorithm = Algorithm::Ipp;
                c.seed = 100 + i;
                c
            })
            .collect();
        let proto = MeasurementProtocol::quick();
        let a = par_run(&configs, &proto);
        let b = par_run(&configs, &proto);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.mean_response, y.mean_response);
        }
        // Sequential reference for index 3.
        let seq = run_steady_state(&configs[3], &proto);
        assert_eq!(a[3].mean_response, seq.mean_response);
    }

    #[test]
    fn fig3a_smoke_on_small_system() {
        let fig = fig3a(&small_base(), &MeasurementProtocol::quick());
        assert_eq!(fig.series.len(), 5);
        for s in &fig.series {
            assert_eq!(s.points.len(), TTR_GRID.len());
            assert!(s.points.iter().all(|&(_, y)| y.is_finite() && y >= 0.0));
        }
        // Push is flat by construction.
        let push = &fig.series[0];
        assert!(push.points.windows(2).all(|w| w[0].1 == w[1].1));
    }

    #[test]
    fn fleet_sweep_produces_fleet_metrics_and_a_flat_vc_reference() {
        let base = small_base();
        let mut proto = MeasurementProtocol::quick();
        proto.max_accesses = 2_000;
        proto.skip_accesses = 100;
        let fig = fleet_sweep(&base, &proto);
        assert_eq!(fig.series.len(), 4);
        for s in &fig.series {
            assert_eq!(s.points.len(), FLEET_GRID.len());
        }
        // The reference line is flat: one VC run replicated across the grid.
        let vc = &fig.series[0];
        assert!(vc.points.windows(2).all(|w| w[0].1 == w[1].1));
        assert!(vc.results.iter().all(|r| r.fleet.is_none()));
        // Every fleet cell carries a fleet section with sane flow metrics
        // (flow = stretch for unit pages, and a page is never delivered
        // sooner than the end of the slot after the request).
        for r in &fig.series[1].results {
            let f = r.fleet.as_ref().expect("fleet section present");
            assert!(f.mean_flow.is_finite() && f.mean_flow >= 1.0);
            assert!(f.max_stretch >= f.mean_flow);
            assert!(f.completed > 0);
        }
    }

    #[test]
    fn crash_sweep_admission_tames_the_restart_herd() {
        let base = small_base();
        let mut proto = MeasurementProtocol::quick();
        proto.max_accesses = 2_000;
        proto.skip_accesses = 100;
        let fig = crash_sweep(&base, &proto);
        assert_eq!(fig.series.len(), 4);
        // Every cell crashed exactly once, at the scheduled time, and
        // recovered afterwards.
        for s in &fig.series {
            for r in &s.results {
                assert!(r.error.is_none());
                let c = r
                    .fault
                    .as_ref()
                    .and_then(|f| f.crash)
                    .expect("crash section present");
                assert!(c.crashes >= 1);
                assert_eq!(c.first_crash_at, Some(5_000.0));
                assert!(c.recoveries >= 1, "recovered after restart: {c:?}");
                assert!(c.orphaned + c.down_slots > 0);
            }
        }
        // Acceptance: at fleet sizes >= 1e3 the admission layer strictly
        // reduces both the restart-herd peak and the time-to-recover.
        let (mttr_off, mttr_on) = (&fig.series[0], &fig.series[1]);
        let (herd_off, herd_on) = (&fig.series[2], &fig.series[3]);
        for (i, &n) in CRASH_GRID.iter().enumerate() {
            if n < 1_000 {
                continue;
            }
            assert!(
                herd_on.points[i].1 < herd_off.points[i].1,
                "admission must shrink the herd at n={n}: on={} off={}",
                herd_on.points[i].1,
                herd_off.points[i].1
            );
            assert!(
                mttr_on.points[i].1 < mttr_off.points[i].1,
                "admission must shorten MTTR at n={n}: on={} off={}",
                mttr_on.points[i].1,
                mttr_off.points[i].1
            );
        }
    }

    #[test]
    fn channel_sweep_more_channels_never_hurt_under_load() {
        let fig = channel_sweep(&small_base(), &MeasurementProtocol::quick());
        assert_eq!(fig.series.len(), CHANNEL_TTR_GRID.len());
        for s in &fig.series {
            assert_eq!(s.points.len(), CHANNEL_GRID.len());
            assert!(s.points.iter().all(|&(_, y)| y.is_finite() && y > 0.0));
        }
        // At the loaded end (the last series — VC intensity grows with
        // TTR) more channels must strictly help: K-fold bandwidth shortens
        // both the push cycle and the pull queue.
        let loaded = fig.series.last().unwrap();
        let (k1, k8) = (loaded.points[0].1, loaded.points.last().unwrap().1);
        assert!(
            k8 < k1,
            "8 channels must beat 1 at TTR=250: k1={k1} k8={k8}"
        );
    }

    #[test]
    fn fig7_chop_grid_respects_small_database() {
        let fig = fig7(&small_base(), &MeasurementProtocol::quick(), 0.35);
        // Small config: db 100, fastest disk 10 -> chop capped at 90.
        let ipp = fig.series.iter().find(|s| s.label.contains("50%")).unwrap();
        assert!(ipp.points.iter().all(|&(x, _)| x <= 90.0));
    }
}
